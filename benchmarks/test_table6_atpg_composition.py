"""Table 6 — Test generation on transformed modules, WITH composition.

Paper claims checked here:

- coverage with composition >= coverage without composition per module,
- test generation time with composition <= without (the composed
  environment is smaller, so PODEM searches less),
- transformed-module coverage approaches the stand-alone coverage (the
  stated objective of the whole methodology).
"""


def test_table6_atpg_with_composition(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.table6_rows, rounds=1, iterations=1
    )
    emit_table(
        "table6.txt",
        "Table 6: Test Generation With Composition",
        rows,
    )

    table5 = {r["module"]: r for r in experiments.table5_rows()}
    for row in rows:
        name = row["module"]
        conventional = table5[name]
        assert row["fault_cov_%"] >= conventional["fault_cov_%"] - 1.0, name

        standalone = experiments.standalone_report(
            next(m for m in experiments.muts() if m.name == name)
        )
        if name == "arm_alu":
            # Section 4.2: the ALU *cannot* reach stand-alone coverage —
            # its control inputs only take the decode table's patterns.
            assert row["fault_cov_%"] < standalone.coverage_percent, name
        else:
            # The objective of the methodology: near-stand-alone coverage.
            assert (row["fault_cov_%"]
                    >= standalone.coverage_percent - 8.0), (
                name, row["fault_cov_%"], standalone.coverage_percent
            )

    # Aggregate test-generation time: composition is not slower overall.
    total6 = sum(r["test_gen_s"] for r in rows)
    total5 = sum(r["test_gen_s"] for r in table5.values())
    assert total6 <= total5 * 1.25, (total6, total5)
