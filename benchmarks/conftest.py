"""Shared fixtures for the table-reproduction benchmarks."""

import os

import pytest

from repro.bench import get_experiments
from repro.core.report import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def experiments():
    return get_experiments()


@pytest.fixture
def emit_table():
    """Print a table and persist it under benchmarks/results/."""

    def _emit(filename, title, rows, columns=()):
        text = format_table(title, rows, columns)
        print("\n" + text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, filename), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
        return text

    return _emit
