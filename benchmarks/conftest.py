"""Shared fixtures for the table-reproduction benchmarks."""

import json
import os

import pytest

from repro.bench import get_experiments
from repro.core.report import format_table
from repro.obs import RunRecord

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session", autouse=True)
def _no_artifact_store():
    """Benchmarks measure real work: disable the persistent artifact
    store so neither a warm ~/.cache/repro nor an earlier table's run
    can shortcut the timed stages.  (The warm-start pipeline itself is
    measured by the ``repro bench`` warm_pipeline suite, which manages
    its own cache directory in subprocess environments.)"""
    previous = os.environ.get("REPRO_NO_CACHE")
    os.environ["REPRO_NO_CACHE"] = "1"
    yield
    if previous is None:
        os.environ.pop("REPRO_NO_CACHE", None)
    else:
        os.environ["REPRO_NO_CACHE"] = previous


@pytest.fixture(scope="session")
def experiments():
    return get_experiments()


@pytest.fixture
def emit_table():
    """Print a table and persist it (text + machine-readable JSON) under
    benchmarks/results/.

    Alongside the table text, ``<name>.json`` records the rows plus a
    :class:`RunRecord` metrics snapshot so result trajectories can be
    diffed across PRs.
    """

    def _emit(filename, title, rows, columns=()):
        from repro.obs import atomic_write_text

        text = format_table(title, rows, columns)
        print("\n" + text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        atomic_write_text(os.path.join(RESULTS_DIR, filename), text)
        record = RunRecord.capture(label=title)
        payload = {
            "title": title,
            "columns": list(columns) if columns
            else (list(rows[0].keys()) if rows else []),
            "rows": list(rows),
            "record": record.as_dict(),
        }
        json_name = os.path.splitext(filename)[0] + ".json"
        atomic_write_text(
            os.path.join(RESULTS_DIR, json_name),
            json.dumps(payload, indent=2, default=str) + "\n")
        return text

    return _emit
