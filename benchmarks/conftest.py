"""Shared fixtures for the table-reproduction benchmarks."""

import json
import os

import pytest

from repro.bench import get_experiments
from repro.core.report import format_table
from repro.obs import RunRecord

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def experiments():
    return get_experiments()


@pytest.fixture
def emit_table():
    """Print a table and persist it (text + machine-readable JSON) under
    benchmarks/results/.

    Alongside the table text, ``<name>.json`` records the rows plus a
    :class:`RunRecord` metrics snapshot so result trajectories can be
    diffed across PRs.
    """

    def _emit(filename, title, rows, columns=()):
        text = format_table(title, rows, columns)
        print("\n" + text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, filename), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
        record = RunRecord.capture(label=title)
        payload = {
            "title": title,
            "columns": list(columns) if columns
            else (list(rows[0].keys()) if rows else []),
            "rows": list(rows),
            "record": record.as_dict(),
        }
        json_name = os.path.splitext(filename)[0] + ".json"
        with open(os.path.join(RESULTS_DIR, json_name), "w",
                  encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        return text

    return _emit
