"""Ablation benches for the design choices DESIGN.md calls out.

- constraint-reuse cache on/off (the composition extraction-time win),
- PIERs on/off during transformed-module ATPG (sequential-depth effect),
- constraint-synthesis optimization on/off (dead-code removal effect).
"""


def test_ablation_constraint_reuse(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.ablation_reuse_rows, rounds=1, iterations=1
    )
    emit_table("ablation_reuse.txt", "Ablation: constraint reuse cache",
               rows)
    by = {r["config"]: r for r in rows}
    # With the cross-MUT cache far fewer tasks run (the same worklist-level
    # dedup applies inside a single extraction either way, so tasks_reused
    # is nonzero in both configurations — the run count is the signal).
    assert by["reuse"]["tasks_run"] < by["no_reuse"]["tasks_run"]
    assert by["reuse"]["tasks_reused"] > 0


def test_ablation_piers(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.ablation_pier_rows, rounds=1, iterations=1
    )
    emit_table("ablation_piers.txt",
               "Ablation: PIERs during transformed-module ATPG", rows)
    by = {r["config"]: r for r in rows}
    # PIERs reduce the sequential justification burden: coverage must not
    # drop, and the register-file MUT should benefit.
    assert by["piers_on"]["fault_cov_%"] >= by["piers_off"]["fault_cov_%"]


def test_ablation_deadcode(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.ablation_deadcode_rows, rounds=1, iterations=1
    )
    emit_table("ablation_deadcode.txt",
               "Ablation: constraint synthesis optimization", rows)
    by = {r["config"]: r for r in rows}
    assert by["optimized"]["total_gates"] < by["raw"]["total_gates"]
