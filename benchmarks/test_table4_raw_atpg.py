"""Table 4 — Raw test generation: processor level vs stand-alone module.

Paper columns: processor-level coverage / time, stand-alone coverage / time.
The shape under reproduction: targeting an embedded module's faults through
the whole processor gives much lower coverage and much higher per-fault CPU
time than the stand-alone module.

The processor-level runs estimate coverage on a uniform fault sample (the
chip-level run is otherwise intractable in pure Python); EXPERIMENTS.md
documents the sampling.
"""


from repro.bench import bench_scale


def test_table4_raw_test_generation(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.table4_rows, rounds=1, iterations=1
    )
    emit_table("table4.txt", "Table 4: Raw Test Generation", rows)

    # The exception unit caps at ~84% stand-alone under the unknown-X
    # initial-state model (its IRQ-pending/mode feedback cannot be fully
    # initialised) — the floor reflects that, see EXPERIMENTS.md.
    standalone_floor = 80.0 if bench_scale() == "paper" else 70.0
    for row in rows:
        name = row["module"]
        # Stand-alone ATPG achieves high coverage on every module.
        assert row["standalone_cov_%"] > standalone_floor, name
        # Processor-level coverage is strictly worse for every module.
        assert row["proc_lvl_cov_%"] < row["standalone_cov_%"], name

    # Per-fault effort at processor level dwarfs the stand-alone effort.
    proc = {r["module"]: r for r in rows}
    for name, row in proc.items():
        proc_rate = row["proc_lvl_time_s"] / max(1, row["proc_sampled_faults"])
        alone = experiments.standalone_report(
            next(m for m in experiments.muts() if m.name == name)
        )
        alone_rate = alone.total_seconds / max(1, alone.total_faults)
        assert proc_rate > alone_rate, name
