"""Table 1 — Modules in ARM: characteristics of each module under test.

Paper columns: module name, hierarchy level, primary inputs, primary
outputs, gates in module, gates in surrounding design, stuck-at faults.
"""


def test_table1_modules(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.table1_rows, rounds=1, iterations=1
    )
    emit_table("table1.txt", "Table 1: Modules in ARM", rows)

    by_name = {row["module"]: row for row in rows}
    # All four paper MUTs present, embedded >= 2 levels deep.
    assert set(by_name) == {"arm_alu", "regfile_struct", "exc", "forward"}
    for row in rows:
        assert row["hier_level"] >= 2
        assert row["stuck_at_faults"] > 0
        # Each module is embedded in a much larger surrounding design.
        assert row["gates_in_surrounding"] > row["gates_in_module"]
    # regfile_struct is the biggest and the most deeply embedded module.
    assert by_name["regfile_struct"]["hier_level"] == max(
        row["hier_level"] for row in rows
    )
    assert by_name["regfile_struct"]["gates_in_module"] == max(
        row["gates_in_module"] for row in rows
    )
    # forward is tiny, the ALU is large.
    assert by_name["forward"]["gates_in_module"] < 50
    assert by_name["arm_alu"]["gates_in_module"] > 500
