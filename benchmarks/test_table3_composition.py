"""Table 3 — Transformed module WITH composition (FACTOR mode).

Same columns as Table 2.  The paper's claims, checked here:

- extraction times are lower than without composition (constraints
  extracted at higher levels are reused across MUTs),
- the surrounding logic is reduced at least as much.
"""


def test_table3_composition(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.table3_rows, rounds=1, iterations=1
    )
    emit_table(
        "table3.txt",
        "Table 3: Transformed Module With Composition",
        rows,
    )

    table2 = {r["module"]: r for r in experiments.table2_rows()}
    total_compose = sum(r["extraction_s"] for r in rows)
    total_conventional = sum(r["extraction_s"] for r in table2.values())

    for row in rows:
        assert row["gate_reduction_%"] > 50.0, row
        conventional = table2[row["module"]]
        # Composition never keeps MORE surrounding logic.
        assert (row["gates_in_surrounding"]
                <= conventional["gates_in_surrounding"]), row

    # Aggregate extraction time is lower thanks to cross-MUT reuse.
    assert total_compose < total_conventional, (
        f"compose {total_compose}s vs conventional {total_conventional}s"
    )
