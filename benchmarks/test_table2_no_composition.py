"""Table 2 — Transformed module WITHOUT composition (conventional mode).

Paper columns: extraction time, synthesis time, gates in surrounding logic,
surrounding-gate reduction %, primary inputs, primary outputs.
"""


def test_table2_no_composition(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.table2_rows, rounds=1, iterations=1
    )
    emit_table(
        "table2.txt",
        "Table 2: Transformed Module Without Composition",
        rows,
    )

    for row in rows:
        # The headline claim: the surrounding logic is drastically reduced.
        assert row["gate_reduction_%"] > 50.0, row
        assert row["gates_in_surrounding"] > 0
        assert row["extraction_s"] >= 0
        assert row["PI"] > 0 and row["PO"] > 0
