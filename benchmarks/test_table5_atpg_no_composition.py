"""Table 5 — Test generation on transformed modules, WITHOUT composition.

Paper columns: fault coverage %, ATPG efficiency %, test generation time,
total time.  The transformed module restores near-stand-alone coverage at a
fraction of the processor-level cost.
"""


def test_table5_atpg_without_composition(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.table5_rows, rounds=1, iterations=1
    )
    emit_table(
        "table5.txt",
        "Table 5: Test Generation Without Composition",
        rows,
    )

    table4 = {r["module"]: r for r in experiments.table4_rows()}
    for row in rows:
        name = row["module"]
        # Transformed-module coverage is at least the raw processor-level
        # coverage (the latter is a sampled estimate, hence the epsilon).
        assert row["fault_cov_%"] >= table4[name]["proc_lvl_cov_%"] - 3.0, (
            name, row["fault_cov_%"], table4[name]["proc_lvl_cov_%"]
        )
        assert row["atpg_eff_%"] >= row["fault_cov_%"]
        assert row["vectors"] > 0

    # The decisive paper claim: per-fault test-generation effort on the
    # transformed module is far below the processor-level effort.
    for row in rows:
        name = row["module"]
        proc = table4[name]
        proc_rate = proc["proc_lvl_time_s"] / max(1,
                                                  proc["proc_sampled_faults"])
        transformed_rate = row["test_gen_s"] / max(1, row["faults"])
        assert transformed_rate < proc_rate, (name, transformed_rate,
                                              proc_rate)
