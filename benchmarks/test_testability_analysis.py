"""Section 4.2 — Testability analysis.

Reproduces the paper's observation on ``arm_alu``: most of its control
inputs are driven from a hard-coded decode table keyed by the opcode field,
so in-system coverage cannot reach the stand-alone level; FACTOR flags this
before any test generation runs.
"""


def test_testability_analysis(experiments, emit_table, benchmark):
    rows = benchmark.pedantic(
        experiments.testability_rows, rounds=1, iterations=1
    )
    emit_table(
        "testability.txt",
        "Section 4.2: Testability Analysis",
        rows,
    )

    by_name = {r["module"]: r for r in rows}
    alu = by_name["arm_alu"]
    # 13 of the ALU's 15 input ports (a, b + 13 control bits) are
    # hard-coded — the paper's "10 of 13 control signals" situation.
    assert alu["hard_coded_inputs"] == 13
    assert alu["input_ports"] == 15
    assert "opcode" in alu["selectors"] or "inst" in alu["selectors"]

    # The data-path modules keep their data ports free; only single
    # decode-derived enables are flagged (we / wb_we / the exc triggers).
    assert by_name["regfile_struct"]["hard_coded_inputs"] == 1   # 'we'
    assert by_name["forward"]["hard_coded_inputs"] == 1          # 'wb_we'
    assert by_name["exc"]["hard_coded_inputs"] == 3   # undef, swi, rfe
    # The ALU is by far the most control-starved module — the paper's
    # Section 4.2 finding.
    assert alu["hard_coded_inputs"] == max(
        r["hard_coded_inputs"] for r in rows
    )
