"""Pattern translation — the methodology's closing step.

"The patterns obtained are later translated back to the chip level": tests
generated on the transformed register-file module (with PIER pre-loads) are
converted to instruction programs (MOVI/SHL/OR prologue + body + ST
epilogue) and fault-simulated on the FULL processor.  Most of the
transformed-module coverage must survive.
"""

from repro.atpg.engine import AtpgEngine
from repro.atpg.vectors import TestSet
from repro.bench import bench_scale, default_atpg_options
from repro.core.extractor import ExtractionMode, MutSpec
from repro.core.piers import pier_q_nets
from repro.designs.arm2_translation import translate_test_set


def test_pattern_translation(experiments, emit_table, benchmark):
    mut = next(m for m in experiments.muts()
               if m.name == "regfile_struct")

    def run():
        tr = experiments.transformed(mut, ExtractionMode.COMPOSE)
        piers = frozenset(pier_q_nets(tr.netlist, experiments.design,
                                      experiments.piers))
        opts = default_atpg_options(fault_region=mut.path, pier_qs=piers)
        engine = AtpgEngine(tr.netlist, opts)
        report = engine.run()
        testset = TestSet.from_engine(engine, tr.netlist)

        full = experiments.full_netlist
        chip_pins = [full.net_name(pi) for pi in full.pis]
        chip_tests = translate_test_set(testset, chip_pins)
        chip_cov = chip_tests.measure_coverage(full, region=mut.path)
        return [{
            "module": mut.name,
            "transformed_cov_%": round(report.coverage_percent, 2),
            "chip_level_cov_%": round(chip_cov, 2),
            "module_vectors": testset.num_vectors,
            "chip_vectors": chip_tests.num_vectors,
        }]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table("translation.txt",
               "Pattern translation to the chip level", rows)

    row = rows[0]
    floor = 90.0 if bench_scale() == "paper" else 60.0
    assert row["chip_level_cov_%"] > floor
    # Translation costs some coverage (untranslatable pipeline-state
    # pre-loads) but only a little.
    assert row["chip_level_cov_%"] > row["transformed_cov_%"] - 8.0
