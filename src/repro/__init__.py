"""FACTOR reproduction: hierarchical functional test generation and
testability analysis (Vedula & Abraham, DATE 2002).

Public API highlights:

- :class:`repro.core.Factor` — parse a design, extract constraints for a
  module under test, build the transformed module, run testability analysis
  and generate tests,
- :mod:`repro.verilog` — Verilog frontend,
- :mod:`repro.synth` — synthesis substrate (elaboration + optimization),
- :mod:`repro.atpg` — sequential ATPG and fault simulation substrate,
- :mod:`repro.designs` — the ARM-2-like benchmark processor.
"""

from repro.core.factor import Factor, FactorResult
from repro.core.extractor import ExtractionMode, MutSpec

__version__ = "1.4.0"

__all__ = ["Factor", "FactorResult", "ExtractionMode", "MutSpec",
           "__version__"]
