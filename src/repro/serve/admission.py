"""Admission control: the bounded queue between HTTP and the worker pool.

The controller owns the only mutable queue state in the server, so its
invariants are easy to audit:

- at most ``depth`` jobs wait for a worker; an admission attempt beyond
  that raises :class:`QueueFull`, which the HTTP layer maps to ``429``
  with a ``Retry-After`` estimate derived from the observed job-duration
  EWMA and the current backlog,
- jobs that carry a ``deadline_s`` are dropped (failed, never dispatched)
  when their budget expires while queued — a client that has stopped
  waiting must not consume a worker,
- draining closes admission; dispatchers see :data:`CLOSED` once the
  backlog they are allowed to finish is exhausted.

All methods are called from the event-loop thread only; the asyncio
primitives here need no extra locking.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from typing import Deque, List, Optional

from repro.obs import counter, gauge, wall_clock

from repro.serve.protocol import FAILED, Job

#: Sentinel yielded to dispatchers when the queue is drained and closed.
CLOSED = object()


class QueueFull(Exception):
    """Admission rejected: the queue is at configured depth."""

    def __init__(self, depth: int, retry_after: int):
        super().__init__(f"queue full at depth {depth}")
        self.depth = depth
        self.retry_after = retry_after


class AdmissionController:
    """Bounded FIFO of queued jobs with deadline enforcement."""

    def __init__(self, depth: int, workers: int, on_expired=None):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self.workers = max(1, workers)
        #: Called with each deadline-expired job after it is failed, so
        #: the server can journal the terminal state and notify pollers.
        self.on_expired = on_expired
        self._queue: Deque[Job] = deque()
        self._available = asyncio.Event()
        self._closed = False
        # Seeded pessimistically so the very first Retry-After is sane
        # even before any job has completed.
        self._job_seconds_ewma = 5.0
        self._depth_gauge = gauge(
            "serve.queue_depth", "jobs waiting for a worker")

    # -- admission ---------------------------------------------------------

    def admit(self, job: Job, force: bool = False) -> None:
        """Enqueue ``job`` or raise :class:`QueueFull` / ``RuntimeError``.

        ``force`` bypasses the depth bound — used for journal-resumed
        backlogs, which were admitted by a previous process and must not
        be dropped however deep they run.
        """
        if self._closed:
            raise RuntimeError("admission closed (server draining)")
        if not force and len(self._queue) >= self.depth:
            counter("serve.rejected_full").inc()
            raise QueueFull(self.depth, self.retry_after_hint())
        self._queue.append(job)
        self._depth_gauge.set(len(self._queue))
        self._available.set()

    def retry_after_hint(self) -> int:
        """Seconds a 429'd client should wait: backlog / service rate."""
        backlog = max(1, len(self._queue))
        estimate = backlog * self._job_seconds_ewma / self.workers
        return max(1, min(300, math.ceil(estimate)))

    def observe_job_seconds(self, seconds: float) -> None:
        """Fold a completed job's duration into the Retry-After estimate."""
        self._job_seconds_ewma += 0.3 * (seconds - self._job_seconds_ewma)

    @property
    def job_seconds_ewma(self) -> float:
        """The smoothed job duration (seed 5.0, α=0.3) — also the basis
        of the server's slow-job threshold."""
        return self._job_seconds_ewma

    # -- dispatch ----------------------------------------------------------

    async def next_job(self):
        """The next dispatchable job, or :data:`CLOSED` after drain.

        Deadline-expired jobs are failed here, at the moment they would
        otherwise occupy a worker, and never returned.
        """
        while True:
            while self._queue:
                job = self._queue.popleft()
                self._depth_gauge.set(len(self._queue))
                if _expired(job):
                    _fail_expired(job)
                    if self.on_expired is not None:
                        self.on_expired(job)
                    continue
                return job
            if self._closed:
                return CLOSED
            self._available.clear()
            await self._available.wait()

    # -- drain -------------------------------------------------------------

    def close(self, keep_backlog: bool = True) -> List[Job]:
        """Stop admitting; returns (and optionally abandons) the backlog.

        With ``keep_backlog`` the queued jobs stay dispatchable so an
        unhurried drain can finish them; without it the backlog is removed
        from the queue (its journal entries keep it durable for the next
        process) and only running jobs are waited on.
        """
        self._closed = True
        backlog = list(self._queue)
        if not keep_backlog:
            self._queue.clear()
            self._depth_gauge.set(0)
        self._available.set()  # wake dispatchers so they observe CLOSED
        return backlog

    def __len__(self) -> int:
        return len(self._queue)


def _expired(job: Job) -> bool:
    deadline = job.spec.deadline_s
    return (deadline is not None
            and wall_clock() - job.submitted_at > deadline)


def _fail_expired(job: Job) -> None:
    job.status = FAILED
    job.error = (f"deadline of {job.spec.deadline_s}s expired "
                 "before a worker was available")
    job.finished_at = wall_clock()
    counter("serve.deadline_expired").inc()
