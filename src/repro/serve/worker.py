"""Job execution: the function that runs inside worker processes.

:func:`execute_job` is the single entry point the server's
``ProcessPoolExecutor`` calls.  It takes a picklable spec dict, runs the
requested pipeline operation, and returns a picklable outcome dict —
success or failure, a JSON-able result body, the job's CPU/wall seconds,
a metrics-registry snapshot for the parent to fold back in (worker
processes have their own process-wide registry), and the worker's span
tree so the server can stitch one cross-process trace per job.

Telemetry crosses the fork boundary in both directions: the spec's
``trace`` field carries the server's submit-span context in (worker spans
parent under it), and a ``multiprocessing`` queue installed by
:func:`init_worker_progress` at pool start carries throttled progress
events and heartbeats back out while the job runs.

Workers inherit ``REPRO_CACHE_DIR``/``REPRO_NO_CACHE``, so every
operation warm-starts through the persistent artifact store exactly like
a CLI run: the second time any design/MUT/options combination is
executed — by any worker — parsing, extraction, synthesis and even the
final ATPG report load from the store.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Optional

from repro.atpg.engine import AtpgOptions
from repro.core.extractor import ExtractionMode
from repro.core.factor import Factor
from repro.obs import QueueProgressReporter, get_registry, get_tracer, \
    parse_traceparent, set_reporter, span

from repro.serve.protocol import JobSpec

#: The worker→server progress pipe, installed once per worker process (or
#: pool thread) by the executor's initializer.  ``None`` outside a pool.
_PROGRESS_QUEUE: Optional[Any] = None


def init_worker_progress(queue: Any) -> None:
    """Pool initializer: stash the server's progress queue."""
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = queue


def execute_job(spec_dict: Dict[str, Any],
                fresh_registry: bool = True,
                job_id: Optional[str] = None,
                progress_interval: float = 0.25,
                heartbeat_s: Optional[float] = 5.0) -> Dict[str, Any]:
    """Run one job to completion; never raises.

    ``fresh_registry`` resets the process-wide metrics registry first so
    the returned snapshot is a per-job delta (safe in dedicated worker
    processes; the in-thread worker mode passes False because it shares
    the server's registry).
    """
    if fresh_registry:
        get_registry().reset()
        get_tracer().reset()
    reporter = None
    if _PROGRESS_QUEUE is not None and job_id is not None:
        reporter = QueueProgressReporter(
            _PROGRESS_QUEUE, job_id, min_interval=progress_interval,
            heartbeat_s=heartbeat_s).start()
        set_reporter(reporter)
    root = None
    try:
        spec = JobSpec.from_dict(spec_dict).validate()
        context = parse_traceparent(spec.trace)
        with get_tracer().use_context(context):
            with span("serve.execute", op=spec.op) as sp:
                root = sp
                result = _OPERATIONS[spec.op](spec)
        return {
            "ok": True,
            "result": result,
            "error": None,
            "wall_s": sp.wall_seconds,
            "cpu_s": sp.cpu_seconds,
            "metrics": get_registry().snapshot() if fresh_registry else {},
            "spans": [root.to_dict()],
        }
    except Exception as exc:
        return {
            "ok": False,
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=20),
            "wall_s": 0.0,
            "cpu_s": 0.0,
            "metrics": get_registry().snapshot() if fresh_registry else {},
            "spans": [root.to_dict()] if root is not None else [],
        }
    finally:
        if reporter is not None:
            set_reporter(None)
            reporter.stop()


def _factor(spec: JobSpec) -> Factor:
    mode = (ExtractionMode.CONVENTIONAL if spec.mode == "conventional"
            else ExtractionMode.COMPOSE)
    return Factor.from_verilog(spec.source, top=spec.top, mode=mode)


def _op_analyze(spec: JobSpec) -> Dict[str, Any]:
    factor = _factor(spec)
    result = factor.analyze(spec.mut, path=spec.path,
                            use_piers=spec.use_piers)
    tr = result.transformed
    return {
        "op": "analyze",
        "mut": spec.mut,
        "mut_region": tr.mut_region,
        "extraction_seconds": tr.extraction_seconds,
        "synthesis_seconds": tr.synthesis_seconds,
        "tasks_run": result.extraction.tasks_run,
        "tasks_reused": result.extraction.tasks_reused,
        "total_gates": tr.total_gates,
        "mut_gates": tr.mut_gates,
        "surrounding_gates": tr.surrounding_gates,
        "num_pis": tr.num_pis,
        "num_pos": tr.num_pos,
        "kept_modules": list(result.extraction.kept_modules()),
    }


def _op_testability(spec: JobSpec) -> Dict[str, Any]:
    factor = _factor(spec)
    result = factor.analyze(spec.mut, path=spec.path,
                            use_piers=spec.use_piers)
    report = result.testability
    return {
        "op": "testability",
        "mut": spec.mut,
        "hard_coded_inputs": report.num_hard_coded,
        "total_input_ports": report.total_input_ports,
        "warnings": len(report.warnings),
        "summary": report.summary(),
    }


def _op_atpg(spec: JobSpec) -> Dict[str, Any]:
    factor = _factor(spec)
    result = factor.analyze(spec.mut, path=spec.path,
                            use_piers=spec.use_piers)
    opts = AtpgOptions(
        max_frames=spec.frames,
        backtrack_limit=spec.backtrack_limit,
        seed=spec.seed,
        fault_sim_backend=spec.backend,
        fault_model=spec.fault_model,
        # None means "serial"; 0 and N pass straight through to the
        # engine's intra-run fork pool.  Results are jobs-invariant, so
        # this costs nothing in coalescing or store hits.
        jobs=spec.jobs if spec.jobs is not None else 1,
    )
    if spec.random_length is not None:
        opts.random_sequence_length = spec.random_length
    if spec.transient_sample is not None:
        opts.transient_sample = spec.transient_sample
    report = factor.generate_tests(result, opts)
    row = report.as_row()
    row.update({
        "op": "atpg",
        "mut": spec.mut,
        "untestable": report.untestable,
        "aborted": report.aborted,
        "coverage_percent": report.coverage_percent,
        "efficiency_percent": report.efficiency_percent,
        "transient_total": report.transient_total,
        "transient_detected": report.transient_detected,
        "transient_coverage_percent": report.transient_coverage_percent,
        "cpu_seconds": report.total_seconds,
    })
    return row


def _op_lint(spec: JobSpec) -> Dict[str, Any]:
    from repro.hierarchy.design import Design
    from repro.lint import run_lint
    from repro.verilog.parser import parse_source

    design = Design(parse_source(spec.source), top=spec.top)
    result = run_lint(design)
    findings = [diag.render() for diag in result.diagnostics[:200]]
    return {
        "op": "lint",
        "errors": len(result.errors),
        "warnings": len(result.warnings),
        "findings": findings,
        "truncated": len(result.diagnostics) > 200,
        "summary": result.summary(),
        "clean": not result.errors and not (spec.strict
                                            and result.warnings),
    }


def _op_explain(spec: JobSpec) -> Dict[str, Any]:
    from repro.hierarchy.design import Design
    from repro.lint.explain import explain_query
    from repro.verilog.parser import parse_source

    design = Design(parse_source(spec.source), top=spec.top)
    return explain_query(design, spec.target, seed=spec.seed)


_OPERATIONS = {
    "analyze": _op_analyze,
    "testability": _op_testability,
    "atpg": _op_atpg,
    "lint": _op_lint,
    "explain": _op_explain,
}
