"""ATPG-as-a-service: a resident job server over the FACTOR pipeline.

Every other entry point in this repository is a one-shot process; this
package keeps the pipeline hot.  A hand-rolled HTTP/1.1 front end on
``asyncio`` accepts jobs (``analyze`` | ``testability`` | ``atpg`` |
``lint``), an admission controller bounds the backlog, a process pool
executes, and three layers of reuse make repeated traffic cheap:

- **coalescing** — identical in-flight submissions collapse onto one job
  (single flight, keyed by the request's store fingerprint),
- **store serving** — finished results are published to the persistent
  artifact store and answer duplicate submissions without a worker,
- **warm workers** — worker processes share the artifact store, so even
  distinct jobs over the same design reuse parsed ASTs, extractions and
  synthesized netlists.

Modules: :mod:`~repro.serve.protocol` (job model + fingerprints),
:mod:`~repro.serve.httpd` (HTTP plumbing), :mod:`~repro.serve.admission`
(bounded queue, 429/Retry-After, deadlines), :mod:`~repro.serve.journal`
(JSONL durability + restart resume), :mod:`~repro.serve.worker`
(in-worker execution), :mod:`~repro.serve.server` (the event loop that
ties them together) and :mod:`~repro.serve.client` (the blocking client
behind ``repro submit`` / ``repro jobs``).

See ``docs/serving.md`` for the API reference and deployment knobs.
"""

from repro.serve.admission import AdmissionController, QueueFull
from repro.serve.client import ServeClient, ServeError, default_server_url
from repro.serve.journal import JobJournal
from repro.serve.protocol import (
    BUNDLED_DESIGNS,
    OPERATIONS,
    Job,
    JobSpec,
    ProtocolError,
)
from repro.serve.server import JobServer, ServeConfig, ServerThread, \
    run_server
from repro.serve.worker import execute_job

__all__ = [
    "AdmissionController",
    "QueueFull",
    "ServeClient",
    "ServeError",
    "default_server_url",
    "JobJournal",
    "BUNDLED_DESIGNS",
    "OPERATIONS",
    "Job",
    "JobSpec",
    "ProtocolError",
    "JobServer",
    "ServeConfig",
    "ServerThread",
    "run_server",
    "execute_job",
]
