"""Job model and wire format for the ATPG job service.

A *job* is one pipeline operation (``analyze`` | ``testability`` | ``atpg``
| ``lint``) over a design, described by a :class:`JobSpec`.  Specs arrive
as the JSON body of ``POST /v1/jobs``; the design itself is either raw
Verilog text (``source``) or the name of a bundled benchmark design
(``design: "arm2"``).  Bundled names are resolved to their source text at
validation time, so an uploaded copy of arm2 and ``design: "arm2"``
fingerprint — and therefore coalesce and warm-start — identically.

The :meth:`JobSpec.fingerprint` is the request's content address: a SHA-256
over every field that affects the result (and nothing else — admission
knobs like ``deadline_s`` are excluded).  The server uses it for
single-flight coalescing of identical in-flight submissions and as the
artifact-store key under which finished results are published.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.store import fingerprint_obj, fingerprint_text

#: Operations a job may request, in the order the docs present them.
OPERATIONS = ("analyze", "testability", "atpg", "lint", "explain")

#: Bundled designs resolvable by name instead of uploading source text.
BUNDLED_DESIGNS = ("arm2", "filterchip")

#: Job lifecycle states (terminal: ``done`` / ``failed``).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Where a finished result came from: a fresh pipeline execution, the
#: persistent artifact store, or another in-flight job it coalesced onto.
FROM_PIPELINE = "pipeline"
FROM_STORE = "store"
FROM_COALESCED = "coalesced"


class ProtocolError(ValueError):
    """A malformed or unsatisfiable request (maps to HTTP 400)."""


def bundled_source(name: str) -> str:
    """Source text of a bundled benchmark design."""
    if name == "arm2":
        from repro.designs import arm2_source

        return arm2_source()
    if name == "filterchip":
        from repro.designs import filterchip_source

        return filterchip_source()
    raise ProtocolError(
        f"unknown bundled design {name!r}; expected one of "
        f"{', '.join(BUNDLED_DESIGNS)}")


@dataclass
class JobSpec:
    """One pipeline request, fully self-contained and picklable."""

    op: str
    source: Optional[str] = None
    design: Optional[str] = None
    top: Optional[str] = None
    mut: Optional[str] = None
    path: Optional[str] = None
    mode: str = "compose"
    frames: int = 4
    backtrack_limit: int = 300
    seed: int = 2002
    backend: Optional[str] = None
    #: atpg only: fault populations to target/grade
    #: (``stuck`` | ``transient`` | ``both``); see AtpgOptions.fault_model.
    fault_model: str = "stuck"
    #: atpg only: random-phase sequence length (vectors per sequence).
    #: A first-class campaign factor, hence part of the wire format.
    random_length: Optional[int] = None
    #: atpg only: seeded SEU sample size (None = full universe).
    transient_sample: Optional[int] = None
    use_piers: bool = True
    strict: bool = False  # lint only: warnings fail the job
    #: explain only: the net/port to trace (``SIGNAL`` or
    #: ``MODULE.SIGNAL``).
    target: Optional[str] = None
    #: PODEM worker processes *inside* the job (atpg only): ``None`` =
    #: serial, ``0`` = all the worker's cores, ``N`` = N forked workers.
    #: Excluded from the fingerprint — parallel results are bit-identical
    #: to serial, so a --jobs submission coalesces with (and warm-starts
    #: from) a serial one.
    jobs: Optional[int] = None
    #: Admission budget in seconds: a job still queued this long after
    #: submission is failed instead of dispatched.  Not part of the
    #: fingerprint — it changes *whether* the job runs, never its result.
    deadline_s: Optional[float] = None
    #: W3C ``traceparent`` carrying the server's submit-span context into
    #: the worker.  Pure telemetry: excluded from the fingerprint so two
    #: submissions with different trace ancestry still coalesce.
    trace: Optional[str] = None

    _fingerprint: Optional[str] = field(default=None, repr=False,
                                        compare=False, init=False)

    # -- validation --------------------------------------------------------

    def validate(self) -> "JobSpec":
        """Check the spec and resolve bundled design names to source text.

        Raises :class:`ProtocolError` with a client-presentable message on
        any problem; returns ``self`` for chaining.
        """
        if self.op not in OPERATIONS:
            raise ProtocolError(
                f"unknown op {self.op!r}; expected one of "
                f"{', '.join(OPERATIONS)}")
        if self.source is None and self.design is None:
            raise ProtocolError(
                "request needs Verilog text ('source') or a bundled "
                "design name ('design')")
        if self.source is not None and self.design is not None:
            raise ProtocolError("'source' and 'design' are exclusive")
        if self.design is not None:
            self.source = bundled_source(self.design)
            self.design = None
            self._fingerprint = None
        if not isinstance(self.source, str) or not self.source.strip():
            raise ProtocolError("'source' must be non-empty Verilog text")
        if self.op in ("analyze", "testability", "atpg") and not self.mut:
            raise ProtocolError(f"op {self.op!r} requires 'mut'")
        if self.op == "explain" and not self.target:
            raise ProtocolError("op 'explain' requires 'target'")
        if self.target is not None and not isinstance(self.target, str):
            raise ProtocolError("'target' must be a string")
        if self.mode not in ("compose", "conventional"):
            raise ProtocolError(
                f"bad mode {self.mode!r}; expected compose|conventional")
        if self.backend not in (None, "arena", "compiled", "interpreted"):
            raise ProtocolError(
                f"bad backend {self.backend!r}; "
                "expected arena|compiled|interpreted")
        if self.fault_model not in ("stuck", "transient", "both"):
            raise ProtocolError(
                f"bad fault_model {self.fault_model!r}; "
                "expected stuck|transient|both")
        for name in ("frames", "backtrack_limit", "seed"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(f"{name!r} must be an integer")
        if self.frames < 1:
            raise ProtocolError("'frames' must be >= 1")
        for name in ("random_length", "transient_sample"):
            value = getattr(self, name)
            if value is not None:
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 1:
                    raise ProtocolError(
                        f"{name!r} must be a positive integer")
        if self.jobs is not None:
            if not isinstance(self.jobs, int) or isinstance(self.jobs, bool):
                raise ProtocolError("'jobs' must be an integer")
        if self.deadline_s is not None:
            if not isinstance(self.deadline_s, (int, float)) \
                    or self.deadline_s <= 0:
                raise ProtocolError("'deadline_s' must be a positive number")
        if self.trace is not None and not isinstance(self.trace, str):
            raise ProtocolError("'trace' must be a traceparent string")
        return self

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Content address of this request (validated specs only).

        The source text enters as its own fingerprint so megabyte designs
        hash once, and the spec key stays small enough to journal.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_obj({
                "op": self.op,
                "source": fingerprint_text(self.source or ""),
                "top": self.top,
                "mut": self.mut,
                "path": self.path,
                "mode": self.mode,
                "frames": self.frames,
                "backtrack_limit": self.backtrack_limit,
                "seed": self.seed,
                "backend": self.backend,
                "fault_model": self.fault_model,
                "random_length": self.random_length,
                "transient_sample": self.transient_sample,
                "use_piers": self.use_piers,
                "strict": self.strict,
                "target": self.target,
            })
        return self._fingerprint

    # -- wire format -------------------------------------------------------

    _FIELDS = ("op", "source", "design", "top", "mut", "path", "mode",
               "frames", "backtrack_limit", "seed", "backend",
               "fault_model", "random_length", "transient_sample",
               "use_piers", "strict", "target", "jobs", "deadline_s",
               "trace")

    def as_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise ProtocolError(
                f"unknown request fields: {', '.join(sorted(unknown))}")
        if "op" not in payload:
            raise ProtocolError("request needs an 'op' field")
        return cls(**payload)


#: Progress events retained per job for ``GET /v1/jobs/<id>/events``.
#: Sequence numbers are preserved when the window slides, so a streamer's
#: ``since`` cursor stays valid even after truncation.
MAX_JOB_EVENTS = 4096


@dataclass
class Job:
    """Server-side state of one submitted job."""

    job_id: str
    spec: JobSpec
    fingerprint: str
    status: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    served_from: Optional[str] = None
    coalesced_count: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    #: Trace identity: the stitched trace every span of this job joins.
    trace_id: Optional[str] = None
    trace_path: Optional[str] = None
    #: Live telemetry: most recent progress payload, the bounded event
    #: log behind ``/events``, and the wall_clock() of the last sign of
    #: life from the worker (event or heartbeat).
    progress: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    event_seq: int = 0
    last_event_at: Optional[float] = None

    def append_event(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Append to the event log under a server-owned sequence number."""
        self.event_seq += 1
        event = dict(payload)
        event["seq"] = self.event_seq
        self.events.append(event)
        if len(self.events) > MAX_JOB_EVENTS:
            del self.events[:len(self.events) - MAX_JOB_EVENTS]
        return event

    def summary(self) -> Dict[str, Any]:
        """Listing row: everything but the (possibly large) result body."""
        return {
            "id": self.job_id,
            "op": self.spec.op,
            "mut": self.spec.mut,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "served_from": self.served_from,
            "coalesced_count": self.coalesced_count,
            "error": self.error,
            "trace_id": self.trace_id,
        }

    def as_dict(self) -> Dict[str, Any]:
        payload = self.summary()
        payload["result"] = self.result
        payload["progress"] = self.progress
        payload["trace_path"] = self.trace_path
        return payload
