"""Hand-rolled HTTP/1.1 on ``asyncio`` streams.

The job server deliberately avoids ``http.server`` (synchronous, thread-
per-connection) and keeps the surface tiny: request parsing with bounded
line/header/body sizes, a literal-segment router with ``{param}`` capture,
and response rendering.  Connections are persistent by default (HTTP/1.1
keep-alive) and closed when the client sends ``Connection: close``, when a
parse error makes the stream position untrustworthy, or when the server is
draining.

Only what the service needs is implemented: ``Content-Length`` bodies on
requests (no chunked uploads), no compression, no TLS.  Responses are
either fixed-length (:class:`HttpResponse`) or a chunked-transfer NDJSON
stream (:class:`NdjsonStream`, used by the live job-event endpoint); the
connection stays reusable after a stream ends because chunked framing has
an explicit terminator.  Anything outside that envelope gets a clean 4xx
instead of undefined behavior.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import unquote

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
#: Bundled arm2 is ~0.2 MiB of Verilog; 16 MiB leaves generous headroom
#: for uploaded designs while bounding a hostile request.
MAX_BODY_BYTES = 16 * 1024 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Abort request handling with a specific status code."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class HttpRequest:
    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    #: False once the client asked for ``Connection: close``.
    keep_alive: bool = True

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


@dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    close: bool = False

    @classmethod
    def from_json(cls, payload: Any, status: int = 200,
                  headers: Optional[Dict[str, str]] = None) -> "HttpResponse":
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        return cls(status=status, body=body, headers=headers or {})

    @classmethod
    def from_text(cls, text: str, status: int = 200,
                  content_type: str = "text/plain; charset=utf-8"
                  ) -> "HttpResponse":
        return cls(status=status, body=text.encode("utf-8"),
                   content_type=content_type)

    def render(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 f"Content-Type: {self.content_type}",
                 f"Content-Length: {len(self.body)}"]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close" if self.close
                     else "Connection: keep-alive")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body


class NdjsonStream:
    """A chunked-transfer NDJSON response: one JSON document per line.

    Handlers return one of these instead of an :class:`HttpResponse` when
    the body is produced incrementally (the live job-event feed).  The
    connection loop writes the head, then one HTTP/1.1 chunk per line
    from ``lines`` (an async generator of ``str``), then the zero-chunk
    terminator — after which the connection is clean for the next
    request.
    """

    content_type = "application/x-ndjson"

    def __init__(self, lines, status: int = 200,
                 headers: Optional[Dict[str, str]] = None):
        self.lines = lines
        self.status = status
        self.headers = headers or {}
        self.close = False

    def render_head(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        out = [f"HTTP/1.1 {self.status} {reason}",
               f"Content-Type: {self.content_type}",
               "Transfer-Encoding: chunked",
               "Cache-Control: no-store"]
        for name, value in self.headers.items():
            out.append(f"{name}: {value}")
        out.append("Connection: close" if self.close
                   else "Connection: keep-alive")
        return ("\r\n".join(out) + "\r\n\r\n").encode("ascii")

    @staticmethod
    def encode_chunk(line: str) -> bytes:
        data = line.encode("utf-8")
        return f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n"

    @staticmethod
    def terminator() -> bytes:
        return b"0\r\n\r\n"


def _parse_query(raw: str) -> Dict[str, str]:
    query: Dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        name, _, value = pair.partition("=")
        query[unquote(name)] = unquote(value)
    return query


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = MAX_BODY_BYTES
                       ) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed or oversized input — after
    which the connection must be closed, since the stream position is no
    longer trustworthy.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request line too long") from exc
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    total_header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as exc:
            raise HttpError(400, "truncated headers") from exc
        total_header_bytes += len(line)
        if total_header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked transfer encoding is not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated body") from exc

    path, _, raw_query = target.partition("?")
    keep_alive = headers.get("connection", "").lower() != "close"
    return HttpRequest(method=method, target=target, path=unquote(path),
                       query=_parse_query(raw_query), headers=headers,
                       body=body, keep_alive=keep_alive)


Handler = Callable[..., Any]


class Router:
    """Method + path routing with ``{param}`` capture segments."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(pattern.strip("/").split("/")) \
            if pattern.strip("/") else ()
        self._routes.append((method.upper(), segments, handler))

    def match(self, method: str, path: str
              ) -> Tuple[Handler, Dict[str, str]]:
        """The handler and captured params for a request.

        Raises 404 when no pattern matches the path, 405 when one does
        but not with this method.
        """
        segments = tuple(path.strip("/").split("/")) \
            if path.strip("/") else ()
        path_matched = False
        for method_, pattern, handler in self._routes:
            params = _match_segments(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if method_ == method.upper():
                return handler, params
        if path_matched:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no route for {path}")


def _match_segments(pattern: Tuple[str, ...], segments: Tuple[str, ...]
                    ) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params
