"""JSONL job journal: crash/restart durability for queued work.

Every accepted job appends a ``submitted`` event (carrying the full spec);
dispatch and completion append ``started`` / ``done`` / ``failed`` events.
On startup the server replays the journal: any job with a ``submitted``
event but no terminal event is re-enqueued — including jobs that were
*running* when the previous process died, since their results were lost.
After replay the journal is compacted down to just the surviving
``submitted`` events, so it stays proportional to the backlog rather than
to server lifetime.

Appends are flushed per event (a crashed server loses at most the event
being written; a torn final line is tolerated and dropped on replay).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.obs import atomic_write_text, counter, get_logger

_log = get_logger("serve.journal")


class JobJournal:
    """Append-only JSONL event log with replay + compaction."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._handle: Optional[TextIO] = None

    @property
    def enabled(self) -> bool:
        return self.path is not None

    # -- writing -----------------------------------------------------------

    def append(self, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        record = {"event": event}
        record.update(fields)
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- replay ------------------------------------------------------------

    def replay(self) -> Tuple[List[Dict[str, Any]], int]:
        """Unfinished ``submitted`` events and the next job sequence number.

        Reads the journal (tolerating a torn final line), drops every job
        that reached a terminal event, compacts the file down to the
        survivors and returns them in submission order.
        """
        if not self.enabled or not os.path.exists(self.path):
            return [], 1
        submitted: Dict[str, Dict[str, Any]] = {}
        finished: set = set()
        max_seq = 0
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    _log.warning("journal_torn_line", path=self.path)
                    continue
                event = record.get("event")
                job_id = record.get("id")
                if event == "submitted" and job_id:
                    submitted[job_id] = record
                    max_seq = max(max_seq, _sequence_of(job_id))
                elif event in ("done", "failed") and job_id:
                    finished.add(job_id)
        survivors = [record for job_id, record in submitted.items()
                     if job_id not in finished]
        self.compact(survivors)
        if survivors:
            counter("serve.journal_resumed").inc(len(survivors))
            _log.info("journal_replayed", path=self.path,
                      resumed=len(survivors),
                      completed_dropped=len(finished))
        return survivors, max_seq + 1

    def compact(self, survivors: List[Dict[str, Any]]) -> None:
        """Rewrite the journal to contain only the surviving submissions."""
        if not self.enabled:
            return
        self.close()
        text = "".join(json.dumps(record, separators=(",", ":")) + "\n"
                       for record in survivors)
        atomic_write_text(self.path, text)


def _sequence_of(job_id: str) -> int:
    """The monotonic sequence component of a ``job-<seq>-<fp8>`` id."""
    parts = job_id.split("-")
    try:
        return int(parts[1])
    except (IndexError, ValueError):
        return 0
