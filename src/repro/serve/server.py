"""The resident ATPG job server.

One asyncio event loop owns all bookkeeping (job table, coalescing index,
admission queue, journal); pipeline work runs in a worker pool
(:class:`~concurrent.futures.ProcessPoolExecutor` by default) sized by the
shared ``--jobs``/``REPRO_JOBS`` rule.  Request flow for ``POST /v1/jobs``:

1. **validate** the spec and compute its store fingerprint,
2. **coalesce**: an identical job already queued or running absorbs the
   submission (same job id, one pipeline run for N clients),
3. **warm-serve**: a result already published to the artifact store under
   this fingerprint completes the job instantly, no worker involved,
4. **admit**: the bounded queue accepts the job (or answers 429 with a
   ``Retry-After`` estimate), the journal records it, a dispatcher hands
   it to the pool when a worker frees up.

``SIGTERM``/``SIGINT`` start a graceful drain: admission closes, running
jobs get ``drain_timeout`` seconds to finish, the queued backlog persists
in the JSONL journal (or is finished in-line when no journal is
configured), and the process exits 0.  A restarted server replays the
journal and resumes the backlog before accepting new work.
"""

from __future__ import annotations

import asyncio
import functools
import signal
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

from repro import __version__
from repro.jobs import resolve_jobs
from repro.obs import counter, gauge, get_logger, get_registry, histogram, \
    wall_clock
from repro.store import MISS, get_store
from repro.serve.admission import CLOSED, AdmissionController, QueueFull
from repro.serve.httpd import HttpError, HttpRequest, HttpResponse, Router, \
    read_request
from repro.serve.journal import JobJournal
from repro.serve.protocol import DONE, FAILED, FROM_PIPELINE, FROM_STORE, \
    Job, JobSpec, ProtocolError, QUEUED, RUNNING
from repro.serve.worker import execute_job

_log = get_logger("serve")

#: Finished jobs kept in the in-memory table for ``GET /v1/jobs``.
MAX_FINISHED_JOBS = 1000


@dataclass
class ServeConfig:
    """Deployment knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 8371
    jobs: Optional[int] = None        # worker pool size (shared --jobs rule)
    queue_depth: int = 64             # admission bound
    journal_path: Optional[str] = None
    drain_timeout: float = 30.0       # seconds running jobs get on drain
    job_timeout: Optional[float] = None  # per-job wall budget once running
    worker_mode: str = "process"      # process | thread


class JobServer:
    """One resident server: HTTP front, admission, pool, journal."""

    def __init__(self, config: ServeConfig):
        if config.worker_mode not in ("process", "thread"):
            raise ValueError(
                f"bad worker_mode {config.worker_mode!r}; "
                "expected process|thread")
        self.config = config
        self.workers = resolve_jobs(config.jobs)
        self.address: Optional[str] = None
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> job id
        self._seq = 1
        self._running = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._journal = JobJournal(config.journal_path)
        self._admission = AdmissionController(
            config.queue_depth, self.workers,
            on_expired=self._on_queue_expired)
        self._executor: Optional[Executor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatchers = []
        self._router = Router()
        self._router.add("POST", "/v1/jobs", self._route_submit)
        self._router.add("GET", "/v1/jobs", self._route_list)
        self._router.add("GET", "/v1/jobs/{job_id}", self._route_job)
        self._router.add("GET", "/healthz", self._route_health)
        self._router.add("GET", "/metrics", self._route_metrics)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> str:
        """Bind, replay the journal, start dispatchers; returns base URL."""
        if self.config.worker_mode == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="serve-worker")
        gauge("serve.workers", "worker pool size").set(self.workers)
        self._resume_from_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        host, port = self._server.sockets[0].getsockname()[:2]
        self.address = f"http://{host}:{port}"
        self._dispatchers = [
            asyncio.ensure_future(self._dispatcher())
            for _ in range(self.workers)
        ]
        _log.info("serve_started", address=self.address,
                  workers=self.workers, mode=self.config.worker_mode,
                  queue_depth=self.config.queue_depth,
                  journal=self.config.journal_path or "")
        return self.address

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, functools.partial(self.request_drain, signum))

    def request_drain(self, signum: int = signal.SIGTERM) -> None:
        """Begin graceful shutdown (idempotent, callable from the loop)."""
        if self._draining:
            return
        self._draining = True
        _log.info("serve_draining", signum=signum,
                  queued=len(self._admission), running=self._running)
        # With a journal the backlog is durable, so drain fast: persist
        # queued jobs and only wait for the ones already on a worker.
        # Without one, finishing the backlog is the only non-lossy option.
        self._admission.close(keep_backlog=not self._journal.enabled)
        self._drained.set()

    async def run_until_drained(self) -> int:
        """Serve until a drain is requested, then shut down; returns 0."""
        await self._drained.wait()
        try:
            await asyncio.wait_for(
                asyncio.gather(*self._dispatchers, return_exceptions=True),
                timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            _log.warning("drain_timeout_exceeded",
                         timeout=self.config.drain_timeout)
            for task in self._dispatchers:
                task.cancel()
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._server.close()
        await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._journal.close()
        _log.info("serve_stopped", jobs_total=len(self._jobs))
        return 0

    async def run(self, install_signals: bool = True) -> int:
        await self.start()
        if install_signals:
            self.install_signal_handlers()
        return await self.run_until_drained()

    # -- journal resume ----------------------------------------------------

    def _resume_from_journal(self) -> None:
        survivors, next_seq = self._journal.replay()
        self._seq = max(self._seq, next_seq)
        for record in survivors:
            try:
                spec = JobSpec.from_dict(record["spec"]).validate()
            except (ProtocolError, KeyError, TypeError) as exc:
                _log.warning("journal_bad_spec", id=record.get("id"),
                             error=str(exc))
                continue
            job = Job(job_id=record["id"], spec=spec,
                      fingerprint=spec.fingerprint(),
                      submitted_at=wall_clock())
            self._jobs[job.job_id] = job
            self._inflight[job.fingerprint] = job.job_id
            # Resumed work predates this process's admission window, so
            # it may exceed queue_depth; it must never be dropped.
            self._admission.admit(job, force=True)
        if survivors:
            _log.info("journal_resume_enqueued", jobs=len(survivors))

    def _on_queue_expired(self, job: Job) -> None:
        self._inflight.pop(job.fingerprint, None)
        self._journal.append("failed", id=job.job_id, error=job.error)

    # -- dispatch ----------------------------------------------------------

    async def _dispatcher(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job = await self._admission.next_job()
            if job is CLOSED:
                return
            job.status = RUNNING
            job.started_at = wall_clock()
            self._running += 1
            gauge("serve.running", "jobs on a worker").set(self._running)
            histogram("serve.queue_wait_seconds").observe(
                job.started_at - job.submitted_at)
            self._journal.append("started", id=job.job_id)
            fresh_registry = self.config.worker_mode == "process"
            try:
                future = loop.run_in_executor(
                    self._executor, functools.partial(
                        execute_job, job.spec.as_dict(),
                        fresh_registry=fresh_registry))
                counter("serve.executed",
                        "jobs dispatched to the pipeline").inc()
                if self.config.job_timeout is not None:
                    outcome = await asyncio.wait_for(
                        asyncio.shield(future),
                        timeout=self.config.job_timeout)
                else:
                    outcome = await future
            except asyncio.TimeoutError:
                self._finish(job, ok=False,
                             error=f"job exceeded the server's "
                                   f"{self.config.job_timeout}s run budget")
                continue
            except Exception as exc:  # pool broke, worker died...
                self._finish(job, ok=False,
                             error=f"worker failure: {exc}")
                continue
            finally:
                self._running -= 1
                gauge("serve.running").set(self._running)
            if outcome["metrics"]:
                get_registry().merge_snapshot(outcome["metrics"])
            if outcome["ok"]:
                self._finish(job, ok=True, result=outcome["result"],
                             wall_s=outcome["wall_s"])
            else:
                self._finish(job, ok=False, error=outcome["error"])

    def _finish(self, job: Job, ok: bool, result=None, error=None,
                wall_s: Optional[float] = None) -> None:
        job.finished_at = wall_clock()
        if ok:
            job.status = DONE
            job.served_from = FROM_PIPELINE
            job.result = result
            counter("serve.completed").inc()
            self._journal.append("done", id=job.job_id,
                                 served_from=FROM_PIPELINE)
            get_store().put("serve", {"request": job.fingerprint},
                            {"result": result, "op": job.spec.op})
        else:
            job.status = FAILED
            job.error = error
            counter("serve.failed").inc()
            self._journal.append("failed", id=job.job_id, error=error)
        duration = wall_s if wall_s is not None else (
            job.finished_at - (job.started_at or job.submitted_at))
        histogram("serve.job_seconds",
                  "pipeline seconds per executed job").observe(duration)
        self._admission.observe_job_seconds(duration)
        if self._inflight.get(job.fingerprint) == job.job_id:
            del self._inflight[job.fingerprint]
        self._trim_finished()

    def _trim_finished(self) -> None:
        if len(self._jobs) <= MAX_FINISHED_JOBS:
            return
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.status in (DONE, FAILED)]
        for job_id in finished[:len(self._jobs) - MAX_FINISHED_JOBS]:
            del self._jobs[job_id]

    # -- routes ------------------------------------------------------------

    def _route_submit(self, request: HttpRequest) -> HttpResponse:
        if self._draining:
            raise HttpError(503, "server is draining",
                            headers={"Retry-After": "5"})
        try:
            spec = JobSpec.from_dict(request.json()).validate()
        except ProtocolError as exc:
            raise HttpError(400, str(exc)) from exc
        except TypeError as exc:
            raise HttpError(400, f"malformed request: {exc}") from exc
        fingerprint = spec.fingerprint()
        counter("serve.submitted", "job submissions accepted").inc()

        # Single flight: identical in-flight work absorbs the submission.
        existing_id = self._inflight.get(fingerprint)
        if existing_id is not None:
            job = self._jobs[existing_id]
            job.coalesced_count += 1
            counter("serve.coalesced",
                    "submissions absorbed by an in-flight twin").inc()
            return HttpResponse.from_json(
                {"job": job.as_dict(), "coalesced": True}, status=200)

        # Warm path: a finished twin lives in the artifact store.
        stored = get_store().get("serve", {"request": fingerprint})
        if stored is not MISS:
            job = self._new_job(spec, fingerprint)
            now = wall_clock()
            job.status = DONE
            job.started_at = job.finished_at = now
            job.served_from = FROM_STORE
            job.result = stored["result"]
            counter("serve.store_served",
                    "submissions answered from the artifact store").inc()
            self._journal.append("submitted", id=job.job_id,
                                 fingerprint=fingerprint,
                                 spec=spec.as_dict())
            self._journal.append("done", id=job.job_id,
                                 served_from=FROM_STORE)
            return HttpResponse.from_json(
                {"job": job.as_dict(), "coalesced": False}, status=200)

        # Cold path: admission control, then the queue.
        job = self._new_job(spec, fingerprint)
        try:
            self._admission.admit(job)
        except QueueFull as exc:
            del self._jobs[job.job_id]
            raise HttpError(
                429,
                f"queue full ({exc.depth} jobs); retry in "
                f"{exc.retry_after}s",
                headers={"Retry-After": str(exc.retry_after)}) from exc
        self._inflight[fingerprint] = job.job_id
        self._journal.append("submitted", id=job.job_id,
                             fingerprint=fingerprint, spec=spec.as_dict())
        return HttpResponse.from_json(
            {"job": job.as_dict(), "coalesced": False}, status=202)

    def _new_job(self, spec: JobSpec, fingerprint: str) -> Job:
        job = Job(job_id=f"job-{self._seq}-{fingerprint[:8]}", spec=spec,
                  fingerprint=fingerprint, status=QUEUED,
                  submitted_at=wall_clock())
        self._seq += 1
        self._jobs[job.job_id] = job
        return job

    def _route_list(self, request: HttpRequest) -> HttpResponse:
        jobs = [job.summary() for job in self._jobs.values()]
        status_filter = request.query.get("status")
        if status_filter:
            jobs = [j for j in jobs if j["status"] == status_filter]
        return HttpResponse.from_json({
            "jobs": jobs,
            "queued": len(self._admission),
            "running": self._running,
        })

    def _route_job(self, request: HttpRequest,
                   job_id: str) -> HttpResponse:
        job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job {job_id!r}")
        return HttpResponse.from_json({"job": job.as_dict()})

    def _route_health(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.from_json({
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "workers": self.workers,
            "worker_mode": self.config.worker_mode,
            "queued": len(self._admission),
            "queue_depth": self.config.queue_depth,
            "running": self._running,
            "jobs": len(self._jobs),
        })

    def _route_metrics(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.from_text(
            get_registry().to_prometheus(),
            content_type="text/plain; version=0.0.4; charset=utf-8")

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(self._error_response(exc, close=True)
                                 .render())
                    await writer.drain()
                    break
                if request is None:
                    break
                response = self._dispatch_request(request)
                if not request.keep_alive or self._draining:
                    response.close = True
                writer.write(response.render())
                await writer.drain()
                if response.close:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _dispatch_request(self, request: HttpRequest) -> HttpResponse:
        counter("serve.http_requests", "HTTP requests handled").inc()
        try:
            handler, params = self._router.match(request.method,
                                                 request.path)
            return handler(request, **params)
        except HttpError as exc:
            return self._error_response(exc)
        except Exception:
            _log.exception("request_failed", method=request.method,
                           path=request.path)
            counter("serve.http_errors").inc()
            return self._error_response(
                HttpError(500, "internal server error"))

    @staticmethod
    def _error_response(exc: HttpError, close: bool = False
                        ) -> HttpResponse:
        response = HttpResponse.from_json(
            {"error": exc.message, "status": exc.status},
            status=exc.status, headers=exc.headers)
        response.close = close
        return response


def run_server(config: ServeConfig,
               on_started=None) -> int:
    """Blocking entry point for ``repro serve``.

    Installs loop signal handlers (overriding the CLI's synchronous
    SIGTERM translation for the lifetime of the loop), runs until drained
    and returns the exit status.  ``on_started`` is called with the bound
    base URL once the listener is up — the CLI uses it to print the
    address only after binding cannot fail anymore.
    """

    async def _amain() -> int:
        server = JobServer(config)
        await server.start()
        server.install_signal_handlers()
        if on_started is not None:
            on_started(server.address)
        return await server.run_until_drained()

    return asyncio.run(_amain())


class ServerThread:
    """A JobServer on a background thread (tests and benchmarks).

    Signal handlers are not installed (not possible off the main
    thread); stop the server with :meth:`stop`, which performs the same
    graceful drain a SIGTERM would.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[JobServer] = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        async def _amain() -> None:
            self._server = JobServer(self.config)
            try:
                await self._server.start()
                self.address = self._server.address
            finally:
                self._started.set()
            await self._server.run_until_drained()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(_amain())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._started.set()
        finally:
            self._loop.close()

    def start(self, timeout: float = 30.0) -> str:
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error}") from self._error
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._server.request_drain)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - hard failure
            raise TimeoutError("server did not drain in time")
        if self._error is not None:
            raise RuntimeError(
                f"server thread failed: {self._error}") from self._error
