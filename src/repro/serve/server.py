"""The resident ATPG job server.

One asyncio event loop owns all bookkeeping (job table, coalescing index,
admission queue, journal); pipeline work runs in a worker pool
(:class:`~concurrent.futures.ProcessPoolExecutor` by default) sized by the
shared ``--jobs``/``REPRO_JOBS`` rule.  Request flow for ``POST /v1/jobs``:

1. **validate** the spec and compute its store fingerprint,
2. **coalesce**: an identical job already queued or running absorbs the
   submission (same job id, one pipeline run for N clients),
3. **warm-serve**: a result already published to the artifact store under
   this fingerprint completes the job instantly, no worker involved,
4. **admit**: the bounded queue accepts the job (or answers 429 with a
   ``Retry-After`` estimate), the journal records it, a dispatcher hands
   it to the pool when a worker frees up.

Telemetry flows end to end.  Each submission opens a ``serve.submit``
span (parented under the client's ``traceparent`` header when present);
its context rides into the worker via the spec, and the worker's span
tree comes back in the job outcome, so every finished job leaves one
stitched cross-process trace at ``<cache>/traces/<job_id>.jsonl``.
While a job runs, workers push throttled progress events and liveness
heartbeats over a ``multiprocessing`` queue; the server republishes them
as a ``progress`` block on ``GET /v1/jobs/<id>`` and as a chunked-NDJSON
long-poll stream on ``GET /v1/jobs/<id>/events``.  Jobs that overshoot
the EWMA-derived duration threshold land in a slow-job log next to the
traces.

``SIGTERM``/``SIGINT`` start a graceful drain: admission closes, running
jobs get ``drain_timeout`` seconds to finish, the queued backlog persists
in the JSONL journal (or is finished in-line when no journal is
configured), and the process exits 0.  A restarted server replays the
journal and resumes the backlog before accepting new work.
"""

from __future__ import annotations

import asyncio
import functools
import json
import multiprocessing
import os
import signal
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.jobs import resolve_jobs
from repro.obs import Span, atomic_write_text, counter, epoch_seconds, \
    gauge, get_logger, get_registry, histogram, parse_traceparent, \
    wall_clock
from repro.obs.trace import flatten_span_dict
from repro.store import MISS, default_cache_dir, get_store
from repro.serve.admission import CLOSED, AdmissionController, QueueFull
from repro.serve.httpd import HttpError, HttpRequest, HttpResponse, \
    NdjsonStream, Router, read_request
from repro.serve.journal import JobJournal
from repro.serve.protocol import DONE, FAILED, FROM_PIPELINE, FROM_STORE, \
    Job, JobSpec, ProtocolError, QUEUED, RUNNING
from repro.serve.worker import execute_job, init_worker_progress

_log = get_logger("serve")

#: Finished jobs kept in the in-memory table for ``GET /v1/jobs``.
MAX_FINISHED_JOBS = 1000


@dataclass
class ServeConfig:
    """Deployment knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 8371
    jobs: Optional[int] = None        # worker pool size (shared --jobs rule)
    queue_depth: int = 64             # admission bound
    journal_path: Optional[str] = None
    drain_timeout: float = 30.0       # seconds running jobs get on drain
    job_timeout: Optional[float] = None  # per-job wall budget once running
    worker_mode: str = "process"      # process | thread
    #: Progress telemetry: in-worker event throttle and heartbeat cadence.
    progress_interval: float = 0.25
    heartbeat_s: float = 5.0
    #: Idle seconds before an ``/events`` stream emits a keep-alive line.
    events_keepalive_s: float = 15.0
    #: Where stitched per-job traces (and the slow-job log) land; defaults
    #: to ``<cache>/traces`` next to the artifact store.
    trace_dir: Optional[str] = None
    #: A finished pipeline job is "slow" when its duration exceeds
    #: ``slow_job_factor`` × the admission EWMA (floored at
    #: ``slow_job_min_s``); slow jobs get a warning log line with their
    #: trace path and phase breakdown, plus an entry in slow_jobs.jsonl.
    slow_job_factor: float = 3.0
    slow_job_min_s: float = 1.0


class JobServer:
    """One resident server: HTTP front, admission, pool, journal."""

    def __init__(self, config: ServeConfig):
        if config.worker_mode not in ("process", "thread"):
            raise ValueError(
                f"bad worker_mode {config.worker_mode!r}; "
                "expected process|thread")
        self.config = config
        self.workers = resolve_jobs(config.jobs)
        self.address: Optional[str] = None
        self.trace_dir = config.trace_dir or os.path.join(
            default_cache_dir(), "traces")
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> job id
        self._submit_spans: Dict[str, Span] = {}  # job id -> open span
        self._event_signals: Dict[str, asyncio.Event] = {}
        self._seq = 1
        self._running = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._journal = JobJournal(config.journal_path)
        self._admission = AdmissionController(
            config.queue_depth, self.workers,
            on_expired=self._on_queue_expired)
        self._executor: Optional[Executor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._progress_queue: Optional[Any] = None
        self._progress_thread: Optional[threading.Thread] = None
        self._dispatchers = []
        self._router = Router()
        self._router.add("POST", "/v1/jobs", self._route_submit)
        self._router.add("GET", "/v1/jobs", self._route_list)
        self._router.add("GET", "/v1/jobs/{job_id}", self._route_job)
        self._router.add("GET", "/v1/jobs/{job_id}/events",
                         self._route_job_events)
        self._router.add("GET", "/healthz", self._route_health)
        self._router.add("GET", "/metrics", self._route_metrics)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> str:
        """Bind, replay the journal, start dispatchers; returns base URL."""
        self._loop = asyncio.get_event_loop()
        # One queue serves every worker for the server's lifetime; it is
        # handed over at pool-spawn time (the only moment a multiprocessing
        # queue may legally cross the process boundary).
        self._progress_queue = multiprocessing.SimpleQueue()
        if self.config.worker_mode == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker_progress,
                initargs=(self._progress_queue,))
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="serve-worker",
                initializer=init_worker_progress,
                initargs=(self._progress_queue,))
        self._progress_thread = threading.Thread(
            target=self._drain_progress_queue, daemon=True,
            name="serve-progress")
        self._progress_thread.start()
        gauge("serve.workers", "worker pool size").set(self.workers)
        self._resume_from_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        host, port = self._server.sockets[0].getsockname()[:2]
        self.address = f"http://{host}:{port}"
        self._dispatchers = [
            asyncio.ensure_future(self._dispatcher())
            for _ in range(self.workers)
        ]
        _log.info("serve_started", address=self.address,
                  workers=self.workers, mode=self.config.worker_mode,
                  queue_depth=self.config.queue_depth,
                  journal=self.config.journal_path or "",
                  trace_dir=self.trace_dir)
        return self.address

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, functools.partial(self.request_drain, signum))

    def request_drain(self, signum: int = signal.SIGTERM) -> None:
        """Begin graceful shutdown (idempotent, callable from the loop)."""
        if self._draining:
            return
        self._draining = True
        _log.info("serve_draining", signum=signum,
                  queued=len(self._admission), running=self._running)
        # With a journal the backlog is durable, so drain fast: persist
        # queued jobs and only wait for the ones already on a worker.
        # Without one, finishing the backlog is the only non-lossy option.
        self._admission.close(keep_backlog=not self._journal.enabled)
        # Wake every /events streamer so it can terminate its response
        # instead of holding the listener open past the drain.
        for signal_ in self._event_signals.values():
            signal_.set()
        self._drained.set()

    async def run_until_drained(self) -> int:
        """Serve until a drain is requested, then shut down; returns 0."""
        await self._drained.wait()
        try:
            await asyncio.wait_for(
                asyncio.gather(*self._dispatchers, return_exceptions=True),
                timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:
            _log.warning("drain_timeout_exceeded",
                         timeout=self.config.drain_timeout)
            for task in self._dispatchers:
                task.cancel()
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._server.close()
        await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._progress_queue is not None:
            try:
                self._progress_queue.put(None)  # reader-thread sentinel
            except (OSError, ValueError):  # pragma: no cover
                pass
        if self._progress_thread is not None:
            self._progress_thread.join(timeout=2.0)
        self._journal.close()
        _log.info("serve_stopped", jobs_total=len(self._jobs))
        return 0

    async def run(self, install_signals: bool = True) -> int:
        await self.start()
        if install_signals:
            self.install_signal_handlers()
        return await self.run_until_drained()

    # -- journal resume ----------------------------------------------------

    def _resume_from_journal(self) -> None:
        survivors, next_seq = self._journal.replay()
        self._seq = max(self._seq, next_seq)
        for record in survivors:
            try:
                spec = JobSpec.from_dict(record["spec"]).validate()
            except (ProtocolError, KeyError, TypeError) as exc:
                _log.warning("journal_bad_spec", id=record.get("id"),
                             error=str(exc))
                continue
            job = Job(job_id=record["id"], spec=spec,
                      fingerprint=spec.fingerprint(),
                      submitted_at=wall_clock())
            # Parent the resumed run under the journaled submit context so
            # the job keeps one trace across the restart.
            self._attach_submit_span(job, client_trace=spec.trace)
            self._jobs[job.job_id] = job
            self._inflight[job.fingerprint] = job.job_id
            # Resumed work predates this process's admission window, so
            # it may exceed queue_depth; it must never be dropped.
            self._admission.admit(job, force=True)
        if survivors:
            _log.info("journal_resume_enqueued", jobs=len(survivors))

    def _on_queue_expired(self, job: Job) -> None:
        self._inflight.pop(job.fingerprint, None)
        self._journal.append("failed", id=job.job_id, error=job.error)
        self._publish_event(job, {"event": "failed", "error": job.error,
                                  "t": round(epoch_seconds(
                                      job.finished_at), 6)})
        self._finalize_trace(job)

    # -- progress channel --------------------------------------------------

    def _drain_progress_queue(self) -> None:
        """Reader thread: pump worker events onto the event loop."""
        while True:
            try:
                item = self._progress_queue.get()
            except (EOFError, OSError):
                return
            if item is None:
                return
            try:
                job_id, payload = item
            except (TypeError, ValueError):
                continue
            try:
                self._loop.call_soon_threadsafe(
                    self._on_progress, job_id, payload)
            except RuntimeError:  # loop already closed
                return

    def _on_progress(self, job_id: str, payload: Any) -> None:
        job = self._jobs.get(job_id)
        if job is None or job.status in (DONE, FAILED) \
                or not isinstance(payload, dict):
            return
        job.last_event_at = wall_clock()
        if payload.get("event") == "heartbeat":
            return  # liveness only; not part of the event log
        if payload.get("event") == "progress":
            job.progress = {k: v for k, v in payload.items()
                            if k != "event"}
            counter("serve.progress_events",
                    "worker progress events received").inc()
        self._publish_event(job, payload)

    def _publish_event(self, job: Job, payload: Dict[str, Any]) -> None:
        job.append_event(payload)
        signal_ = self._event_signals.get(job.job_id)
        if signal_ is not None:
            signal_.set()

    # -- dispatch ----------------------------------------------------------

    async def _dispatcher(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job = await self._admission.next_job()
            if job is CLOSED:
                return
            job.status = RUNNING
            job.started_at = wall_clock()
            job.last_event_at = job.started_at
            self._running += 1
            gauge("serve.running", "jobs on a worker").set(self._running)
            gauge("serve.workers_busy",
                  "workers executing a job right now").set(self._running)
            histogram("serve.queue_wait_seconds").observe(
                job.started_at - job.submitted_at)
            self._journal.append("started", id=job.job_id)
            self._publish_event(job, {
                "event": "started",
                "t": round(epoch_seconds(job.started_at), 6)})
            fresh_registry = self.config.worker_mode == "process"
            try:
                future = loop.run_in_executor(
                    self._executor, functools.partial(
                        execute_job, job.spec.as_dict(),
                        fresh_registry=fresh_registry,
                        job_id=job.job_id,
                        progress_interval=self.config.progress_interval,
                        heartbeat_s=self.config.heartbeat_s))
                counter("serve.executed",
                        "jobs dispatched to the pipeline").inc()
                if self.config.job_timeout is not None:
                    outcome = await asyncio.wait_for(
                        asyncio.shield(future),
                        timeout=self.config.job_timeout)
                else:
                    outcome = await future
            except asyncio.TimeoutError:
                self._finish(job, ok=False,
                             error=f"job exceeded the server's "
                                   f"{self.config.job_timeout}s run budget")
                continue
            except Exception as exc:  # pool broke, worker died...
                self._finish(job, ok=False,
                             error=f"worker failure: {exc}")
                continue
            finally:
                self._running -= 1
                gauge("serve.running").set(self._running)
                gauge("serve.workers_busy").set(self._running)
            if outcome["metrics"]:
                get_registry().merge_snapshot(outcome["metrics"])
            spans = outcome.get("spans") or []
            if outcome["ok"]:
                self._finish(job, ok=True, result=outcome["result"],
                             wall_s=outcome["wall_s"], spans=spans)
            else:
                self._finish(job, ok=False, error=outcome["error"],
                             spans=spans)

    def _finish(self, job: Job, ok: bool, result=None, error=None,
                wall_s: Optional[float] = None,
                spans: Optional[List[Dict[str, Any]]] = None) -> None:
        job.finished_at = wall_clock()
        if ok:
            job.status = DONE
            job.served_from = FROM_PIPELINE
            job.result = result
            counter("serve.completed").inc()
            self._journal.append("done", id=job.job_id,
                                 served_from=FROM_PIPELINE)
            get_store().put("serve", {"request": job.fingerprint},
                            {"result": result, "op": job.spec.op})
        else:
            job.status = FAILED
            job.error = error
            counter("serve.failed").inc()
            self._journal.append("failed", id=job.job_id, error=error)
        duration = wall_s if wall_s is not None else (
            job.finished_at - (job.started_at or job.submitted_at))
        histogram("serve.job_seconds",
                  "pipeline seconds per executed job").observe(duration)
        slow_threshold = max(
            self.config.slow_job_min_s,
            self.config.slow_job_factor * self._admission.job_seconds_ewma)
        self._admission.observe_job_seconds(duration)
        if self._inflight.get(job.fingerprint) == job.job_id:
            del self._inflight[job.fingerprint]
        terminal = {"event": "done" if ok else "failed",
                    "t": round(epoch_seconds(job.finished_at), 6),
                    "wall_s": round(duration, 6)}
        if ok:
            terminal["served_from"] = job.served_from
        else:
            terminal["error"] = error
        self._finalize_trace(job, spans)
        self._publish_event(job, terminal)
        if duration > slow_threshold:
            self._log_slow_job(job, duration, slow_threshold, spans)
        self._trim_finished()

    # -- traces and slow jobs ----------------------------------------------

    def _attach_submit_span(self, job: Job,
                            client_trace: Optional[str] = None) -> None:
        """Open the server-side root span and thread its context onward."""
        submit = Span("serve.submit",
                      {"op": job.spec.op, "job_id": job.job_id},
                      context=parse_traceparent(client_trace))
        job.trace_id = submit.trace_id
        job.spec.trace = submit.context.to_traceparent()
        self._submit_spans[job.job_id] = submit

    def _finalize_trace(self, job: Job,
                        spans: Optional[List[Dict[str, Any]]] = None
                        ) -> None:
        """Stitch server + worker spans into one trace file per job."""
        submit = self._submit_spans.pop(job.job_id, None)
        if submit is None:
            return
        submit.set("status", job.status)
        if job.served_from is not None:
            submit.set("served_from", job.served_from)
        if job.started_at is not None:
            submit.set("queue_wait_s",
                       round(job.started_at - job.submitted_at, 6))
        submit.finish()
        lines = flatten_span_dict(submit.to_dict(), process="server")
        for tree in spans or []:
            if isinstance(tree, dict):
                lines.extend(flatten_span_dict(tree, process="worker"))
        path = os.path.join(self.trace_dir, f"{job.job_id}.jsonl")
        try:
            os.makedirs(self.trace_dir, exist_ok=True)
            atomic_write_text(path, "".join(
                json.dumps(line, separators=(",", ":"), sort_keys=True)
                + "\n" for line in lines))
        except OSError as exc:  # pragma: no cover - disk trouble
            _log.warning("trace_write_failed", id=job.job_id,
                         error=str(exc))
            return
        job.trace_path = path
        counter("serve.traces_written").inc()

    def _log_slow_job(self, job: Job, duration: float, threshold: float,
                      spans: Optional[List[Dict[str, Any]]]) -> None:
        """Record a job that overshot the EWMA-derived duration threshold."""
        phases = {}
        for tree in spans or []:
            if isinstance(tree, dict):
                for child in tree.get("children") or []:
                    name = child.get("name", "?")
                    phases[name] = round(
                        phases.get(name, 0.0)
                        + (child.get("wall_s") or 0.0), 3)
        counter("serve.slow_jobs",
                "jobs exceeding the EWMA slow threshold").inc()
        _log.warning("slow_job", id=job.job_id, op=job.spec.op,
                     wall_s=round(duration, 3),
                     threshold_s=round(threshold, 3),
                     trace=job.trace_path or "",
                     phases=json.dumps(phases, sort_keys=True))
        entry = {"id": job.job_id, "op": job.spec.op,
                 "t": round(epoch_seconds(wall_clock()), 6),
                 "wall_s": round(duration, 6),
                 "threshold_s": round(threshold, 6),
                 "trace": job.trace_path, "phases": phases}
        try:
            os.makedirs(self.trace_dir, exist_ok=True)
            with open(os.path.join(self.trace_dir, "slow_jobs.jsonl"),
                      "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - disk trouble
            pass

    def _trim_finished(self) -> None:
        if len(self._jobs) <= MAX_FINISHED_JOBS:
            return
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.status in (DONE, FAILED)]
        for job_id in finished[:len(self._jobs) - MAX_FINISHED_JOBS]:
            del self._jobs[job_id]
            self._event_signals.pop(job_id, None)

    # -- routes ------------------------------------------------------------

    def _route_submit(self, request: HttpRequest) -> HttpResponse:
        if self._draining:
            raise HttpError(503, "server is draining",
                            headers={"Retry-After": "5"})
        try:
            spec = JobSpec.from_dict(request.json()).validate()
        except ProtocolError as exc:
            raise HttpError(400, str(exc)) from exc
        except TypeError as exc:
            raise HttpError(400, f"malformed request: {exc}") from exc
        client_trace = request.headers.get("traceparent")
        fingerprint = spec.fingerprint()
        counter("serve.submitted", "job submissions accepted").inc()

        # Single flight: identical in-flight work absorbs the submission.
        existing_id = self._inflight.get(fingerprint)
        if existing_id is not None:
            job = self._jobs[existing_id]
            job.coalesced_count += 1
            counter("serve.coalesced",
                    "submissions absorbed by an in-flight twin").inc()
            return self._submit_response(job, coalesced=True, status=200)

        # Warm path: a finished twin lives in the artifact store.
        stored = get_store().get("serve", {"request": fingerprint})
        if stored is not MISS:
            job = self._new_job(spec, fingerprint, client_trace)
            now = wall_clock()
            job.status = DONE
            job.started_at = job.finished_at = now
            job.served_from = FROM_STORE
            job.result = stored["result"]
            counter("serve.store_served",
                    "submissions answered from the artifact store").inc()
            self._journal.append("submitted", id=job.job_id,
                                 fingerprint=fingerprint,
                                 spec=spec.as_dict())
            self._journal.append("done", id=job.job_id,
                                 served_from=FROM_STORE)
            self._finalize_trace(job)
            self._publish_event(job, {"event": "done",
                                      "served_from": FROM_STORE,
                                      "t": round(epoch_seconds(now), 6)})
            return self._submit_response(job, coalesced=False, status=200)

        # Cold path: admission control, then the queue.
        job = self._new_job(spec, fingerprint, client_trace)
        try:
            self._admission.admit(job)
        except QueueFull as exc:
            del self._jobs[job.job_id]
            self._submit_spans.pop(job.job_id, None)
            raise HttpError(
                429,
                f"queue full ({exc.depth} jobs); retry in "
                f"{exc.retry_after}s",
                headers={"Retry-After": str(exc.retry_after)}) from exc
        self._inflight[fingerprint] = job.job_id
        self._journal.append("submitted", id=job.job_id,
                             fingerprint=fingerprint, spec=spec.as_dict())
        self._publish_event(job, {
            "event": "submitted", "op": job.spec.op,
            "t": round(epoch_seconds(job.submitted_at), 6)})
        return self._submit_response(job, coalesced=False, status=202)

    def _new_job(self, spec: JobSpec, fingerprint: str,
                 client_trace: Optional[str] = None) -> Job:
        job = Job(job_id=f"job-{self._seq}-{fingerprint[:8]}", spec=spec,
                  fingerprint=fingerprint, status=QUEUED,
                  submitted_at=wall_clock())
        self._seq += 1
        self._attach_submit_span(job, client_trace)
        self._jobs[job.job_id] = job
        return job

    def _submit_response(self, job: Job, coalesced: bool,
                         status: int) -> HttpResponse:
        headers = {}
        if job.spec.trace:
            headers["traceparent"] = job.spec.trace
        return HttpResponse.from_json(
            {"job": job.as_dict(), "coalesced": coalesced},
            status=status, headers=headers)

    def _route_list(self, request: HttpRequest) -> HttpResponse:
        jobs = [job.summary() for job in self._jobs.values()]
        status_filter = request.query.get("status")
        if status_filter:
            jobs = [j for j in jobs if j["status"] == status_filter]
        return HttpResponse.from_json({
            "jobs": jobs,
            "queued": len(self._admission),
            "running": self._running,
        })

    def _route_job(self, request: HttpRequest,
                   job_id: str) -> HttpResponse:
        job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job {job_id!r}")
        return HttpResponse.from_json({"job": job.as_dict()})

    def _route_job_events(self, request: HttpRequest,
                          job_id: str) -> NdjsonStream:
        job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job {job_id!r}")
        since_raw = request.query.get("since", "0")
        try:
            since = int(since_raw)
        except ValueError as exc:
            raise HttpError(
                400, f"bad 'since' cursor {since_raw!r}") from exc
        counter("serve.event_streams", "event-stream requests").inc()
        return NdjsonStream(self._event_lines(job, since))

    async def _event_lines(self, job: Job, since: int):
        """Replay events past ``since``, then follow until terminal."""
        signal_ = self._event_signals.setdefault(job.job_id,
                                                 asyncio.Event())
        cursor = since
        while True:
            for event in list(job.events):
                if event["seq"] > cursor:
                    cursor = event["seq"]
                    yield json.dumps(event, separators=(",", ":"),
                                     sort_keys=True) + "\n"
            if job.status in (DONE, FAILED):
                return
            if self._draining:
                yield json.dumps({"event": "draining"}) + "\n"
                return
            # No await between the scan above and this clear, so a wake-up
            # cannot be lost: appends happen on this same loop thread.
            signal_.clear()
            try:
                await asyncio.wait_for(
                    signal_.wait(),
                    timeout=self.config.events_keepalive_s)
            except asyncio.TimeoutError:
                yield json.dumps({
                    "event": "keepalive",
                    "t": round(epoch_seconds(wall_clock()), 6)}) + "\n"

    def _route_health(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.from_json({
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "workers": self.workers,
            "worker_mode": self.config.worker_mode,
            "queued": len(self._admission),
            "queue_depth": self.config.queue_depth,
            "running": self._running,
            "jobs": len(self._jobs),
        })

    def _route_metrics(self, request: HttpRequest) -> HttpResponse:
        ages = [wall_clock() - job.last_event_at
                for job in self._jobs.values()
                if job.status == RUNNING and job.last_event_at is not None]
        gauge("serve.heartbeat_age_seconds",
              "seconds since the last worker event, max over running jobs"
              ).set(round(max(ages), 3) if ages else 0.0)
        gauge("serve.workers_busy",
              "workers executing a job right now").set(self._running)
        return HttpResponse.from_text(
            get_registry().to_prometheus(),
            content_type="text/plain; version=0.0.4; charset=utf-8")

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(self._error_response(exc, close=True)
                                 .render())
                    await writer.drain()
                    break
                if request is None:
                    break
                response = self._dispatch_request(request)
                if not request.keep_alive or self._draining:
                    response.close = True
                if isinstance(response, NdjsonStream):
                    if not await self._write_stream(writer, response):
                        break
                else:
                    writer.write(response.render())
                    await writer.drain()
                if response.close:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _write_stream(self, writer: asyncio.StreamWriter,
                            response: NdjsonStream) -> bool:
        """Send a chunked NDJSON response; False if the connection must
        close (generator failure — the terminator was never sent, so the
        client sees the truncation instead of a silently-complete body)."""
        writer.write(response.render_head())
        await writer.drain()
        try:
            async for line in response.lines:
                writer.write(NdjsonStream.encode_chunk(line))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:
            _log.exception("event_stream_failed")
            return False
        finally:
            aclose = getattr(response.lines, "aclose", None)
            if aclose is not None:
                try:
                    await aclose()
                except Exception:  # pragma: no cover
                    pass
        writer.write(NdjsonStream.terminator())
        await writer.drain()
        return True

    def _dispatch_request(self, request: HttpRequest):
        counter("serve.http_requests", "HTTP requests handled").inc()
        try:
            handler, params = self._router.match(request.method,
                                                 request.path)
            return handler(request, **params)
        except HttpError as exc:
            return self._error_response(exc)
        except Exception:
            _log.exception("request_failed", method=request.method,
                           path=request.path)
            counter("serve.http_errors").inc()
            return self._error_response(
                HttpError(500, "internal server error"))

    @staticmethod
    def _error_response(exc: HttpError, close: bool = False
                        ) -> HttpResponse:
        response = HttpResponse.from_json(
            {"error": exc.message, "status": exc.status},
            status=exc.status, headers=exc.headers)
        response.close = close
        return response


def run_server(config: ServeConfig,
               on_started=None) -> int:
    """Blocking entry point for ``repro serve``.

    Installs loop signal handlers (overriding the CLI's synchronous
    SIGTERM translation for the lifetime of the loop), runs until drained
    and returns the exit status.  ``on_started`` is called with the bound
    base URL once the listener is up — the CLI uses it to print the
    address only after binding cannot fail anymore.
    """

    async def _amain() -> int:
        server = JobServer(config)
        await server.start()
        server.install_signal_handlers()
        if on_started is not None:
            on_started(server.address)
        return await server.run_until_drained()

    return asyncio.run(_amain())


class ServerThread:
    """A JobServer on a background thread (tests and benchmarks).

    Signal handlers are not installed (not possible off the main
    thread); stop the server with :meth:`stop`, which performs the same
    graceful drain a SIGTERM would.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[JobServer] = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        async def _amain() -> None:
            self._server = JobServer(self.config)
            try:
                await self._server.start()
                self.address = self._server.address
            finally:
                self._started.set()
            await self._server.run_until_drained()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(_amain())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._started.set()
        finally:
            self._loop.close()

    def start(self, timeout: float = 30.0) -> str:
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error}") from self._error
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._server.request_drain)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - hard failure
            raise TimeoutError("server did not drain in time")
        if self._error is not None:
            raise RuntimeError(
                f"server thread failed: {self._error}") from self._error
