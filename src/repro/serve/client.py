"""Minimal blocking client for the job server.

Used by ``repro submit`` / ``repro jobs``, the serve benchmark suite and
the tests.  Plain stdlib ``http.client`` — one connection per request,
which keeps the client trivially thread-safe for concurrent submitters.
"""

from __future__ import annotations

import json
import os
import random
import time
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlparse

DEFAULT_SERVER = "http://127.0.0.1:8371"


def default_server_url() -> str:
    """``REPRO_SERVER`` env override, else the default local address."""
    return os.environ.get("REPRO_SERVER", DEFAULT_SERVER)


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[int] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServeClient:
    """Thin request wrapper over one server base URL."""

    def __init__(self, base_url: Optional[str] = None,
                 timeout: float = 30.0):
        parsed = urlparse(base_url or default_server_url())
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} "
                             "(the job server speaks plain http)")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8371
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None,
                headers: Optional[Dict[str, str]] = None
                ) -> Tuple[int, Dict[str, str], Any]:
        """One request; returns (status, headers, parsed body)."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            send_headers = {"Connection": "close"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            send_headers.update(headers or {})
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            header_map = {k.lower(): v for k, v in response.getheaders()}
        finally:
            conn.close()
        content_type = header_map.get("content-type", "")
        if content_type.startswith("application/json"):
            parsed = json.loads(raw.decode("utf-8")) if raw else None
        else:
            parsed = raw.decode("utf-8", errors="replace")
        return response.status, header_map, parsed

    def _checked(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 headers: Optional[Dict[str, str]] = None) -> Any:
        status, headers, body = self.request(method, path, payload,
                                             headers=headers)
        if status >= 400:
            message = body.get("error", str(body)) \
                if isinstance(body, dict) else str(body)
            retry_after = headers.get("retry-after")
            raise ServeError(status, message,
                             retry_after=int(retry_after)
                             if retry_after else None)
        return body

    # -- API ---------------------------------------------------------------

    def submit(self, spec: Dict[str, Any],
               traceparent: Optional[str] = None) -> Dict[str, Any]:
        """Submit a job spec; returns ``{"job": ..., "coalesced": ...}``.

        ``traceparent`` propagates a caller-side trace context: the
        server parents its submit span (and everything under it) there.
        """
        headers = {"traceparent": traceparent} if traceparent else None
        return self._checked("POST", "/v1/jobs", spec, headers=headers)

    def submit_with_retry(self, spec: Dict[str, Any],
                          traceparent: Optional[str] = None,
                          max_retries: int = 8,
                          base_delay: float = 0.1,
                          max_delay: float = 10.0,
                          rng: Optional[random.Random] = None,
                          sleep=None) -> Dict[str, Any]:
        """Submit, riding out 429 admission pushback instead of failing.

        Batch submitters (campaigns) are exactly the overload traffic the
        server's bounded queue throttles; a 429 means "later", not
        "never".  Backoff is capped exponential with jitter, and the
        server's ``Retry-After`` hint is honored as the floor of each
        delay (still capped at ``max_delay``).  Other errors, and a 429
        persisting past ``max_retries``, raise as usual.  ``rng`` and
        ``sleep`` are injectable for deterministic tests.
        """
        rng = rng if rng is not None else random.Random()
        do_sleep = sleep if sleep is not None else time.sleep
        attempt = 0
        while True:
            try:
                return self.submit(spec, traceparent=traceparent)
            except ServeError as exc:
                if exc.status != 429 or attempt >= max_retries:
                    raise
                delay = min(max_delay, base_delay * (2 ** attempt))
                delay *= 0.5 + rng.random() / 2  # full-ish jitter
                if exc.retry_after:
                    delay = max(delay, float(exc.retry_after))
                do_sleep(min(delay, max_delay))
                attempt += 1

    def submit_batch(self, specs: List[Dict[str, Any]],
                     traceparent: Optional[str] = None,
                     timeout: float = 600.0,
                     **retry_kwargs) -> List[Dict[str, Any]]:
        """Submit every spec, then wait for every job; returns final jobs.

        All submissions go out before any waiting starts, so identical
        specs in the batch coalesce onto one in-flight execution on the
        server instead of serializing through the store.
        """
        submitted = [
            self.submit_with_retry(spec, traceparent=traceparent,
                                   **retry_kwargs)
            for spec in specs
        ]
        return [self.wait(sub["job"]["id"], timeout=timeout)
                for sub in submitted]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self, status: Optional[str] = None) -> Dict[str, Any]:
        path = "/v1/jobs" + (f"?status={status}" if status else "")
        return self._checked("GET", path)

    def health(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._checked("GET", "/metrics")

    def metric_value(self, name: str) -> Optional[float]:
        """One sample value out of the Prometheus exposition, by name."""
        for line in self.metrics_text().splitlines():
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2 and parts[0] == name:
                return float(parts[1])
        return None

    def events(self, job_id: str, since: int = 0,
               timeout: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Stream a job's NDJSON event feed; yields one dict per event.

        Long-poll semantics: replays events past the ``since`` cursor,
        then follows live until the job reaches a terminal state (the
        server closes the stream after the ``done``/``failed`` event).
        Keep-alive lines (``{"event": "keepalive"}``) are yielded too so
        callers can show liveness; filter on ``event`` if unwanted.
        ``timeout`` bounds each read, not the whole stream — it must
        exceed the server's keep-alive interval.
        """
        conn = HTTPConnection(self.host, self.port,
                              timeout=timeout or max(self.timeout, 60.0))
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode("utf-8"))["error"]
                except (ValueError, KeyError, UnicodeDecodeError):
                    message = raw.decode("utf-8", errors="replace")
                raise ServeError(response.status, message)
            # http.client undoes the chunked framing; iterating the
            # response yields the NDJSON lines as the server flushes them.
            for raw_line in response:
                line = raw_line.decode("utf-8").strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    yield event
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 300.0,
             interval: float = 0.05) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the job."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} "
                    f"after {timeout:.0f}s")
            time.sleep(interval)
            interval = min(interval * 1.5, 1.0)

    def wait_until_up(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServeError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)


def jobs_summary_rows(listing: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Table rows for ``repro jobs`` out of a ``GET /v1/jobs`` payload."""
    rows = []
    for job in listing.get("jobs", []):
        wait_s = run_s = None
        if job.get("started_at") is not None:
            wait_s = job["started_at"] - job["submitted_at"]
            end = job.get("finished_at")
            if end is not None:
                run_s = end - job["started_at"]
        rows.append({
            "id": job["id"],
            "op": job["op"],
            "mut": job.get("mut") or "-",
            "status": job["status"],
            "from": job.get("served_from") or "-",
            "coalesced": job.get("coalesced_count", 0),
            "wait_s": f"{wait_s:.2f}" if wait_s is not None else "-",
            "run_s": f"{run_s:.2f}" if run_s is not None else "-",
        })
    return rows
