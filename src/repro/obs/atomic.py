"""Atomic file publication: write-to-temp then :func:`os.replace`.

Every artifact the pipeline persists — ``RunRecord`` JSON, benchmark
payloads, ``--metrics-out``/``--trace-out`` files, artifact-store entries —
goes through this helper so an interrupted run can never leave a
half-written file behind: readers either see the old content or the
complete new content, on POSIX and on Windows.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-",
                                    suffix=os.path.basename(path))
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))
