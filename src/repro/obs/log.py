"""Structured logging for the FACTOR pipeline.

A thin layer over :mod:`logging` that renders records as
``event key=value ...`` lines, so pipeline events stay grep-able and
machine-parseable.  All loggers live under the ``repro`` root; nothing is
emitted until :func:`configure_logging` installs a handler (library-style
default), which the CLI does from ``--log-level``.

Usage::

    from repro.obs import get_logger

    log = get_logger("atpg")
    log.info("fault_aborted", fault=str(fault), reason="backtrack_limit")
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

_ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str):
        if value and all(not ch.isspace() and ch != '"' for ch in value):
            return value
        return repr(value)
    return str(value)


class StructuredLogger:
    """Named logger emitting ``event key=value`` structured lines."""

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def _log(self, level: int, event: str, fields: dict,
             exc_info: bool = False) -> None:
        if not self._logger.isEnabledFor(level):
            return
        parts = [event]
        parts.extend(f"{key}={_format_value(value)}"
                     for key, value in fields.items())
        self._logger.log(level, " ".join(parts), exc_info=exc_info)

    def debug(self, event: str, **fields) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._log(logging.ERROR, event, fields)

    def exception(self, event: str, **fields) -> None:
        """Error-level record with the active exception's traceback."""
        self._log(logging.ERROR, event, fields, exc_info=True)


def get_logger(name: str = "") -> StructuredLogger:
    """Structured logger under the ``repro`` namespace."""
    full = f"{_ROOT}.{name}" if name else _ROOT
    return StructuredLogger(logging.getLogger(full))


def configure_logging(level: str = "warning",
                      stream: Optional[IO[str]] = None) -> None:
    """Install (or retune) the single handler on the ``repro`` root logger.

    Idempotent: calling again replaces the previous configuration instead of
    stacking handlers.
    """
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"expected one of {sorted(_LEVELS)}")
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(
        "%(levelname)s %(name)s: %(message)s"
    ))
    root.addHandler(handler)
    root.setLevel(_LEVELS[level])
    root.propagate = False
