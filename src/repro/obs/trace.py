"""Hierarchical span tracing: the pipeline's single clock source.

Every phase of the pipeline runs inside a :class:`Span` (a context manager
recording wall time via ``perf_counter`` and CPU time via ``process_time``).
Spans nest; finished roots accumulate on the process-wide :class:`Tracer`
and can be exported three ways:

- a nested **span tree** (``Tracer.to_dict`` → ``json.dump``-able),
- **JSON lines** (one flattened span per line, ``to_jsonl``),
- **Chrome trace** format (``to_chrome_trace`` → load in
  ``chrome://tracing`` / Perfetto).

Identity is distributed-safe: every span carries a random 64-bit span ID
and a random 128-bit trace ID, so spans produced in forked worker
processes never alias and can be stitched into one trace.  A
:class:`TraceContext` is the serializable (trace-id, span-id) pair that
crosses process boundaries as a W3C ``traceparent`` header; a tracer with
an ambient context parents its new roots under the remote span.

:class:`CpuTimer` and :class:`Deadline` are the accumulating-stopwatch and
budget-check forms of the same CPU clock — ATPG per-fault budgets and the
report's accumulated fault-simulation time both go through them, so every
reported number shares one clock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional


def wall_clock() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``)."""
    return time.perf_counter()


def cpu_clock() -> float:
    """Process CPU seconds (``time.process_time``)."""
    return time.process_time()


#: perf_counter → Unix epoch offset, captured once at import.  On Linux
#: ``perf_counter`` is CLOCK_MONOTONIC, which forked/spawned children
#: share, so spans from different processes of one machine line up on a
#: common axis after conversion.
_EPOCH_OFFSET = time.time() - time.perf_counter()


def epoch_seconds(wall: float) -> float:
    """Convert a :func:`wall_clock` reading to Unix epoch seconds."""
    return wall + _EPOCH_OFFSET


class CpuTimer:
    """Accumulating CPU-seconds stopwatch.

    Use as a context manager around each slice of work whose time should be
    pooled (e.g. every fault-simulation call of an ATPG run)::

        timer = CpuTimer()
        with timer:
            simulate(...)
        report.fault_sim_seconds = timer.elapsed
    """

    __slots__ = ("elapsed", "_started")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: Optional[float] = None

    def start(self) -> "CpuTimer":
        self._started = cpu_clock()
        return self

    def stop(self) -> float:
        if self._started is not None:
            self.elapsed += cpu_clock() - self._started
            self._started = None
        return self.elapsed

    def __enter__(self) -> "CpuTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class Deadline:
    """CPU-seconds budget check started at construction time.

    A ``None`` limit never expires, which lets call sites drop the
    ``if limit is not None`` dance.
    """

    __slots__ = ("limit", "_start")

    def __init__(self, limit: Optional[float]):
        self.limit = limit
        self._start = cpu_clock()

    @property
    def elapsed(self) -> float:
        return cpu_clock() - self._start

    def expired(self) -> bool:
        return self.limit is not None and self.elapsed > self.limit


# -- identity ----------------------------------------------------------------

_ZERO_TRACE_ID = "0" * 32
_ZERO_SPAN_ID = "0" * 16


def new_trace_id() -> str:
    """Random 128-bit trace ID as 32 lowercase hex chars (never all-zero).

    ``os.urandom`` draws from the kernel, so identity stays unique across
    forked workers — unlike ``random``, whose state forks with the process.
    """
    while True:
        trace_id = os.urandom(16).hex()
        if trace_id != _ZERO_TRACE_ID:
            return trace_id


def new_span_id() -> str:
    """Random 64-bit span ID as 16 lowercase hex chars (never all-zero)."""
    while True:
        span_id = os.urandom(8).hex()
        if span_id != _ZERO_SPAN_ID:
            return span_id


@dataclass(frozen=True)
class TraceContext:
    """The serializable (trace-id, span-id) pair that crosses processes."""

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` header value (version 00)."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"


def _is_hex(text: str) -> bool:
    return bool(text) and all(c in "0123456789abcdef" for c in text)


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a W3C ``traceparent`` header; ``None`` when absent/invalid.

    Follows the spec's validation rules: the version field must be two hex
    chars and not ``ff``; trace-id is 32 hex chars, parent-id 16, flags 2;
    an all-zero trace-id or parent-id means "no trace" and is treated as
    absent; future versions (non-``00``) are accepted as long as the first
    four fields parse, version ``00`` must have exactly four fields.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[:4]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(span_id) != 16 or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == _ZERO_TRACE_ID or span_id == _ZERO_SPAN_ID:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id,
                        sampled=bool(int(flags, 16) & 0x01))


class Span:
    """One timed phase: name, attributes, children, wall + CPU durations."""

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "attrs",
                 "children", "start_wall", "end_wall", "start_cpu",
                 "end_cpu")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 context: Optional[TraceContext] = None):
        self.span_id = new_span_id()
        if context is not None:
            self.trace_id = context.trace_id
            self.parent_id: Optional[str] = context.span_id
        else:
            self.trace_id = new_trace_id()
            self.parent_id = None
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.children: List[Span] = []
        self.start_wall = wall_clock()
        self.start_cpu = cpu_clock()
        self.end_wall: Optional[float] = None
        self.end_cpu: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def finish(self) -> "Span":
        if self.end_wall is None:
            self.end_wall = wall_clock()
            self.end_cpu = cpu_clock()
        return self

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    @property
    def wall_seconds(self) -> float:
        end = self.end_wall if self.end_wall is not None else wall_clock()
        return end - self.start_wall

    @property
    def cpu_seconds(self) -> float:
        end = self.end_cpu if self.end_cpu is not None else cpu_clock()
        return end - self.start_cpu

    @property
    def context(self) -> TraceContext:
        """The context a child of this span (local or remote) inherits."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    # -- attributes --------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add(self, key: str, amount: float = 1) -> None:
        self.attrs[key] = self.attrs.get(key, 0) + amount

    # -- traversal / export ------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Yield this span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "id": self.span_id,
            "trace_id": self.trace_id,
            "parent": self.parent_id,
            "wall_s": round(self.wall_seconds, 6),
            "cpu_s": round(self.cpu_seconds, 6),
            "start_wall": self.start_wall,
            "start_unix": round(epoch_seconds(self.start_wall), 6),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def adopt(self, tree: Dict[str, Any]) -> "Span":
        """Graft a remote ``to_dict`` tree onto this span as a child.

        The receiving half of cross-process span merging: a forked ATPG
        worker ships its span tree back as a dict, and the coordinator
        adopts it under the span that dispatched the work.  The adopted
        subtree is rewritten onto this span's trace identity so the whole
        run stitches into one trace regardless of what trace id the
        worker minted.
        """
        child = span_from_dict(tree, parent=self)
        self.children.append(child)
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.finished else " (open)"
        return (f"Span({self.name!r}, wall={self.wall_seconds:.4f}s,"
                f" children={len(self.children)}{state})")


def span_from_dict(tree: Dict[str, Any],
                   parent: Optional[Span] = None) -> Span:
    """Reconstruct a :class:`Span` (finished) from a ``to_dict`` tree.

    With ``parent`` given, the rebuilt span is re-parented under it —
    trace id and parent link come from ``parent``, not the dict — which
    is what cross-process adoption wants.  Durations round-trip exactly;
    CPU start/end are synthesized as ``(0, cpu_s)`` since only the delta
    is exported.  ``start_wall`` stays meaningful across fork because
    ``perf_counter`` is CLOCK_MONOTONIC, shared by forked children.
    """
    node = Span.__new__(Span)
    node.span_id = tree.get("id") or new_span_id()
    if parent is not None:
        node.trace_id = parent.trace_id
        node.parent_id = parent.span_id
    else:
        node.trace_id = tree.get("trace_id") or new_trace_id()
        node.parent_id = tree.get("parent")
    node.name = tree.get("name") or "span"
    node.attrs = dict(tree.get("attrs") or {})
    node.start_wall = float(tree.get("start_wall") or 0.0)
    node.end_wall = node.start_wall + float(tree.get("wall_s") or 0.0)
    node.start_cpu = 0.0
    node.end_cpu = float(tree.get("cpu_s") or 0.0)
    node.children = [span_from_dict(child, parent=node)
                     for child in tree.get("children") or []]
    return node


class Tracer:
    """Owns the active span stack (per thread) and the finished roots."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- ambient context ---------------------------------------------------

    def context(self) -> Optional[TraceContext]:
        """This thread's ambient remote context, if any."""
        return getattr(self._local, "context", None)

    @contextmanager
    def use_context(self, ctx: Optional[TraceContext]) -> Iterator[None]:
        """Parent new roots on this thread under a remote context.

        Spans opened inside the block join ``ctx.trace_id`` with the remote
        span as their parent — the receiving half of ``traceparent``
        propagation.  A ``None`` context makes the block a no-op.
        """
        previous = self.context()
        self._local.context = ctx
        try:
            yield
        finally:
            self._local.context = previous

    def current_context(self) -> Optional[TraceContext]:
        """Context for outbound propagation: active span, else ambient."""
        current = self.current()
        if current is not None:
            return current.context
        return self.context()

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child of the current span (or a new root)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        ctx = parent.context if parent is not None else self.context()
        node = Span(name, attrs, context=ctx)
        stack.append(node)
        try:
            yield node
        finally:
            node.finish()
            stack.pop()
            if parent is not None:
                parent.children.append(node)
            else:
                with self._lock:
                    self.roots.append(node)

    def reset(self) -> None:
        """Drop finished roots (the active stack is left alone)."""
        with self._lock:
            self.roots = []

    # -- queries -----------------------------------------------------------

    def all_spans(self) -> List[Span]:
        out: List[Span] = []
        for root in list(self.roots):
            out.extend(root.walk())
        return out

    def find(self, name: str) -> List[Span]:
        """All finished spans with the given name, anywhere in the forest."""
        return [s for s in self.all_spans() if s.name == name]

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-trace",
            "version": 2,
            "clock": {"wall": "perf_counter", "cpu": "process_time"},
            "spans": [root.to_dict() for root in list(self.roots)],
        }

    def write_json(self, path: str) -> None:
        """Nested span tree; Chrome-trace / JSONL variants by extension."""
        if path.endswith(".jsonl"):
            text = to_jsonl(list(self.roots))
        elif path.endswith(".chrome.json"):
            text = json.dumps(to_chrome_trace(list(self.roots)), indent=2)
        else:
            text = json.dumps(self.to_dict(), indent=2)
        from repro.obs.atomic import atomic_write_text

        atomic_write_text(path, text + "\n")


def to_jsonl(roots: List[Span]) -> str:
    """One flattened span per line, with dotted ancestry paths."""
    lines: List[str] = []

    def emit(node: Span, path: str, parent_id: Optional[str]) -> None:
        full = f"{path}/{node.name}" if path else node.name
        lines.append(json.dumps({
            "name": node.name,
            "path": full,
            "id": node.span_id,
            "trace_id": node.trace_id,
            "parent": parent_id,
            "wall_s": round(node.wall_seconds, 6),
            "cpu_s": round(node.cpu_seconds, 6),
            "attrs": dict(node.attrs),
        }))
        for child in node.children:
            emit(child, full, node.span_id)

    for root in roots:
        emit(root, "", root.parent_id)
    return "\n".join(lines)


def to_chrome_trace(roots: List[Span]) -> Dict[str, Any]:
    """Chrome trace-event JSON (complete "X" events, microseconds)."""
    events: List[Dict[str, Any]] = []
    for root in roots:
        for node in root.walk():
            events.append({
                "name": node.name,
                "ph": "X",
                "ts": node.start_wall * 1e6,
                "dur": node.wall_seconds * 1e6,
                "pid": 0,
                "tid": 0,
                "args": dict(node.attrs),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- stitched traces ---------------------------------------------------------
#
# A *stitched* trace is one flat JSONL file per served job: every span from
# every process that worked on the job, on a shared Unix-epoch time axis,
# linked purely by (trace_id, id, parent).  The job server writes one under
# ``<cache>/traces/<job_id>.jsonl``; ``repro trace show`` renders it.


def flatten_span_dict(tree: Dict[str, Any], process: str
                      ) -> List[Dict[str, Any]]:
    """Flatten one ``Span.to_dict`` tree into stitched-trace lines.

    ``process`` labels which process produced the spans (``server`` /
    ``worker``) so the waterfall can show where the boundary was crossed.
    Parent links inside the tree come from its structure; the root keeps
    whatever remote ``parent`` it recorded.
    """
    lines: List[Dict[str, Any]] = []

    def emit(node: Dict[str, Any], parent_id: Optional[str]) -> None:
        lines.append({
            "trace_id": node.get("trace_id"),
            "id": node.get("id"),
            "parent": parent_id,
            "name": node.get("name"),
            "process": process,
            "start_unix": node.get("start_unix"),
            "wall_s": node.get("wall_s"),
            "cpu_s": node.get("cpu_s"),
            "attrs": node.get("attrs") or {},
        })
        for child in node.get("children") or []:
            emit(child, node.get("id"))

    emit(tree, tree.get("parent"))
    return lines


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a stitched trace file, tolerating a torn final line.

    Trace files are written atomically, but a crashed writer or a copy in
    flight can truncate mid-line; replay keeps every parseable line and
    silently drops garbage, mirroring the job journal's policy.
    """
    spans: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    spans.append(record)
    except OSError:
        return []
    return spans


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


@contextmanager
def span(name: str, **attrs) -> Iterator[Span]:
    """Open a span on the process-wide tracer."""
    with _TRACER.span(name, **attrs) as node:
        yield node
