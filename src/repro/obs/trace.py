"""Hierarchical span tracing: the pipeline's single clock source.

Every phase of the pipeline runs inside a :class:`Span` (a context manager
recording wall time via ``perf_counter`` and CPU time via ``process_time``).
Spans nest; finished roots accumulate on the process-wide :class:`Tracer`
and can be exported three ways:

- a nested **span tree** (``Tracer.to_dict`` → ``json.dump``-able),
- **JSON lines** (one flattened span per line, ``to_jsonl``),
- **Chrome trace** format (``to_chrome_trace`` → load in
  ``chrome://tracing`` / Perfetto).

:class:`CpuTimer` and :class:`Deadline` are the accumulating-stopwatch and
budget-check forms of the same CPU clock — ATPG per-fault budgets and the
report's accumulated fault-simulation time both go through them, so every
reported number shares one clock.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


def wall_clock() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``)."""
    return time.perf_counter()


def cpu_clock() -> float:
    """Process CPU seconds (``time.process_time``)."""
    return time.process_time()


class CpuTimer:
    """Accumulating CPU-seconds stopwatch.

    Use as a context manager around each slice of work whose time should be
    pooled (e.g. every fault-simulation call of an ATPG run)::

        timer = CpuTimer()
        with timer:
            simulate(...)
        report.fault_sim_seconds = timer.elapsed
    """

    __slots__ = ("elapsed", "_started")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: Optional[float] = None

    def start(self) -> "CpuTimer":
        self._started = cpu_clock()
        return self

    def stop(self) -> float:
        if self._started is not None:
            self.elapsed += cpu_clock() - self._started
            self._started = None
        return self.elapsed

    def __enter__(self) -> "CpuTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class Deadline:
    """CPU-seconds budget check started at construction time.

    A ``None`` limit never expires, which lets call sites drop the
    ``if limit is not None`` dance.
    """

    __slots__ = ("limit", "_start")

    def __init__(self, limit: Optional[float]):
        self.limit = limit
        self._start = cpu_clock()

    @property
    def elapsed(self) -> float:
        return cpu_clock() - self._start

    def expired(self) -> bool:
        return self.limit is not None and self.elapsed > self.limit


_span_ids = itertools.count(1)


class Span:
    """One timed phase: name, attributes, children, wall + CPU durations."""

    __slots__ = ("span_id", "name", "attrs", "children",
                 "start_wall", "end_wall", "start_cpu", "end_cpu")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.span_id = next(_span_ids)
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.children: List[Span] = []
        self.start_wall = wall_clock()
        self.start_cpu = cpu_clock()
        self.end_wall: Optional[float] = None
        self.end_cpu: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def finish(self) -> "Span":
        if self.end_wall is None:
            self.end_wall = wall_clock()
            self.end_cpu = cpu_clock()
        return self

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    @property
    def wall_seconds(self) -> float:
        end = self.end_wall if self.end_wall is not None else wall_clock()
        return end - self.start_wall

    @property
    def cpu_seconds(self) -> float:
        end = self.end_cpu if self.end_cpu is not None else cpu_clock()
        return end - self.start_cpu

    # -- attributes --------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add(self, key: str, amount: float = 1) -> None:
        self.attrs[key] = self.attrs.get(key, 0) + amount

    # -- traversal / export ------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Yield this span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "id": self.span_id,
            "wall_s": round(self.wall_seconds, 6),
            "cpu_s": round(self.cpu_seconds, 6),
            "start_wall": self.start_wall,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.finished else " (open)"
        return (f"Span({self.name!r}, wall={self.wall_seconds:.4f}s,"
                f" children={len(self.children)}{state})")


class Tracer:
    """Owns the active span stack (per thread) and the finished roots."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child of the current span (or a new root)."""
        node = Span(name, attrs)
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(node)
        try:
            yield node
        finally:
            node.finish()
            stack.pop()
            if parent is not None:
                parent.children.append(node)
            else:
                with self._lock:
                    self.roots.append(node)

    def reset(self) -> None:
        """Drop finished roots (the active stack is left alone)."""
        with self._lock:
            self.roots = []

    # -- queries -----------------------------------------------------------

    def all_spans(self) -> List[Span]:
        out: List[Span] = []
        for root in list(self.roots):
            out.extend(root.walk())
        return out

    def find(self, name: str) -> List[Span]:
        """All finished spans with the given name, anywhere in the forest."""
        return [s for s in self.all_spans() if s.name == name]

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-trace",
            "version": 1,
            "clock": {"wall": "perf_counter", "cpu": "process_time"},
            "spans": [root.to_dict() for root in list(self.roots)],
        }

    def write_json(self, path: str) -> None:
        """Nested span tree; Chrome-trace / JSONL variants by extension."""
        if path.endswith(".jsonl"):
            text = to_jsonl(list(self.roots))
        elif path.endswith(".chrome.json"):
            text = json.dumps(to_chrome_trace(list(self.roots)), indent=2)
        else:
            text = json.dumps(self.to_dict(), indent=2)
        from repro.obs.atomic import atomic_write_text

        atomic_write_text(path, text + "\n")


def to_jsonl(roots: List[Span]) -> str:
    """One flattened span per line, with dotted ancestry paths."""
    lines: List[str] = []

    def emit(node: Span, path: str, parent_id: Optional[int]) -> None:
        full = f"{path}/{node.name}" if path else node.name
        lines.append(json.dumps({
            "name": node.name,
            "path": full,
            "id": node.span_id,
            "parent": parent_id,
            "wall_s": round(node.wall_seconds, 6),
            "cpu_s": round(node.cpu_seconds, 6),
            "attrs": dict(node.attrs),
        }))
        for child in node.children:
            emit(child, full, node.span_id)

    for root in roots:
        emit(root, "", None)
    return "\n".join(lines)


def to_chrome_trace(roots: List[Span]) -> Dict[str, Any]:
    """Chrome trace-event JSON (complete "X" events, microseconds)."""
    events: List[Dict[str, Any]] = []
    for root in roots:
        for node in root.walk():
            events.append({
                "name": node.name,
                "ph": "X",
                "ts": node.start_wall * 1e6,
                "dur": node.wall_seconds * 1e6,
                "pid": 0,
                "tid": 0,
                "args": dict(node.attrs),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


@contextmanager
def span(name: str, **attrs) -> Iterator[Span]:
    """Open a span on the process-wide tracer."""
    with _TRACER.span(name, **attrs) as node:
        yield node
