"""Live progress reporting: the hook the pipeline's hot loops call.

Long ATPG jobs used to report nothing until they finished.  The loops now
call :func:`progress` with their phase and counters; when no reporter is
installed — every plain CLI run — that call is one thread-local lookup
and a ``None`` check, cheap enough for per-fault granularity.  The job
server's worker installs a :class:`QueueProgressReporter` around each job
so throttled events (plus liveness heartbeats) flow over a
``multiprocessing`` pipe back to the server, which republishes them on
``GET /v1/jobs/<id>/events``.

Reporters are per *thread*, not per process: the server's in-thread
worker mode runs concurrent jobs in one process, and each must see only
its own reporter.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from repro.obs.trace import epoch_seconds, wall_clock

_local = threading.local()


def get_reporter() -> Optional["ProgressReporter"]:
    """This thread's installed reporter, if any."""
    return getattr(_local, "reporter", None)


def set_reporter(reporter: Optional["ProgressReporter"]) -> None:
    """Install (or with ``None``, remove) this thread's reporter."""
    _local.reporter = reporter


@contextmanager
def reporting(reporter: "ProgressReporter") -> Iterator["ProgressReporter"]:
    """Install a reporter for the duration of the block."""
    previous = get_reporter()
    set_reporter(reporter)
    try:
        yield reporter
    finally:
        set_reporter(previous)


def progress(phase: str, force: bool = False, **fields: Any) -> None:
    """Report progress from a hot loop; no-op without a reporter."""
    reporter = getattr(_local, "reporter", None)
    if reporter is not None:
        reporter.emit(phase, force=force, **fields)


class ProgressReporter:
    """Base reporter: throttling, sequencing and payload shaping.

    Events inside one phase are rate-limited to one per ``min_interval``
    seconds; phase transitions and ``force=True`` events always go out.
    Subclasses implement :meth:`send`, which must never raise into the
    loop being instrumented.

    Reporters are bound to the process that created them: a forked child
    inherits the installed reporter (thread-locals survive fork), but its
    copy of the underlying channel shares pipe state with the parent, so
    emitting from the child risks interleaved writes or deadlock on an
    inherited lock.  :meth:`emit` therefore drops events from any process
    other than the creator — fault-parallel ATPG workers go silent
    instead of corrupting the server's progress stream.
    """

    def __init__(self, min_interval: float = 0.25):
        self.min_interval = min_interval
        self.seq = 0
        self._last_phase: Optional[str] = None
        self._last_emit = float("-inf")
        self._pid = os.getpid()

    def emit(self, phase: str, force: bool = False, **fields: Any) -> None:
        if os.getpid() != self._pid:
            return
        now = wall_clock()
        if (not force and phase == self._last_phase
                and now - self._last_emit < self.min_interval):
            return
        self._last_phase = phase
        self._last_emit = now
        self.seq += 1
        payload: Dict[str, Any] = {
            "event": "progress",
            "phase": phase,
            "seq": self.seq,
            "t": round(epoch_seconds(now), 6),
        }
        payload.update(fields)
        self.send(payload)

    def send(self, payload: Dict[str, Any]) -> None:
        raise NotImplementedError

    # Lifecycle hooks; meaningful only for reporters with background work.
    def start(self) -> "ProgressReporter":
        return self

    def stop(self) -> None:
        pass


class CallbackProgressReporter(ProgressReporter):
    """Deliver payloads to a plain callable (tests, benchmarks, CLI)."""

    def __init__(self, callback: Callable[[Dict[str, Any]], None],
                 min_interval: float = 0.25):
        super().__init__(min_interval=min_interval)
        self._callback = callback

    def send(self, payload: Dict[str, Any]) -> None:
        self._callback(payload)


class QueueProgressReporter(ProgressReporter):
    """Forward ``(job_id, payload)`` pairs over a multiprocessing queue.

    The queue is the worker→server progress pipe.  A background thread
    sends a heartbeat whenever ``heartbeat_s`` passes without a real
    event, so the server can distinguish "grinding through a hard fault"
    from "worker died".  Send failures (server gone, pipe closed) disable
    the reporter instead of propagating into the ATPG loop.
    """

    def __init__(self, queue: Any, job_id: str,
                 min_interval: float = 0.25,
                 heartbeat_s: Optional[float] = 5.0):
        super().__init__(min_interval=min_interval)
        self.queue = queue
        self.job_id = job_id
        self.heartbeat_s = heartbeat_s
        self._broken = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def send(self, payload: Dict[str, Any]) -> None:
        if self._broken:
            return
        try:
            self.queue.put((self.job_id, payload))
        except (OSError, ValueError):
            self._broken = True

    def start(self) -> "QueueProgressReporter":
        if self.heartbeat_s is not None and self._thread is None:
            self._thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True,
                name=f"progress-heartbeat-{self.job_id}")
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            if wall_clock() - self._last_emit >= self.heartbeat_s:
                self.send({"event": "heartbeat",
                           "t": round(epoch_seconds(wall_clock()), 6)})
