"""Process-wide metrics registry: counters, gauges, histograms.

The pipeline increments named metrics as it works (tokens lexed, tasks run
vs. reused, gates before/after optimization, PODEM backtracks, ...); a
:meth:`MetricsRegistry.snapshot` is a plain JSON-able dict, which is what
``--metrics-out``, ``repro profile`` and :class:`repro.obs.record.RunRecord`
serialize.

Metrics are get-or-create by name::

    from repro.obs import counter, histogram

    counter("atpg.backtracks").inc(result.backtracks)
    histogram("atpg.fault_seconds").observe(result.cpu_seconds)
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Union

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus grammar.

    ``store.ast.hits`` -> ``store_ast_hits``; names may not start with a
    digit, so a leading underscore is prepended when they do.
    """
    out = _PROM_INVALID.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prometheus_number(value: Union[int, float]) -> str:
    """Render a sample value (ints stay ints; floats use repr)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Streaming distribution summary: count/sum/min/max/mean.

    Keeps power-of-two magnitude buckets for positive observations so a
    snapshot still shows the shape of the distribution without retaining
    every sample.
    """

    kind = "histogram"
    __slots__ = ("name", "description", "count", "total", "min", "max",
                 "_buckets")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0:
            exp = 0
            bound = 1.0
            while value > bound and exp < 64:
                bound *= 2.0
                exp += 1
            while value <= bound / 2.0 and exp > -64:
                bound /= 2.0
                exp -= 1
            self._buckets[exp] = self._buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {f"le_2^{exp}": n
                        for exp, n in sorted(self._buckets.items())},
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, get-or-create, with a JSON-able snapshot."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, description: str) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, description)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(Gauge, name, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get(Histogram, name, description)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        """Current values of every metric (optionally name-filtered)."""
        with self._lock:
            return {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
                if name.startswith(prefix)
            }

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` (typically from a worker process) into
        this registry: counters add, gauges take the incoming value,
        histograms merge their summaries and buckets."""
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            elif kind == "histogram":
                hist = self.histogram(name)
                hist.count += data["count"]
                hist.total += data["sum"]
                for bound in ("min", "max"):
                    incoming = data.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(hist, bound)
                    if current is None:
                        setattr(hist, bound, incoming)
                    elif bound == "min":
                        setattr(hist, bound, min(current, incoming))
                    else:
                        setattr(hist, bound, max(current, incoming))
                for key, n in data.get("buckets", {}).items():
                    exp = int(key[len("le_2^"):])
                    hist._buckets[exp] = hist._buckets.get(exp, 0) + n
            else:
                raise ValueError(f"metric {name!r}: unknown type {kind!r}")

    def to_prometheus(self, prefix: str = "") -> str:
        """Prometheus text exposition (version 0.0.4) of every metric.

        Counters follow the ``_total`` naming convention; histograms emit
        cumulative ``_bucket{le="..."}`` series over the power-of-two
        magnitude buckets plus ``_sum`` and ``_count``.  The output is what
        ``GET /metrics`` on the job server returns and what
        ``--metrics-out FILE.prom`` writes.
        """
        with self._lock:
            metrics = [m for name, m in sorted(self._metrics.items())
                       if name.startswith(prefix)]
        lines: List[str] = []
        for metric in metrics:
            name = _prometheus_name(metric.name)
            if metric.kind == "counter":
                name += "_total"
            if metric.description:
                lines.append(f"# HELP {name} {metric.description}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if metric.kind in ("counter", "gauge"):
                lines.append(f"{name} {_prometheus_number(metric.value)}")
                continue
            # Histogram: buckets only track positive observations, so the
            # +Inf bucket (== count) absorbs zero/negative samples too.
            cumulative = 0
            for exp, bucket_n in sorted(metric._buckets.items()):
                cumulative += bucket_n
                lines.append(f'{name}_bucket{{le="{2.0 ** exp!r}"}} '
                             f"{cumulative}")
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_prometheus_number(metric.total)}")
            lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._metrics = {}


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str, description: str = "") -> Counter:
    return _REGISTRY.counter(name, description)


def gauge(name: str, description: str = "") -> Gauge:
    return _REGISTRY.gauge(name, description)


def histogram(name: str, description: str = "") -> Histogram:
    return _REGISTRY.histogram(name, description)
