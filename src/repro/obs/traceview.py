"""Terminal rendering of stitched trace files (``repro trace``).

A stitched trace is the flat JSONL the job server writes per job:
one span per line with ``trace_id``/``id``/``parent`` links, a
``process`` label (server/worker) and Unix-epoch start times, so spans
from different processes share one axis.  This module turns that into

- a **waterfall**: the span tree in start order, one bar per span scaled
  to the trace's total wall time, and
- a **top-spans** table: the heaviest spans by wall seconds.

Pure functions over parsed span dicts — the CLI owns file IO and exit
codes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

#: Width of the waterfall bar column in characters.
BAR_WIDTH = 30


def span_children(spans: Sequence[Dict[str, Any]]
                  ) -> Dict[Optional[str], List[Dict[str, Any]]]:
    """Group spans by parent id, each group in start order."""
    known = {s.get("id") for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent")
        # A parent outside the file (e.g. a client-side context the
        # server never saw) makes the span a root of this view.
        key = parent if parent in known else None
        children.setdefault(key, []).append(span)
    for group in children.values():
        group.sort(key=lambda s: s.get("start_unix") or 0.0)
    return children


def waterfall_rows(spans: Sequence[Dict[str, Any]]
                   ) -> List[Dict[str, Any]]:
    """Flatten the span forest into indented waterfall rows."""
    if not spans:
        return []
    children = span_children(spans)
    starts = [s.get("start_unix") for s in spans
              if s.get("start_unix") is not None]
    t0 = min(starts) if starts else 0.0
    ends = [(s.get("start_unix") or t0) + (s.get("wall_s") or 0.0)
            for s in spans]
    total = max(ends) - t0 if ends else 0.0
    rows: List[Dict[str, Any]] = []

    def emit(span: Dict[str, Any], depth: int) -> None:
        start = (span.get("start_unix") or t0) - t0
        wall = span.get("wall_s") or 0.0
        if total > 0:
            left = int(round(BAR_WIDTH * start / total))
            width = max(1, int(round(BAR_WIDTH * wall / total)))
            left = min(left, BAR_WIDTH - 1)
            width = min(width, BAR_WIDTH - left)
        else:
            left, width = 0, BAR_WIDTH
        rows.append({
            "span": "  " * depth + str(span.get("name") or "?"),
            "proc": span.get("process") or "-",
            "start_s": f"{start:+.3f}",
            "wall_s": f"{wall:.3f}",
            "cpu_s": f"{span.get('cpu_s') if span.get('cpu_s') is not None else 0.0:.3f}",
            "timeline": " " * left + "#" * width
                        + " " * (BAR_WIDTH - left - width),
        })
        for child in children.get(span.get("id"), []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return rows


def top_spans(spans: Sequence[Dict[str, Any]], limit: int = 10
              ) -> List[Dict[str, Any]]:
    """The heaviest spans by wall seconds, as table rows."""
    ranked = sorted(spans, key=lambda s: s.get("wall_s") or 0.0,
                    reverse=True)
    rows = []
    for span in ranked[:limit]:
        rows.append({
            "span": str(span.get("name") or "?"),
            "proc": span.get("process") or "-",
            "wall_s": f"{span.get('wall_s') or 0.0:.3f}",
            "cpu_s": f"{span.get('cpu_s') if span.get('cpu_s') is not None else 0.0:.3f}",
        })
    return rows


def trace_summary(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Header facts for one stitched trace."""
    trace_ids = sorted({s.get("trace_id") for s in spans
                        if s.get("trace_id")})
    processes = sorted({s.get("process") for s in spans
                        if s.get("process")})
    roots = span_children(spans).get(None, [])
    total = max((r.get("wall_s") or 0.0) for r in roots) if roots else 0.0
    return {
        "spans": len(spans),
        "trace_ids": trace_ids,
        "processes": processes,
        "total_wall_s": round(total, 6),
    }
