"""Observability substrate: structured logging, span tracing, metrics.

Every timing number the reproduction reports (extraction, synthesis, ATPG
CPU time) is derived from this package so the whole pipeline shares one
clock source and one run record format:

- :mod:`repro.obs.log`     — structured ``event key=value`` logging,
- :mod:`repro.obs.trace`   — hierarchical spans (wall + CPU time), timers
  and deadlines; exportable as a span tree, JSON lines or Chrome trace,
- :mod:`repro.obs.metrics` — process-wide counters, gauges and histograms,
- :mod:`repro.obs.progress` — live progress hook for long-running loops
  (throttled reporters, worker→server queue forwarding, heartbeats),
- :mod:`repro.obs.record`  — ``RunRecord``: spans + metrics snapshot
  attached to analysis/ATPG results,
- :mod:`repro.obs.atomic`  — atomic tmp+``os.replace`` file publication
  shared by every writer of persisted artifacts.
"""

from repro.obs.atomic import atomic_write_bytes, atomic_write_text
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.progress import (
    CallbackProgressReporter,
    ProgressReporter,
    QueueProgressReporter,
    get_reporter,
    progress,
    reporting,
    set_reporter,
)
from repro.obs.record import RunRecord
from repro.obs.trace import (
    CpuTimer,
    Deadline,
    Span,
    TraceContext,
    Tracer,
    cpu_clock,
    epoch_seconds,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span,
    span_from_dict,
    wall_clock,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "configure_logging",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "CallbackProgressReporter",
    "ProgressReporter",
    "QueueProgressReporter",
    "get_reporter",
    "progress",
    "reporting",
    "set_reporter",
    "RunRecord",
    "CpuTimer",
    "Deadline",
    "Span",
    "TraceContext",
    "Tracer",
    "cpu_clock",
    "epoch_seconds",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "span",
    "span_from_dict",
    "wall_clock",
]
