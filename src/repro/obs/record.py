"""RunRecord: the machine-readable record of one pipeline run.

A ``RunRecord`` pairs the span tree of a run with a snapshot of the metrics
registry at capture time.  ``Factor.analyze`` and ``Factor.generate_tests``
attach one to their results; the benchmark harness serializes them next to
the human-readable tables so result trajectories can be diffed across PRs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.atomic import atomic_write_text
from repro.obs.metrics import get_registry
from repro.obs.trace import Span


@dataclass
class RunRecord:
    """Spans + metrics snapshot for one run."""

    label: str
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def capture(cls, label: str,
                spans: Sequence[Span] = (),
                metrics_prefix: str = "") -> "RunRecord":
        """Snapshot the process-wide registry alongside the given spans."""
        return cls(
            label=label,
            spans=list(spans),
            metrics=get_registry().snapshot(prefix=metrics_prefix),
        )

    def span(self, name: str) -> Optional[Span]:
        """First span with the given name, searching the whole forest."""
        for root in self.spans:
            for node in root.walk():
                if node.name == name:
                    return node
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "spans": [root.to_dict() for root in self.spans],
            "metrics": dict(self.metrics),
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        text = json.dumps(self.as_dict(), indent=indent)
        if path is not None:
            atomic_write_text(path, text + "\n")
        return text
