"""Declarative campaign specification (TOML or JSON).

A spec names one design, one or more modules under test, a factor space
and how to explore it.  Example (TOML)::

    name = "arm2-sweep"
    design = "arm2"          # bundled design (or source_file = "x.v")
    mut = "alu"
    mode = "both"            # factorial | evolutionary | both
    seed = 7
    max_trials = 8           # factorial fraction cap
    replicates = 2           # resubmissions per factorial point

    [factors]
    backtrack_limit = [50, 300]
    random_length = [16, 48]
    fault_model = ["stuck", "both"]

    [base]                   # fixed JobSpec overrides for every trial
    frames = 2

    [evolve]                 # evolutionary-phase knobs
    population = 6
    generations = 3

Factor names map one-to-one onto job-spec fields; ``mut`` may itself be
a factor (the MUT set).  Every trial inherits the campaign ``seed``, so
a campaign's schedule — including the seeded SEU flip sites and cycles
of transient trials — is a pure function of the spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Factor names a spec may sweep, and the job-spec field each drives.
FACTOR_FIELDS = (
    "mut",
    "frames",
    "backtrack_limit",
    "random_length",
    "backend",
    "fault_model",
    "transient_sample",
    "use_piers",
    "mode",
)

MODES = ("factorial", "evolutionary", "both")


class CampaignSpecError(ValueError):
    """A malformed campaign spec (presentable to the user)."""


@dataclass
class CampaignSpec:
    """One parsed, validated campaign description."""

    name: str
    factors: Dict[str, List[Any]]
    design: Optional[str] = None
    source: Optional[str] = None
    top: Optional[str] = None
    mut: Optional[str] = None
    mode: str = "factorial"
    seed: int = 2002
    max_trials: Optional[int] = None
    replicates: int = 1
    base: Dict[str, Any] = field(default_factory=dict)
    # evolutionary-phase knobs
    population: int = 8
    generations: int = 4
    tournament: int = 2
    mutation_rate: float = 0.25
    elite: int = 1
    server: Optional[str] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(payload, dict):
            raise CampaignSpecError("campaign spec must be a table/object")
        data = dict(payload)
        evolve = data.pop("evolve", {})
        if not isinstance(evolve, dict):
            raise CampaignSpecError("'evolve' must be a table/object")
        source_file = data.pop("source_file", None)
        unknown = (set(data) | set(evolve)) - set(cls.__dataclass_fields__)
        if unknown:
            raise CampaignSpecError(
                f"unknown campaign fields: {', '.join(sorted(unknown))}")
        data.update(evolve)
        if source_file is not None:
            with open(source_file, "r", encoding="utf-8") as handle:
                data["source"] = handle.read()
        try:
            spec = cls(**data)
        except TypeError as exc:
            raise CampaignSpecError(str(exc)) from None
        return spec.validate()

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Parse a ``.toml`` or ``.json`` spec file."""
        if path.endswith(".toml"):
            import tomllib

            with open(path, "rb") as handle:
                try:
                    payload = tomllib.load(handle)
                except tomllib.TOMLDecodeError as exc:
                    raise CampaignSpecError(f"{path}: {exc}") from None
        else:
            with open(path, "r", encoding="utf-8") as handle:
                try:
                    payload = json.load(handle)
                except ValueError as exc:
                    raise CampaignSpecError(f"{path}: {exc}") from None
        return cls.from_dict(payload)

    # -- validation --------------------------------------------------------

    def validate(self) -> "CampaignSpec":
        if not self.name or not isinstance(self.name, str):
            raise CampaignSpecError("campaign needs a non-empty 'name'")
        if any(c in self.name for c in "/\\\0"):
            raise CampaignSpecError("'name' must not contain path "
                                    "separators")
        if (self.design is None) == (self.source is None):
            raise CampaignSpecError(
                "campaign needs exactly one of 'design' (bundled name) or "
                "'source'/'source_file' (Verilog)")
        if self.mode not in MODES:
            raise CampaignSpecError(
                f"bad mode {self.mode!r}; expected {'|'.join(MODES)}")
        if not isinstance(self.factors, dict) or not self.factors:
            raise CampaignSpecError("campaign needs a non-empty [factors] "
                                    "table")
        for name, levels in self.factors.items():
            if name not in FACTOR_FIELDS:
                raise CampaignSpecError(
                    f"unknown factor {name!r}; expected one of "
                    f"{', '.join(FACTOR_FIELDS)}")
            if not isinstance(levels, list) or len(levels) < 2:
                raise CampaignSpecError(
                    f"factor {name!r} needs a list of >= 2 levels")
            if len(set(map(repr, levels))) != len(levels):
                raise CampaignSpecError(
                    f"factor {name!r} has duplicate levels")
        if self.mut is None and "mut" not in self.factors:
            raise CampaignSpecError(
                "campaign needs a 'mut' (or a 'mut' factor)")
        for name, lo in (("replicates", 1), ("population", 2),
                         ("generations", 1), ("tournament", 1),
                         ("elite", 0), ("seed", None)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or \
                    (lo is not None and value < lo):
                bound = f" >= {lo}" if lo is not None else ""
                raise CampaignSpecError(f"{name!r} must be an integer{bound}")
        if self.max_trials is not None and (
                not isinstance(self.max_trials, int) or self.max_trials < 1):
            raise CampaignSpecError("'max_trials' must be a positive "
                                    "integer")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise CampaignSpecError("'mutation_rate' must be in [0, 1]")
        if self.elite >= self.population:
            raise CampaignSpecError("'elite' must be < 'population'")
        if not isinstance(self.base, dict):
            raise CampaignSpecError("'base' must be a table/object")
        overlap = set(self.base) & set(self.factors)
        if overlap:
            raise CampaignSpecError(
                f"fields cannot be both fixed in [base] and swept as "
                f"factors: {', '.join(sorted(overlap))}")
        return self

    # -- derived -----------------------------------------------------------

    def ordered_factors(self) -> Dict[str, List[Any]]:
        """Factors in canonical (declaration-independent) order, so the
        design matrix and the fitted model columns line up regardless of
        spec-file key order."""
        return {name: list(self.factors[name])
                for name in sorted(self.factors)}
