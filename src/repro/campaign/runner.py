"""Campaign execution: factor configs -> batched trials -> trial DB.

Every trial is one ``atpg`` job spec.  With a server URL the runner
submits whole batches through :class:`~repro.serve.client.ServeClient`
(admission 429s are absorbed by capped backoff, and identical trials —
replicates, evolutionary re-visits — coalesce onto one in-flight
execution server-side, or warm-serve from the store).  Without a server
the local fallback executes through the same worker entry point the
server uses, deduplicating by request fingerprint in-run and memoizing
finished trials in the artifact store (stage ``campaign``), optionally
across a fork pool.

Every obtained trial — fresh, coalesced or warm — appends one row to
the campaign's append-only :class:`~repro.campaign.db.TrialDB`, which
``repro campaign status``/``report`` read back.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.db import TrialDB
from repro.campaign.design import build_design
from repro.campaign.evolve import EvolutionaryDSE
from repro.campaign.model import fit_report, trial_fitness
from repro.campaign.spec import CampaignSpec

#: served_from values that did not cost a fresh pipeline execution.
_DEDUPED = ("coalesced", "store", "cache")


class CampaignRunner:
    """Runs one campaign spec end to end."""

    def __init__(self, spec: CampaignSpec, server: Optional[str] = None,
                 local: bool = False, jobs: int = 1,
                 trial_timeout: float = 600.0):
        self.spec = spec
        self.server = None if local else (server or spec.server)
        self.jobs = jobs
        self.trial_timeout = trial_timeout
        self.db = TrialDB.for_campaign(spec.name)
        self._client = None
        self._local_seen: Dict[str, Dict[str, Any]] = {}

    # -- trial construction ------------------------------------------------

    def job_spec_dict(self, config: Dict[str, Any]) -> Dict[str, Any]:
        """The job-spec dict one factor configuration resolves to."""
        s = self.spec
        spec: Dict[str, Any] = {"op": "atpg", "seed": s.seed}
        if s.design is not None:
            spec["design"] = s.design
        else:
            spec["source"] = s.source
        if s.top is not None:
            spec["top"] = s.top
        spec["mut"] = config.get("mut", s.mut)
        spec.update(s.base)
        for name, value in config.items():
            if name != "mut":
                spec[name] = value
        return spec

    def _fingerprint(self, spec_dict: Dict[str, Any]) -> str:
        from repro.serve.protocol import JobSpec

        return JobSpec.from_dict(dict(spec_dict)).validate().fingerprint()

    # -- execution ---------------------------------------------------------

    def run_trials(self, configs: Sequence[Dict[str, Any]],
                   phase: str) -> List[Dict[str, Any]]:
        """Execute one batch of trial configs; returns aligned DB rows."""
        from repro.obs import counter, progress

        if not configs:
            return []
        if self.server:
            outcomes = self._run_batch_server(configs)
        else:
            outcomes = self._run_batch_local(configs)
        rows = []
        for config, (result, cost_s, served_from, error) in zip(configs,
                                                                outcomes):
            row: Dict[str, Any] = {
                "campaign": self.spec.name,
                "phase": phase,
                "config": dict(config),
                "served_from": served_from,
                "error": error,
            }
            if result is not None:
                row["coverage"] = result.get("coverage_percent")
                row["seu_injections"] = result.get("transient_total", 0)
                row["seu_coverage"] = (
                    result.get("transient_coverage_percent")
                    if result.get("transient_total") else None)
                row["cost_s"] = round(
                    cost_s if cost_s is not None
                    else float(result.get("cpu_seconds") or 0.0), 6)
            row["fitness"] = round(trial_fitness(row), 6)
            self.db.append(row)
            counter("campaign.trials_run").inc()
            if served_from in _DEDUPED:
                counter("campaign.trials_coalesced").inc()
            counter("campaign.seu_injections").inc(
                row.get("seu_injections") or 0)
            rows.append(row)
        progress("campaign.trials", stage=phase, batch=len(rows),
                 total=len(self.db.rows()))
        return rows

    # outcome tuple: (result row | None, cost_s | None, served_from, error)
    Outcome = Tuple[Optional[Dict[str, Any]], Optional[float], str,
                    Optional[str]]

    def _run_batch_server(self, configs) -> List["CampaignRunner.Outcome"]:
        from repro.serve.client import ServeClient, ServeError

        if self._client is None:
            self._client = ServeClient(self.server,
                                       timeout=self.trial_timeout)
        client = self._client
        # Submit everything before waiting on anything: identical specs
        # coalesce in flight on the server (this is deliberate — the
        # runner does NOT dedupe locally in server mode, so replicates
        # genuinely exercise single-flight coalescing).
        submitted: List[Tuple[Optional[str], bool, Optional[str]]] = []
        for config in configs:
            spec = self.job_spec_dict(config)
            try:
                sub = client.submit_with_retry(spec)
                submitted.append((sub["job"]["id"],
                                  bool(sub.get("coalesced")), None))
            except (ServeError, OSError) as exc:
                submitted.append((None, False,
                                  f"{type(exc).__name__}: {exc}"))
        outcomes: List[CampaignRunner.Outcome] = []
        for job_id, coalesced, error in submitted:
            if job_id is None:
                outcomes.append((None, None, "error", error))
                continue
            try:
                job = client.wait(job_id, timeout=self.trial_timeout)
            except (ServeError, OSError, TimeoutError) as exc:
                outcomes.append((None, None, "error",
                                 f"{type(exc).__name__}: {exc}"))
                continue
            if job.get("status") != "done":
                outcomes.append((None, None, "error",
                                 job.get("error") or "job failed"))
                continue
            result = job.get("result") or {}
            # A coalesced submission shares another trial's job, whose
            # own served_from says how *that* trial was served — this
            # one cost nothing, record it as coalesced.
            if coalesced:
                served = "coalesced"
            else:
                served = job.get("served_from") or "pipeline"
            outcomes.append((result,
                             float(result.get("cpu_seconds") or 0.0),
                             served, None))
        return outcomes

    def _run_batch_local(self, configs) -> List["CampaignRunner.Outcome"]:
        """No-server fallback: the server's own worker entry point,
        in-process or across a fork pool, with fingerprint dedup in-run
        and store memoization (stage ``campaign``) across runs."""
        from repro.serve.protocol import ProtocolError
        from repro.store import MISS, get_store

        store = get_store()
        prepared = []  # (fingerprint | None, spec_dict | None, error)
        for config in configs:
            spec = self.job_spec_dict(config)
            try:
                prepared.append((self._fingerprint(spec), spec, None))
            except ProtocolError as exc:
                prepared.append((None, None, f"ProtocolError: {exc}"))

        # First occurrence of each fingerprint executes (unless the store
        # already has it); the rest coalesce onto its outcome.
        fresh: List[Tuple[str, Dict[str, Any]]] = []
        for fp, spec, error in prepared:
            if fp is None or fp in self._local_seen:
                continue
            payload = store.get("campaign", {"spec": fp})
            if payload is not MISS:
                result, cost_s = payload
                self._local_seen[fp] = {
                    "result": result, "cost_s": cost_s,
                    "served_from": "cache", "error": None}
            else:
                self._local_seen[fp] = {}  # placeholder: executes below
                fresh.append((fp, spec))

        for fp, outcome in zip((fp for fp, _s in fresh),
                               self._execute_specs([s for _f, s in fresh])):
            ok = outcome.get("ok")
            result = outcome.get("result") if ok else None
            cost_s = float(outcome.get("cpu_s") or 0.0)
            self._local_seen[fp] = {
                "result": result, "cost_s": cost_s,
                "served_from": "pipeline",
                "error": None if ok else outcome.get("error")}
            if ok:
                store.put("campaign", {"spec": fp}, (result, cost_s))

        outcomes: List[CampaignRunner.Outcome] = []
        served = set()
        for fp, _spec, error in prepared:
            if fp is None:
                outcomes.append((None, None, "error", error))
                continue
            hit = self._local_seen[fp]
            served_from = hit["served_from"]
            if fp in served and served_from == "pipeline":
                served_from = "coalesced"  # in-run duplicate
            served.add(fp)
            outcomes.append((hit["result"], hit["cost_s"], served_from,
                             hit["error"]))
        return outcomes

    def _execute_specs(self, specs: List[Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
        """Run fresh trials through the serve worker entry point."""
        import os

        from repro.serve.worker import execute_job

        if len(specs) > 1 and self.jobs > 1 and hasattr(os, "fork"):
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = multiprocessing.get_context("fork")
            workers = min(self.jobs, len(specs))
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=context) as pool:
                return list(pool.map(execute_job, specs))
        # Serial in-process keeps the trial's pipeline counters in this
        # process's registry, where ``repro profile`` reads them.
        return [execute_job(spec, fresh_registry=False) for spec in specs]

    # -- the campaign ------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Execute the campaign per its mode; returns the summary dict."""
        from repro.obs import progress, span

        spec = self.spec
        summary: Dict[str, Any] = {
            "campaign": spec.name,
            "mode": spec.mode,
            "server": self.server,
            "db": self.db.path,
        }
        with span("campaign.run", campaign=spec.name, mode=spec.mode) as sp:
            factors = spec.ordered_factors()
            if spec.mode in ("factorial", "both"):
                with span("campaign.factorial") as sp_f:
                    points = build_design(factors, spec.max_trials,
                                          spec.seed)
                    schedule = [cfg for cfg in points
                                for _ in range(spec.replicates)]
                    progress("campaign.factorial", force=True,
                             points=len(points), trials=len(schedule))
                    rows = self.run_trials(schedule, "factorial")
                    sp_f.set("trials", len(rows))
                summary["factorial"] = {
                    "points": len(points),
                    "trials": len(rows),
                    "failed": sum(1 for r in rows if r.get("error")),
                }
            if spec.mode in ("evolutionary", "both"):
                with span("campaign.evolve") as sp_e:
                    dse = EvolutionaryDSE(
                        factors, self._evaluate_fitness,
                        population=spec.population,
                        generations=spec.generations,
                        tournament=spec.tournament,
                        mutation_rate=spec.mutation_rate,
                        elite=spec.elite, seed=spec.seed)
                    result = dse.run()
                    sp_e.set("generations", result.generations)
                    sp_e.set("evaluations", result.evaluations)
                summary["evolutionary"] = {
                    "best_config": result.best_config,
                    "best_fitness": round(result.best_fitness, 4),
                    "history": [round(h, 4) for h in result.history],
                    "generations": result.generations,
                    "evaluations": result.evaluations,
                }
            report = fit_report(self.db.rows(), factors)
            sp.set("trials", report.trials)
        summary["trials"] = len(self.db.rows())
        summary["report"] = report.as_dict()
        return summary

    def _evaluate_fitness(self, configs: List[Dict[str, Any]]
                          ) -> List[float]:
        rows = self.run_trials(configs, "evolutionary")
        return [row.get("fitness", 0.0) for row in rows]
