"""Seeded evolutionary design-space exploration.

A compact generational GA over the factor space: configurations are
tuples of level indices, fitness is whatever the caller's batch
evaluator returns (the campaign runner uses coverage per CPU second).
Tournament selection, uniform crossover, per-gene mutation, and
elitism — the elite carry-over makes the best-so-far fitness monotone
non-decreasing across generations, which the test suite asserts on a
seeded toy space.

Evaluation is batched per generation (``evaluate_many`` receives every
*new* configuration of the generation at once) so the campaign runner
can submit whole generations to the job server in one batch and let
request-fingerprint coalescing deduplicate re-visited points; an
in-memory fitness cache prevents re-submitting configurations this
search has already scored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

Genome = Tuple[int, ...]


@dataclass
class EvolveResult:
    best_config: Dict[str, Any]
    best_fitness: float
    #: best-so-far fitness after each generation (monotone by elitism)
    history: List[float] = field(default_factory=list)
    evaluations: int = 0
    generations: int = 0


class EvolutionaryDSE:
    """Generational GA over a named, discrete factor space."""

    def __init__(self, factors: Dict[str, List[Any]],
                 evaluate_many: Callable[[List[Dict[str, Any]]],
                                         Sequence[float]],
                 population: int = 8, generations: int = 4,
                 tournament: int = 2, mutation_rate: float = 0.25,
                 elite: int = 1, seed: int = 2002):
        if population < 2:
            raise ValueError("population must be >= 2")
        if not 0 <= elite < population:
            raise ValueError("elite must be in [0, population)")
        self.names = list(factors)
        self.levels = [list(factors[name]) for name in self.names]
        self.evaluate_many = evaluate_many
        self.population = population
        self.generations = generations
        self.tournament = max(1, tournament)
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.rng = random.Random(seed)
        self._fitness: Dict[Genome, float] = {}

    # -- genome plumbing ---------------------------------------------------

    def decode(self, genome: Genome) -> Dict[str, Any]:
        return {name: self.levels[i][gi]
                for i, (name, gi) in enumerate(zip(self.names, genome))}

    def _random_genome(self) -> Genome:
        return tuple(self.rng.randrange(len(lv)) for lv in self.levels)

    def _mutate(self, genome: Genome) -> Genome:
        out = list(genome)
        for i, lv in enumerate(self.levels):
            if len(lv) > 1 and self.rng.random() < self.mutation_rate:
                # Draw from the *other* levels so a mutation always moves.
                shift = self.rng.randrange(1, len(lv))
                out[i] = (out[i] + shift) % len(lv)
        return tuple(out)

    def _crossover(self, a: Genome, b: Genome) -> Genome:
        return tuple(x if self.rng.random() < 0.5 else y
                     for x, y in zip(a, b))

    def _select(self, scored: List[Tuple[Genome, float]]) -> Genome:
        pick = max(self.rng.choices(scored, k=self.tournament),
                   key=lambda gs: gs[1])
        return pick[0]

    # -- the loop ----------------------------------------------------------

    def _score(self, genomes: List[Genome]) -> None:
        """Batch-evaluate every not-yet-scored genome."""
        fresh = []
        seen = set()
        for g in genomes:
            if g not in self._fitness and g not in seen:
                fresh.append(g)
                seen.add(g)
        if not fresh:
            return
        fitnesses = self.evaluate_many([self.decode(g) for g in fresh])
        if len(fitnesses) != len(fresh):
            raise RuntimeError(
                f"evaluator returned {len(fitnesses)} fitnesses for "
                f"{len(fresh)} configurations")
        for g, f in zip(fresh, fitnesses):
            self._fitness[g] = float(f)

    def run(self) -> EvolveResult:
        from repro.obs import counter, progress

        pop: List[Genome] = []
        seen = set()
        while len(pop) < self.population:
            g = self._random_genome()
            if g not in seen or len(seen) >= self._space_size():
                pop.append(g)
                seen.add(g)
        history: List[float] = []
        for gen in range(self.generations):
            self._score(pop)
            scored = sorted(
                ((g, self._fitness[g]) for g in pop),
                key=lambda gs: gs[1], reverse=True)
            history.append(scored[0][1])
            counter("campaign.generations").inc()
            progress("campaign.evolve", generation=gen + 1,
                     best=round(scored[0][1], 4),
                     evaluated=len(self._fitness))
            if gen == self.generations - 1:
                break
            next_pop = [g for g, _f in scored[:self.elite]]
            while len(next_pop) < self.population:
                child = self._crossover(self._select(scored),
                                        self._select(scored))
                next_pop.append(self._mutate(child))
            pop = next_pop
        best = max(self._fitness.items(), key=lambda gf: gf[1])
        return EvolveResult(
            best_config=self.decode(best[0]),
            best_fitness=best[1],
            history=history,
            evaluations=len(self._fitness),
            generations=len(history),
        )

    def _space_size(self) -> int:
        size = 1
        for lv in self.levels:
            size *= len(lv)
        return size
