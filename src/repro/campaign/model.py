"""Pure-python least-squares factor-effect model.

Fits two linear responses over the coded factor space of a campaign's
trial rows — the coverage score and the CPU cost — and reports one
effect estimate per factor for each.  With the balanced/orthogonal
fractions of :mod:`repro.campaign.design` the main-effect estimates are
unconfounded; the solver itself is plain normal equations with
Gaussian elimination (partial pivoting, zero pivots resolve to a zero
coefficient so degenerate designs degrade instead of crashing).

An *effect* here is the regression coefficient on the [-1, +1] coding:
half the predicted response swing from a factor's low level to its
high level, holding the others fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.design import code_level


def solve_least_squares(rows: Sequence[Sequence[float]],
                        y: Sequence[float]) -> List[float]:
    """Coefficients minimizing ``||rows @ beta - y||`` (normal equations).

    Rank-deficient systems get zero coefficients on the dead columns
    rather than raising — campaigns with an accidentally-constant factor
    still produce a report.
    """
    n = len(rows[0]) if rows else 0
    # A = X^T X, b = X^T y
    a = [[sum(r[i] * r[j] for r in rows) for j in range(n)]
         for i in range(n)]
    b = [sum(r[i] * yi for r, yi in zip(rows, y)) for i in range(n)]
    # Gaussian elimination with partial pivoting.
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            a[col] = [0.0] * n
            a[col][col] = 1.0
            b[col] = 0.0
            continue
        a[col], a[pivot] = a[pivot], a[col]
        b[col], b[pivot] = b[pivot], b[col]
        inv = 1.0 / a[col][col]
        for r in range(col + 1, n):
            factor = a[r][col] * inv
            if factor:
                for j in range(col, n):
                    a[r][j] -= factor * a[col][j]
                b[r] -= factor * b[col]
    beta = [0.0] * n
    for r in range(n - 1, -1, -1):
        acc = b[r] - sum(a[r][j] * beta[j] for j in range(r + 1, n))
        beta[r] = acc / a[r][r] if abs(a[r][r]) > 1e-12 else 0.0
    return beta


def _r_squared(rows, y, beta) -> float:
    if not y:
        return 0.0
    mean = sum(y) / len(y)
    ss_tot = sum((yi - mean) ** 2 for yi in y)
    ss_res = sum(
        (yi - sum(x * b for x, b in zip(r, beta))) ** 2
        for r, yi in zip(rows, y))
    if ss_tot <= 1e-12:
        return 1.0 if ss_res <= 1e-9 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass
class RegressionReport:
    """Fitted coverage-vs-cost model over a campaign's factors."""

    trials: int
    #: per-factor rows, ranked by |coverage effect| descending:
    #: {"factor", "coverage_effect", "cost_effect"}
    effects: List[Dict[str, Any]] = field(default_factory=list)
    coverage_intercept: float = 0.0
    cost_intercept: float = 0.0
    r2_coverage: float = 0.0
    r2_cost: float = 0.0
    #: the best observed coverage-per-CPU-second trial
    recommended: Optional[Dict[str, Any]] = None
    best_fitness: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trials": self.trials,
            "effects": self.effects,
            "coverage_intercept": round(self.coverage_intercept, 4),
            "cost_intercept": round(self.cost_intercept, 4),
            "r2_coverage": round(self.r2_coverage, 4),
            "r2_cost": round(self.r2_cost, 4),
            "recommended": self.recommended,
            "best_fitness": round(self.best_fitness, 4),
        }


def trial_score(row: Dict[str, Any]) -> Optional[float]:
    """The coverage response of one trial row.

    Stuck-at trials score stuck coverage, transient trials SEU coverage,
    ``both`` the mean of the two — a single scale the regression and the
    evolutionary fitness share.
    """
    if row.get("error"):
        return None
    cov = row.get("coverage")
    seu = row.get("seu_coverage")
    model = (row.get("config") or {}).get("fault_model", "stuck")
    if model == "transient":
        return seu
    if model == "both" and seu is not None and cov is not None:
        return (cov + seu) / 2.0
    return cov


def trial_fitness(row: Dict[str, Any]) -> float:
    """Coverage per CPU second (the evolutionary objective)."""
    score = trial_score(row)
    if score is None:
        return 0.0
    return score / max(float(row.get("cost_s") or 0.0), 1e-3)


def fit_report(rows: Sequence[Dict[str, Any]],
               factors: Dict[str, List[Any]]) -> RegressionReport:
    """Fit the factor-effect model over trial rows.

    Rows whose config lies outside the declared levels (or which
    errored) are skipped; duplicates (replicates, coalesced twins) all
    enter the fit, which simply weights repeated points.
    """
    names = list(factors)
    coded: List[List[float]] = []
    cov_y: List[float] = []
    cost_y: List[float] = []
    best: Optional[Dict[str, Any]] = None
    best_fit = 0.0
    for row in rows:
        score = trial_score(row)
        config = row.get("config") or {}
        if score is None:
            continue
        try:
            x = [1.0] + [code_level(config[name], factors[name])
                         for name in names]
        except (KeyError, ValueError):
            continue
        coded.append(x)
        cov_y.append(float(score))
        cost_y.append(float(row.get("cost_s") or 0.0))
        fitness = trial_fitness(row)
        if best is None or fitness > best_fit:
            best, best_fit = row, fitness

    report = RegressionReport(trials=len(coded))
    if not coded:
        return report
    cov_beta = solve_least_squares(coded, cov_y)
    cost_beta = solve_least_squares(coded, cost_y)
    report.coverage_intercept = cov_beta[0]
    report.cost_intercept = cost_beta[0]
    report.r2_coverage = _r_squared(coded, cov_y, cov_beta)
    report.r2_cost = _r_squared(coded, cost_y, cost_beta)
    effects = [
        {
            "factor": name,
            "coverage_effect": round(cov_beta[i + 1], 4),
            "cost_effect": round(cost_beta[i + 1], 4),
        }
        for i, name in enumerate(names)
    ]
    effects.sort(key=lambda e: abs(e["coverage_effect"]), reverse=True)
    report.effects = effects
    if best is not None:
        report.recommended = dict(best.get("config") or {})
        report.best_fitness = best_fit
    return report
