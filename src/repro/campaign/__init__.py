"""Fault-injection campaign engine and design-space exploration.

A *campaign* sweeps the ATPG pipeline across a declared factor space —
backtrack limits, random-phase length, simulation backend, fault model
(stuck-at vs transient SEU), PIER usage, the MUT set — and fits a
coverage-vs-cost model over the results.  Three layers:

- :mod:`repro.campaign.spec` — the declarative ``CampaignSpec`` (TOML or
  JSON) naming the design, the factors and the exploration mode,
- :mod:`repro.campaign.design` / :mod:`repro.campaign.evolve` — the
  trial schedulers: a balanced two-level fractional-factorial builder
  and a seeded evolutionary search (tournament selection over
  coverage-per-CPU-second fitness),
- :mod:`repro.campaign.runner` / :mod:`repro.campaign.db` /
  :mod:`repro.campaign.model` — execution through the job server (batch
  submission with 429 backoff; request-fingerprint coalescing and the
  warm store deduplicate overlapping trials) or a local fallback, the
  append-only trial database under the cache dir, and the pure-python
  least-squares factor-effect model behind ``repro campaign report``.

Everything is seeded: the same campaign seed reproduces the same trial
schedule, the same SEU flip sites/cycles and bit-identical detected
sets on every backend.
"""

from repro.campaign.db import TrialDB, campaign_dir
from repro.campaign.design import build_design, two_level_fraction
from repro.campaign.evolve import EvolutionaryDSE
from repro.campaign.model import RegressionReport, fit_report
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, CampaignSpecError

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSpecError",
    "EvolutionaryDSE",
    "RegressionReport",
    "TrialDB",
    "build_design",
    "campaign_dir",
    "fit_report",
    "two_level_fraction",
]
