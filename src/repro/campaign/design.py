"""Fractional-factorial design builder.

For an all-two-level factor space this builds classical
:math:`2^{k-p}` regular fractions: the first :math:`b` factors span a
full :math:`2^b` base design, and each remaining factor is aliased onto
a distinct interaction (product) column of the base factors.  Every
generated fraction is therefore an orthogonal array of strength two —
each column is *balanced* (levels appear equally often) and every
column pair is *orthogonal* (all four sign combinations appear equally
often) — which is exactly what the main-effect regression in
:mod:`repro.campaign.model` needs to keep factor-effect estimates
unconfounded.

Factor spaces with more than two levels per factor fall back to the
full cross product; if that exceeds ``max_trials`` a seeded uniform
subsample is drawn instead (documented as unbalanced — the report
flags it).
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Any, Dict, List, Optional, Sequence, Tuple


def two_level_fraction(k: int, runs: int) -> List[Tuple[int, ...]]:
    """A regular :math:`2^{k-p}` fraction as rows of ±1.

    ``runs`` must be a power of two with ``2**ceil(log2(k+1)) <= runs <=
    2**k`` — enough product columns must exist for the ``k - log2(runs)``
    aliased factors.  Returns ``runs`` rows of ``k`` signs each.
    """
    if runs < 2 or runs & (runs - 1):
        raise ValueError(f"runs must be a power of two, got {runs}")
    b = runs.bit_length() - 1
    if b > k:
        raise ValueError(f"runs=2^{b} exceeds the full factorial 2^{k}")
    extra = k - b
    # Generator columns: non-empty subsets of the base factors of size
    # >= 2, smallest interactions first (highest resolution available at
    # this size), in deterministic order.
    subsets = [s for r in range(2, b + 1)
               for s in combinations(range(b), r)]
    if extra > len(subsets):
        raise ValueError(
            f"cannot alias {extra} factors onto {b} base factors "
            f"(only {len(subsets)} product columns exist); "
            f"needs runs >= {2 ** _min_base(k)}")
    generators = subsets[:extra]
    rows: List[Tuple[int, ...]] = []
    for r in range(runs):
        base = [1 if (r >> i) & 1 else -1 for i in range(b)]
        signs = list(base)
        for subset in generators:
            sign = 1
            for i in subset:
                sign *= base[i]
            signs.append(sign)
        rows.append(tuple(signs))
    return rows


def _min_base(k: int) -> int:
    """Smallest base-factor count whose product columns fit k factors."""
    b = 1
    while (2 ** b - b - 1) < (k - b):
        b += 1
    return b


def build_design(factors: Dict[str, List[Any]],
                 max_trials: Optional[int] = None,
                 seed: int = 2002) -> List[Dict[str, Any]]:
    """Trial configurations covering the factor space.

    All-two-level spaces get a balanced/orthogonal regular fraction (the
    smallest power of two within ``max_trials`` that can still host every
    factor; the full factorial when it fits).  Mixed-level spaces get the
    full cross product, seeded-subsampled when over the cap.  The result
    is deterministic in (factors, max_trials, seed).
    """
    names = list(factors)
    levels = [factors[name] for name in names]
    if not names:
        return []
    full = 1
    for lv in levels:
        full *= len(lv)

    if all(len(lv) == 2 for lv in levels):
        k = len(names)
        runs = 2 ** k
        if max_trials is not None and runs > max_trials:
            b = max_trials.bit_length() - 1  # floor(log2(max_trials))
            runs = 2 ** max(b, _min_base(k))
        rows = two_level_fraction(k, runs)
        return [
            {name: factors[name][0 if sign < 0 else 1]
             for name, sign in zip(names, row)}
            for row in rows
        ]

    # Mixed-level fallback: full cross product in odometer order.
    configs: List[Dict[str, Any]] = []
    idx = [0] * len(names)
    for _ in range(full):
        configs.append({name: levels[i][idx[i]]
                        for i, name in enumerate(names)})
        for i in range(len(names) - 1, -1, -1):
            idx[i] += 1
            if idx[i] < len(levels[i]):
                break
            idx[i] = 0
    if max_trials is not None and len(configs) > max_trials:
        rng = random.Random(seed)
        picked = sorted(rng.sample(range(len(configs)), max_trials))
        configs = [configs[i] for i in picked]
    return configs


def design_matrix(configs: Sequence[Dict[str, Any]],
                  factors: Dict[str, List[Any]]) -> List[List[float]]:
    """±1 (or evenly spaced, for >2 levels) coded matrix of ``configs``.

    Column order follows ``factors``; used by the balance/orthogonality
    tests and by the regression model's coding.
    """
    return [
        [code_level(cfg[name], factors[name]) for name in factors]
        for cfg in configs
    ]


def code_level(value: Any, levels: Sequence[Any]) -> float:
    """Map a factor level onto [-1, +1] by its position in ``levels``."""
    index = levels.index(value)
    if len(levels) == 1:
        return 0.0
    return -1.0 + 2.0 * index / (len(levels) - 1)
