"""Append-only trial database under the cache directory.

One JSONL file per campaign
(``<cache>/campaigns/<name>/trials.jsonl``): every executed, coalesced
or warm-served trial appends one row, so ``repro campaign status`` and
``report`` work offline, across re-runs, and while a campaign is still
in flight.  Rows are plain JSON dicts; unreadable lines are skipped on
read (a crashed writer can at worst truncate the final line).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List

from repro.store import default_cache_dir


def campaign_dir(name: str) -> str:
    """Directory holding one campaign's trial DB and artifacts."""
    return os.path.join(default_cache_dir(), "campaigns", name)


class TrialDB:
    """Append-only JSONL trial log."""

    def __init__(self, path: str):
        self.path = path

    @classmethod
    def for_campaign(cls, name: str) -> "TrialDB":
        return cls(os.path.join(campaign_dir(name), "trials.jsonl"))

    def append(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Append one trial row (stamped with a wall-clock ``ts``)."""
        row = dict(row)
        row.setdefault("ts", time.time())
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        return row

    def rows(self) -> List[Dict[str, Any]]:
        """Every parseable row, in append order."""
        out: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except ValueError:
                        continue  # torn final line of a crashed writer
                    if isinstance(row, dict):
                        out.append(row)
        except OSError:
            return []
        return out

    def summary(self) -> Dict[str, Any]:
        """Status row for ``repro campaign status``."""
        rows = self.rows()
        phases: Dict[str, int] = {}
        failed = 0
        coalesced = 0
        for row in rows:
            phases[row.get("phase", "?")] = \
                phases.get(row.get("phase", "?"), 0) + 1
            if row.get("error"):
                failed += 1
            if row.get("served_from") in ("coalesced", "store", "cache"):
                coalesced += 1
        return {
            "path": self.path,
            "trials": len(rows),
            "phases": phases,
            "failed": failed,
            "coalesced": coalesced,
        }
