"""Constant-justification-cone analysis (paper Section 4.2).

A MUT input whose entire justification cone terminates in constant
assignments selected by decode logic can only ever take the values in the
decode table — the paper's "hard-coded constraint" flag.  This module is
the single implementation shared by :func:`repro.core.testability.
analyze_testability` and the ``W103`` lint rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hierarchy.chains import ChainDB, Site
from repro.hierarchy.connectivity import (
    instance_port_map,
    signal_instance_sources,
)
from repro.hierarchy.design import Design
from repro.verilog import ast


@dataclass
class ConeVerdict:
    """Outcome of analyzing one signal's justification cone."""

    all_constant: bool
    selectors: Set[str] = field(default_factory=set)
    constant_sites: List[Tuple[str, str, int]] = field(default_factory=list)


@dataclass(frozen=True)
class HardCodedInput:
    """An instance input port whose value cone ends only in constants."""

    port: str
    selectors: Tuple[str, ...]
    constant_sites: Tuple[Tuple[str, str, int], ...]  # (module, signal, line)
    line: int = 0


class ConstantConeAnalyzer:
    """Does every justification path of a signal end in a constant?"""

    def __init__(self, design: Design, chaindb: ChainDB,
                 modules: Dict[str, ast.Module], max_depth: int = 16):
        self.design = design
        self.chaindb = chaindb
        self.modules = modules
        self.max_depth = max_depth
        self._cache: Dict[Tuple[str, str], ConeVerdict] = {}

    def analyze(self, module_name: str, signal: str,
                depth: Optional[int] = None,
                visiting: Optional[Set[Tuple[str, str]]] = None
                ) -> ConeVerdict:
        key = (module_name, signal)
        if key in self._cache:
            return self._cache[key]
        depth = self.max_depth if depth is None else depth
        visiting = set() if visiting is None else visiting
        if depth <= 0 or key in visiting:
            return ConeVerdict(all_constant=False)
        visiting.add(key)
        verdict = self._analyze_inner(module_name, signal, depth, visiting)
        visiting.discard(key)
        self._cache[key] = verdict
        return verdict

    def _analyze_inner(self, module_name: str, signal: str, depth: int,
                       visiting: Set[Tuple[str, str]]) -> ConeVerdict:
        module = self.modules[module_name]
        if signal in {p.name for p in module.params}:
            return ConeVerdict(all_constant=True)
        chains = self.chaindb.chains(module_name)
        defs = chains.ud_chain(signal)
        if not defs:
            return ConeVerdict(all_constant=False)
        out = ConeVerdict(all_constant=True)
        for site in defs:
            sub = self._site_verdict(site, module, module_name, signal,
                                     depth, visiting)
            out.selectors |= sub.selectors
            out.constant_sites.extend(sub.constant_sites)
            if not sub.all_constant:
                out.all_constant = False
        return out

    def _site_verdict(self, site: Site, module: ast.Module,
                      module_name: str, signal: str, depth: int,
                      visiting: Set[Tuple[str, str]]) -> ConeVerdict:
        if site.kind == "input_port":
            if module_name == self.design.top:
                return ConeVerdict(all_constant=False)
            out = ConeVerdict(all_constant=True)
            for parent_name, inst_name in self.design.parents(module_name):
                inst = self.design.instance_in(parent_name, inst_name)
                expr = instance_port_map(module, inst).get(signal)
                if expr is None:
                    continue
                if isinstance(expr, ast.Number):
                    out.constant_sites.append(
                        (parent_name, signal, expr.line)
                    )
                    continue
                for sig in sorted(expr.signals()):
                    sub = self.analyze(parent_name, sig, depth - 1, visiting)
                    out.selectors |= sub.selectors
                    out.constant_sites.extend(sub.constant_sites)
                    if not sub.all_constant:
                        out.all_constant = False
                if not expr.signals() and not isinstance(expr, ast.Number):
                    out.all_constant = False
            return out
        if site.kind == "instance":
            out = ConeVerdict(all_constant=True)
            for src_inst, port in signal_instance_sources(
                module, signal, self.modules
            ):
                sub = self.analyze(src_inst.module_name, port, depth - 1,
                                   visiting)
                out.selectors |= sub.selectors
                out.constant_sites.extend(sub.constant_sites)
                if not sub.all_constant:
                    out.all_constant = False
            return out
        if site.kind in ("cont_assign", "proc_assign"):
            node = site.node
            rhs = node.rhs if isinstance(
                node, (ast.ContAssign, ast.AssignStmt)) else None
            if rhs is not None and isinstance(rhs, ast.Number):
                out = ConeVerdict(all_constant=True)
                out.constant_sites.append((module_name, signal, site.line))
                for enc in site.enclosures:
                    if isinstance(enc, ast.Case):
                        out.selectors |= enc.selector.signals()
                    elif isinstance(enc, ast.If):
                        out.selectors |= enc.cond.signals()
                return out
            if rhs is not None and _is_selection_of_constants(rhs):
                out = ConeVerdict(all_constant=True)
                out.constant_sites.append((module_name, signal, site.line))
                out.selectors |= rhs.signals()
                return out
            # A part-select copy (e.g. ctrl vector slicing) keeps the cone
            # going; anything else is treated as a real data source.
            if rhs is not None:
                sigs = sorted(rhs.signals())
                if sigs and _is_pure_routing(rhs):
                    out = ConeVerdict(all_constant=True)
                    for sig in sigs:
                        sub = self.analyze(module_name, sig, depth - 1,
                                           visiting)
                        out.selectors |= sub.selectors
                        out.constant_sites.extend(sub.constant_sites)
                        if not sub.all_constant:
                            out.all_constant = False
                    return out
            return ConeVerdict(all_constant=False)
        return ConeVerdict(all_constant=False)


def hard_coded_inputs(
    analyzer: ConstantConeAnalyzer,
    parent_module_name: str,
    child_module: ast.Module,
    inst: ast.Instance,
) -> List[HardCodedInput]:
    """Input ports of ``inst`` whose justification cone is all-constant.

    This is the traversal behind both the testability report's
    "hard-coded" warnings and lint rule ``W103``: for each input port the
    parent expression's signals are cone-analyzed; the port is flagged when
    every source terminates in constants.  Ports tied directly to literals
    are trivially hard-coded and skipped (they carry no decode table).
    """
    pmap = instance_port_map(child_module, inst)
    out: List[HardCodedInput] = []
    for port in child_module.inputs():
        expr = pmap.get(port.name)
        if expr is None:
            continue
        signals = sorted(expr.signals())
        if not signals:
            continue  # tied to a literal constant: trivially hard-coded
        verdicts = [
            analyzer.analyze(parent_module_name, sig) for sig in signals
        ]
        if all(v.all_constant for v in verdicts):
            selectors: Set[str] = set()
            sites: List[Tuple[str, str, int]] = []
            for verdict in verdicts:
                selectors |= verdict.selectors
                sites.extend(verdict.constant_sites)
            out.append(HardCodedInput(
                port=port.name,
                selectors=tuple(sorted(selectors)),
                constant_sites=tuple(sites),
                line=inst.line,
            ))
    return out


def _is_pure_routing(expr: ast.Expr) -> bool:
    """Bit/part selects, concats and identifiers only — no computation."""
    if isinstance(expr, (ast.Ident, ast.BitSelect, ast.PartSelect)):
        return True
    if isinstance(expr, ast.Concat):
        return all(_is_pure_routing(p) for p in expr.parts)
    return False


def _is_selection_of_constants(expr: ast.Expr) -> bool:
    """Ternary trees whose leaves are all numeric literals."""
    if isinstance(expr, ast.Number):
        return True
    if isinstance(expr, ast.Ternary):
        return (_is_selection_of_constants(expr.if_true)
                and _is_selection_of_constants(expr.if_false))
    return False
