"""Root-cause connectivity analysis: *why* is a path dead?

FACTOR's Section-4.2 flags (and the W101/W102/W103 lint rules built on
them) stop at the boolean fact — "empty du/ud chain on port X".  This
module walks the du/ud chain graph backward (justification) or forward
(propagation) from the blocked endpoint to the *first* statement where the
path breaks, in the style of ConnChecker's graph-based root-cause traces,
and classifies the break:

- ``no_definition``          — the signal is never assigned anywhere,
- ``unused``                 — the signal is never read anywhere,
- ``constant_cone``          — every justification path ends in constants,
- ``dead_branch``            — the only definitions sit under a condition
  that constant-evaluates false (or a case label that can never match),
- ``masked_mux``             — a mux whose select is pinned to a constant
  masks the only live arm,
- ``unreachable_dff_state``  — a register's load guard is provably
  constant, so the state it would need can never be reached,
- ``truncated_slice``        — a vector is only ever partially assigned;
  the remaining bits are undriven,
- ``unconnected_port``       — the port is left dangling at every
  instantiation boundary.

The result is an ordered list of :class:`RootCauseHop` — (source line,
construct, reason) — from the endpoint down to the breaking statement,
ready to render as text hops, JSON ``trace`` entries or SARIF
``codeFlows``.  Witness-vector generation for these traces lives in
:mod:`repro.lint.witness`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hierarchy.chains import ChainDB, Site
from repro.hierarchy.connectivity import instance_port_map, \
    signal_instance_sources
from repro.hierarchy.design import Design
from repro.lint.width import const_eval
from repro.verilog import ast

#: Reason codes a trace may terminate with (the root-cause vocabulary).
REASONS = (
    "no_definition",
    "unused",
    "constant_cone",
    "dead_branch",
    "masked_mux",
    "unreachable_dff_state",
    "truncated_slice",
    "unconnected_port",
)

#: Hop budget: traces longer than this are cut with a final "…" hop.
MAX_HOPS = 24


@dataclass(frozen=True)
class RootCauseHop:
    """One step of a root-cause trace: where, through what, and why."""

    module: str
    signal: str
    line: int
    construct: str  # output_port | input_port | cont_assign | proc_assign
    #               | gate | instance | if | case | ternary | dff | slice
    #               | module | net | parameter
    reason: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "signal": self.signal,
            "line": self.line,
            "construct": self.construct,
            "reason": self.reason,
        }


@dataclass
class RootCauseTrace:
    """Outcome of explaining one endpoint.

    ``kind`` names the walk direction (``justification`` backward toward
    the chip interface, ``propagation`` forward toward it); ``blocked``
    says whether a break was found; ``root_cause`` carries the reason code
    of the breaking hop when blocked.  ``pinned`` records signals the
    trace proves are held at a masking/constant value — witness generation
    reads the actual simulated values back out of the netlist for these.
    """

    kind: str
    endpoint_module: str
    endpoint_signal: str
    blocked: bool = False
    root_cause: str = ""
    hops: List[RootCauseHop] = field(default_factory=list)
    pinned: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "module": self.endpoint_module,
            "signal": self.endpoint_signal,
            "blocked": self.blocked,
            "root_cause": self.root_cause,
            "hops": [hop.as_dict() for hop in self.hops],
        }
        if self.pinned:
            out["pinned"] = dict(sorted(self.pinned.items()))
        return out


def hops_as_trace(hops) -> tuple:
    """Root-cause hops as :class:`repro.lint.core.TraceStep` tuples."""
    from repro.lint.core import TraceStep

    return tuple(
        TraceStep(module=hop.module, signal=hop.signal, line=hop.line,
                  construct=hop.construct, reason=hop.reason)
        for hop in hops
    )


def decl_line(module: ast.Module, signal: str) -> int:
    """Best declaration line for a signal: port, then net, then module."""
    for port in module.ports:
        if port.name == signal:
            return port.line
    for net in module.nets:
        if net.name == signal:
            return net.line
    for param in module.params:
        if param.name == signal:
            return param.line
    return module.line


def site_line(chains, signal: str) -> int:
    """Representative source line for a signal out of its chain sites.

    Prefers a real definition site over the port pseudo-site, falling back
    to the first use — this is what anchors W101/W102 trace hops to the
    statement that matters rather than line 0.
    """
    best = 0
    for site in chains.ud_chain(signal):
        if site.line and site.kind not in ("input_port", "output_port"):
            return site.line
        best = best or site.line
    for site in chains.du_chain(signal):
        if site.line and site.kind not in ("input_port", "output_port"):
            return site.line
        best = best or site.line
    return best


def _stmt_contains(root: Optional[ast.Stmt], target: object) -> bool:
    if root is None:
        return False
    return any(stmt is target for stmt in ast.walk_stmts(root))


class RootCauseAnalyzer:
    """Walks du/ud chains to the first break point and classifies it."""

    def __init__(self, design: Design, chaindb: Optional[ChainDB] = None,
                 modules: Optional[Dict[str, ast.Module]] = None,
                 max_depth: int = 24):
        self.design = design
        self.chaindb = chaindb if chaindb is not None else design.chaindb()
        self.modules = modules if modules is not None else {
            name: design.module(name) for name in design.module_names()
        }
        self.max_depth = max_depth
        self._just_cache: Dict[Tuple[str, str], Optional[
            Tuple[str, Tuple[RootCauseHop, ...]]]] = {}
        self._prop_cache: Dict[Tuple[str, str], Optional[
            Tuple[str, Tuple[RootCauseHop, ...]]]] = {}

    # -- public entry points -----------------------------------------------

    def explain(self, module_name: str, signal: str) -> RootCauseTrace:
        """Auto-directed explain: ports follow their direction; internal
        nets are checked backward first, then forward."""
        module = self._module(module_name)
        directions = {p.name: p.direction for p in module.ports}
        direction = directions.get(signal)
        if direction == "output":
            return self.explain_justification(module_name, signal)
        if direction == "input":
            return self.explain_propagation(module_name, signal)
        back = self.explain_justification(module_name, signal)
        if back.blocked:
            return back
        forward = self.explain_propagation(module_name, signal)
        return forward if forward.blocked else back

    def explain_justification(self, module_name: str,
                              signal: str) -> RootCauseTrace:
        """Backward walk: can the signal be set from the chip interface?"""
        module = self._module(module_name)
        trace = RootCauseTrace(
            kind="justification",
            endpoint_module=module_name, endpoint_signal=signal,
        )
        endpoint = RootCauseHop(
            module=module_name, signal=signal,
            line=decl_line(module, signal),
            construct=self._endpoint_construct(module, signal),
            reason="justification endpoint (walking use-def chains "
                   "backward toward the chip interface)",
        )
        blocked = self._just_signal(module_name, signal, self.max_depth,
                                    set(), trace.pinned)
        trace.hops.append(endpoint)
        if blocked is not None:
            code, hops = blocked
            trace.blocked = True
            trace.root_cause = code
            trace.hops.extend(hops[:MAX_HOPS])
        else:
            trace.hops.append(RootCauseHop(
                module=module_name, signal=signal,
                line=endpoint.line, construct="net",
                reason="a free justification path to the chip interface "
                       "exists — not blocked",
            ))
        return trace

    def explain_propagation(self, module_name: str,
                            signal: str) -> RootCauseTrace:
        """Forward walk: can the signal's value reach the chip interface?"""
        module = self._module(module_name)
        trace = RootCauseTrace(
            kind="propagation",
            endpoint_module=module_name, endpoint_signal=signal,
        )
        endpoint = RootCauseHop(
            module=module_name, signal=signal,
            line=decl_line(module, signal),
            construct=self._endpoint_construct(module, signal),
            reason="propagation endpoint (walking def-use chains forward "
                   "toward the chip interface)",
        )
        blocked = self._prop_signal(module_name, signal, self.max_depth,
                                    set(), trace.pinned)
        trace.hops.append(endpoint)
        if blocked is not None:
            code, hops = blocked
            trace.blocked = True
            trace.root_cause = code
            trace.hops.extend(hops[:MAX_HOPS])
        else:
            trace.hops.append(RootCauseHop(
                module=module_name, signal=signal,
                line=endpoint.line, construct="net",
                reason="a free propagation path to the chip interface "
                       "exists — not blocked",
            ))
        return trace

    # -- shared helpers ----------------------------------------------------

    def _module(self, name: str) -> ast.Module:
        try:
            return self.modules[name]
        except KeyError:
            raise KeyError(f"no module {name!r} in design") from None

    def _endpoint_construct(self, module: ast.Module, signal: str) -> str:
        for port in module.ports:
            if port.name == signal:
                return f"{port.direction}_port"
        return "net"

    def _env(self, module: ast.Module) -> Dict[str, int]:
        env: Dict[str, int] = {}
        for param in module.params:
            value = const_eval(param.value, env)
            if value is not None:
                env[param.name] = value
        return env

    def _declared_width(self, module: ast.Module,
                        signal: str) -> Optional[Tuple[int, int]]:
        """(msb, lsb) of the declaration range, when constant."""
        env = self._env(module)
        rng = None
        for port in module.ports:
            if port.name == signal:
                rng = port.range
                break
        else:
            for net in module.nets:
                if net.name == signal:
                    rng = net.range
                    break
        if rng is None:
            return None
        msb = const_eval(rng.msb, env)
        lsb = const_eval(rng.lsb, env)
        if msb is None or lsb is None:
            return None
        return (max(msb, lsb), min(msb, lsb))

    def _dead_enclosure(self, module: ast.Module, site: Site
                        ) -> Optional[Tuple[object, str]]:
        """The innermost enclosure that provably never executes this site.

        Returns ``(enclosure_node, why)`` or None.  Detection is the same
        constant folding rule W009 uses: an ``if`` condition that
        const-evaluates, or a fully-constant ``case`` whose matching label
        set excludes the selector value.
        """
        env = self._env(module)
        for enc in reversed(site.enclosures):
            if isinstance(enc, ast.If):
                value = const_eval(enc.cond, env)
                if value is None:
                    continue
                in_then = _stmt_contains(enc.then_stmt, site.node)
                in_else = _stmt_contains(enc.else_stmt, site.node)
                if value == 0 and in_then:
                    return enc, "condition is constant false"
                if value != 0 and in_else:
                    return enc, "condition is constant true, so the else " \
                                "branch never executes"
            elif isinstance(enc, ast.Case):
                sel = const_eval(enc.selector, env)
                if sel is None:
                    continue
                for item in enc.items:
                    if not _stmt_contains(item.stmt, site.node):
                        continue
                    if not item.labels:  # default arm: assume reachable
                        break
                    values = [const_eval(lab, env) for lab in item.labels]
                    if all(v is not None for v in values) \
                            and sel not in values:
                        return enc, (f"selector is constant {sel}, which "
                                     "matches none of this arm's labels")
                    break
        return None

    def _dead_site_hop(self, module_name: str, signal: str,
                       site: Site) -> Optional[Tuple[str, RootCauseHop]]:
        """Classify a chain site sitting in provably-dead control flow."""
        module = self._module(module_name)
        dead = self._dead_enclosure(module, site)
        if dead is None:
            return None
        enc, why = dead
        construct = "if" if isinstance(enc, ast.If) else "case"
        line = getattr(enc, "line", site.line) or site.line
        if site.always is not None and site.always.is_sequential:
            return "unreachable_dff_state", RootCauseHop(
                module=module_name, signal=signal, line=line,
                construct="dff",
                reason=(f"register load guarded by a dead {construct}: "
                        f"{why}; the state is unreachable"),
            )
        return "dead_branch", RootCauseHop(
            module=module_name, signal=signal, line=line,
            construct=construct,
            reason=f"definition sits in a dead branch: {why}",
        )

    def _truncated_slice(self, module_name: str, signal: str,
                         defs: List[Site]) -> Optional[RootCauseHop]:
        """Bits of a declared vector that no definition ever covers."""
        module = self._module(module_name)
        declared = self._declared_width(module, signal)
        if declared is None:
            return None
        hi, lo = declared
        if hi == lo:
            return None
        env = self._env(module)
        covered: Set[int] = set()
        anchor = 0
        for site in defs:
            node = site.node
            if site.kind in ("input_port",):
                return None  # input ports are fully driven by the parent
            targets: List[ast.Expr] = []
            if isinstance(node, (ast.ContAssign, ast.AssignStmt)):
                targets = [node.target]
            elif isinstance(node, (ast.GateInstance, ast.Instance)):
                return None  # structural drive: assume full width
            for target in targets:
                parts = target.parts if isinstance(target, ast.Concat) \
                    else [target]
                for part in parts:
                    if isinstance(part, ast.Ident) and part.name == signal:
                        return None  # whole-vector assignment
                    if isinstance(part, ast.BitSelect) \
                            and part.name == signal:
                        idx = const_eval(part.index, env)
                        if idx is None:
                            return None
                        covered.add(idx)
                        anchor = anchor or site.line
                    elif isinstance(part, ast.PartSelect) \
                            and part.name == signal:
                        msb = const_eval(part.msb, env)
                        lsb = const_eval(part.lsb, env)
                        if msb is None or lsb is None:
                            return None
                        covered.update(range(min(msb, lsb),
                                             max(msb, lsb) + 1))
                        anchor = anchor or site.line
        missing = [b for b in range(lo, hi + 1) if b not in covered]
        if not missing or not covered:
            return None
        lo_m, hi_m = min(missing), max(missing)
        span = f"[{hi_m}]" if hi_m == lo_m else f"[{hi_m}:{lo_m}]"
        return RootCauseHop(
            module=module_name, signal=signal,
            line=anchor or decl_line(module, signal), construct="slice",
            reason=(f"width-truncated definition: bits {span} of "
                    f"'{signal}[{hi}:{lo}]' are never driven"),
        )

    # -- backward (justification) walk -------------------------------------

    def _just_signal(self, module_name: str, signal: str, depth: int,
                     visiting: Set[Tuple[str, str]],
                     pinned: Dict[str, int]
                     ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        """None when a free justification path exists; else the reason
        code plus the hop chain down to the first breaking statement."""
        key = (module_name, signal)
        if key in self._just_cache:
            return self._just_cache[key]
        if depth <= 0 or key in visiting:
            return None  # conservative: assume a path exists
        visiting.add(key)
        try:
            result = self._just_signal_inner(module_name, signal, depth,
                                             visiting, pinned)
        finally:
            visiting.discard(key)
        self._just_cache[key] = result
        return result

    def _just_signal_inner(self, module_name: str, signal: str, depth: int,
                           visiting: Set[Tuple[str, str]],
                           pinned: Dict[str, int]
                           ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        module = self._module(module_name)
        env = self._env(module)
        if signal in env:
            hop = RootCauseHop(
                module=module_name, signal=signal,
                line=decl_line(module, signal), construct="parameter",
                reason=f"'{signal}' is a parameter fixed at {env[signal]}",
            )
            pinned.setdefault(signal, env[signal])
            return "constant_cone", (hop,)
        chains = self.chaindb.chains(module_name)
        defs = chains.ud_chain(signal)
        if not defs:
            hop = RootCauseHop(
                module=module_name, signal=signal,
                line=decl_line(module, signal), construct="module",
                reason=(f"'{signal}' is never assigned anywhere in module "
                        f"'{module_name}' — the use-def chain is empty"),
            )
            return "no_definition", (hop,)

        truncated = self._truncated_slice(module_name, signal, defs)
        if truncated is not None:
            return "truncated_slice", (truncated,)

        first_block: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
        for site in defs:
            verdict = self._just_site(module_name, signal, site, depth,
                                      visiting, pinned)
            if verdict is None:
                return None  # this definition reaches the interface
            if first_block is None:
                first_block = verdict
        return first_block

    def _just_site(self, module_name: str, signal: str, site: Site,
                   depth: int, visiting: Set[Tuple[str, str]],
                   pinned: Dict[str, int]
                   ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        module = self._module(module_name)
        env = self._env(module)

        if site.kind == "input_port":
            return self._just_input_port(module_name, signal, depth,
                                         visiting, pinned)

        dead = self._dead_site_hop(module_name, signal, site)
        if dead is not None:
            code, hop = dead
            return code, (hop,)

        if site.kind == "instance":
            hop = RootCauseHop(
                module=module_name, signal=signal, line=site.line,
                construct="instance",
                reason=f"driven by a child instance output at line "
                       f"{site.line}",
            )
            blocked_all: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
            sources = signal_instance_sources(module, signal, self.modules)
            if not sources:
                return None  # unknown child: assume drivable
            for src_inst, port in sources:
                sub = self._just_signal(src_inst.module_name, port,
                                        depth - 1, visiting, pinned)
                if sub is None:
                    return None
                if blocked_all is None:
                    blocked_all = (sub[0], (hop,) + sub[1])
            return blocked_all

        if site.kind in ("cont_assign", "proc_assign"):
            node = site.node
            rhs = node.rhs if isinstance(
                node, (ast.ContAssign, ast.AssignStmt)) else None
            construct = site.kind
            if rhs is None:
                return None
            value = const_eval(rhs, env)
            if value is not None:
                hop = RootCauseHop(
                    module=module_name, signal=signal, line=site.line,
                    construct=construct,
                    reason=f"assigned the constant {value} — the cone "
                           "terminates in a hard-coded value",
                )
                pinned.setdefault(signal, 1 if value else 0)
                return "constant_cone", (hop,)
            if isinstance(rhs, ast.Ternary):
                sel = const_eval(rhs.cond, env)
                if sel is not None:
                    live = rhs.if_true if sel else rhs.if_false
                    arm = "true" if sel else "false"
                    hop = RootCauseHop(
                        module=module_name, signal=signal,
                        line=rhs.line or site.line, construct="ternary",
                        reason=(f"mux select is pinned to the constant "
                                f"{sel}: only the {arm} arm can ever "
                                "drive this signal"),
                    )
                    live_sigs = sorted(live.signals())
                    if not live_sigs:
                        return "masked_mux", (hop,)
                    sub = self._just_many(module_name, live_sigs, depth - 1,
                                          visiting, pinned)
                    if sub is None:
                        return None
                    return "masked_mux", (hop,) + sub[1]
            data = sorted(rhs.signals())
            if not data:
                return None
            hop = RootCauseHop(
                module=module_name, signal=signal, line=site.line,
                construct=construct,
                reason=f"defined here from {{{', '.join(data[:6])}}}",
            )
            sub = self._just_many(module_name, data, depth - 1, visiting,
                                  pinned)
            if sub is None:
                return None
            return sub[0], (hop,) + sub[1]

        if site.kind == "gate":
            data = sorted(site.rhs_signals())
            if not data:
                return None
            hop = RootCauseHop(
                module=module_name, signal=signal, line=site.line,
                construct="gate",
                reason=f"driven by a primitive gate reading "
                       f"{{{', '.join(data[:6])}}}",
            )
            sub = self._just_many(module_name, data, depth - 1, visiting,
                                  pinned)
            if sub is None:
                return None
            return sub[0], (hop,) + sub[1]

        return None  # output_port or unknown: not a real definition

    def _just_many(self, module_name: str, signals: List[str], depth: int,
                   visiting: Set[Tuple[str, str]], pinned: Dict[str, int]
                   ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        """Blocked only when *every* source signal is blocked."""
        first: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
        for sig in signals:
            sub = self._just_signal(module_name, sig, depth, visiting,
                                    pinned)
            if sub is None:
                return None
            if first is None:
                first = sub
        return first

    def _just_input_port(self, module_name: str, signal: str, depth: int,
                         visiting: Set[Tuple[str, str]],
                         pinned: Dict[str, int]
                         ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        module = self._module(module_name)
        if module_name == self.design.top:
            return None  # primary input: justified directly
        parents = self.design.parents(module_name)
        if not parents:
            return None  # unreferenced module: treated as a root
        first: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
        for parent_name, inst_name in parents:
            inst = self.design.instance_in(parent_name, inst_name)
            expr = instance_port_map(module, inst).get(signal)
            hop = RootCauseHop(
                module=parent_name, signal=signal,
                line=getattr(inst, "line", 0), construct="instance",
                reason=(f"crossing into parent '{parent_name}' through "
                        f"instance '{inst_name}'"),
            )
            if expr is None:
                broken = RootCauseHop(
                    module=parent_name, signal=signal,
                    line=getattr(inst, "line", 0), construct="instance",
                    reason=(f"input '{signal}' is left unconnected by "
                            f"instance '{inst_name}'"),
                )
                if first is None:
                    first = ("unconnected_port", (hop, broken))
                continue
            value = const_eval(expr, self._env(self._module(parent_name)))
            if value is not None:
                broken = RootCauseHop(
                    module=parent_name, signal=signal,
                    line=expr.line or getattr(inst, "line", 0),
                    construct="instance",
                    reason=(f"input '{signal}' is tied to the constant "
                            f"{value} at instance '{inst_name}'"),
                )
                pinned.setdefault(signal, 1 if value else 0)
                if first is None:
                    first = ("constant_cone", (hop, broken))
                continue
            sub = self._just_many(parent_name, sorted(expr.signals()),
                                  depth - 1, visiting, pinned)
            if sub is None:
                return None
            if first is None:
                first = (sub[0], (hop,) + sub[1])
        return first

    # -- forward (propagation) walk ----------------------------------------

    def _prop_signal(self, module_name: str, signal: str, depth: int,
                     visiting: Set[Tuple[str, str]],
                     pinned: Dict[str, int]
                     ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        key = (module_name, signal)
        if key in self._prop_cache:
            return self._prop_cache[key]
        if depth <= 0 or key in visiting:
            return None
        visiting.add(key)
        try:
            result = self._prop_signal_inner(module_name, signal, depth,
                                             visiting, pinned)
        finally:
            visiting.discard(key)
        self._prop_cache[key] = result
        return result

    def _prop_signal_inner(self, module_name: str, signal: str, depth: int,
                           visiting: Set[Tuple[str, str]],
                           pinned: Dict[str, int]
                           ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        module = self._module(module_name)
        chains = self.chaindb.chains(module_name)
        uses = chains.du_chain(signal)
        if not uses:
            hop = RootCauseHop(
                module=module_name, signal=signal,
                line=decl_line(module, signal), construct="module",
                reason=(f"'{signal}' is never read anywhere in module "
                        f"'{module_name}' — the def-use chain is empty"),
            )
            return "unused", (hop,)
        first: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
        for site in uses:
            verdict = self._prop_site(module_name, signal, site, depth,
                                      visiting, pinned)
            if verdict is None:
                return None  # one live path to the interface is enough
            if first is None:
                first = verdict
        return first

    def _prop_site(self, module_name: str, signal: str, site: Site,
                   depth: int, visiting: Set[Tuple[str, str]],
                   pinned: Dict[str, int]
                   ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        module = self._module(module_name)
        env = self._env(module)

        if site.kind == "output_port":
            return self._prop_output_port(module_name, signal, site, depth,
                                          visiting, pinned)

        dead = self._dead_site_hop(module_name, signal, site)
        if dead is not None:
            code, hop = dead
            return code, (hop,)

        if site.kind == "instance":
            inst = site.node
            child = self.modules.get(getattr(inst, "module_name", ""))
            if child is None:
                return None  # unknown child: assume it propagates
            hop = RootCauseHop(
                module=module_name, signal=signal, line=site.line,
                construct="instance",
                reason=(f"feeds instance '{inst.inst_name}' of "
                        f"'{child.name}'"),
            )
            pmap = instance_port_map(child, inst)
            dirs = self.chaindb.port_directions(child.name)
            first: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
            fed_any = False
            for port_name, expr in pmap.items():
                if expr is None or dirs.get(port_name) != "input":
                    continue
                if signal not in expr.signals():
                    continue
                fed_any = True
                sub = self._prop_signal(child.name, port_name, depth - 1,
                                        visiting, pinned)
                if sub is None:
                    return None
                if first is None:
                    first = (sub[0], (hop,) + sub[1])
            if not fed_any:
                return None  # only lhs-index use etc.: treat as live
            return first

        if site.kind in ("cont_assign", "proc_assign", "gate"):
            node = site.node
            if isinstance(node, ast.Always):
                return None  # clock/reset sensitivity: drives everything
            rhs = node.rhs if isinstance(
                node, (ast.ContAssign, ast.AssignStmt)) else None
            if rhs is not None:
                masked = self._masked_use(module_name, signal, site, rhs,
                                          env, pinned)
                if masked is not None:
                    return masked
            targets = sorted(site.defined_signals())
            if not targets:
                return None
            hop = RootCauseHop(
                module=module_name, signal=signal, line=site.line,
                construct=site.kind,
                reason=f"read here into {{{', '.join(targets[:6])}}}",
            )
            first: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
            for target in targets:
                sub = self._prop_signal(module_name, target, depth - 1,
                                        visiting, pinned)
                if sub is None:
                    return None
                if first is None:
                    first = (sub[0], (hop,) + sub[1])
            return first

        return None

    def _masked_use(self, module_name: str, signal: str, site: Site,
                    rhs: ast.Expr, env: Dict[str, int],
                    pinned: Dict[str, int]
                    ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        """A use that a constant select/side-input provably masks off."""
        if isinstance(rhs, ast.Ternary):
            sel = const_eval(rhs.cond, env)
            if sel is not None:
                dead_arm = rhs.if_false if sel else rhs.if_true
                live_arm = rhs.if_true if sel else rhs.if_false
                if signal in dead_arm.signals() \
                        and signal not in live_arm.signals() \
                        and signal not in rhs.cond.signals():
                    for sig in sorted(rhs.cond.signals()):
                        pinned.setdefault(sig, 1 if sel else 0)
                    hop = RootCauseHop(
                        module=module_name, signal=signal,
                        line=rhs.line or site.line, construct="ternary",
                        reason=(f"only read in the {'false' if sel else 'true'} "
                                f"arm of a mux whose select is pinned to "
                                f"the constant {sel} — the value is "
                                "masked off"),
                    )
                    return "masked_mux", (hop,)
        if isinstance(rhs, ast.Binary) and rhs.op in ("&", "&&", "|", "||"):
            for side, other in ((rhs.left, rhs.right),
                                (rhs.right, rhs.left)):
                if signal not in side.signals() \
                        or signal in other.signals():
                    continue
                value = const_eval(other, env)
                if value is None and isinstance(other, ast.Ident):
                    # Not a literal, but the side input may still be held
                    # by a constant justification cone (assign zero = 1'b0).
                    scratch: Dict[str, int] = {}
                    sub = self._just_signal(module_name, other.name,
                                            self.max_depth, set(), scratch)
                    if sub is not None and sub[0] == "constant_cone":
                        value = scratch.get(other.name)
                if value is None:
                    continue
                masking = (value == 0) if rhs.op in ("&", "&&") \
                    else (value != 0)
                if not masking:
                    continue
                for sig in sorted(other.signals()):
                    pinned.setdefault(sig, 1 if value else 0)
                hop = RootCauseHop(
                    module=module_name, signal=signal,
                    line=rhs.line or site.line, construct="gate",
                    reason=(f"the controlling side-input of '{rhs.op}' is "
                            f"pinned at its masking value {value} — the "
                            "signal cannot pass this gate"),
                )
                return "masked_mux", (hop,)
        return None

    def _prop_output_port(self, module_name: str, signal: str, site: Site,
                          depth: int, visiting: Set[Tuple[str, str]],
                          pinned: Dict[str, int]
                          ) -> Optional[Tuple[str, Tuple[RootCauseHop, ...]]]:
        module = self._module(module_name)
        if module_name == self.design.top:
            return None  # primary output: observed directly
        parents = self.design.parents(module_name)
        if not parents:
            return None
        first: Optional[Tuple[str, Tuple[RootCauseHop, ...]]] = None
        for parent_name, inst_name in parents:
            inst = self.design.instance_in(parent_name, inst_name)
            expr = instance_port_map(module, inst).get(signal)
            hop = RootCauseHop(
                module=parent_name, signal=signal,
                line=getattr(inst, "line", 0), construct="instance",
                reason=(f"crossing out to parent '{parent_name}' through "
                        f"instance '{inst_name}'"),
            )
            if expr is None:
                broken = RootCauseHop(
                    module=parent_name, signal=signal,
                    line=getattr(inst, "line", 0), construct="instance",
                    reason=(f"output '{signal}' is left unconnected by "
                            f"instance '{inst_name}'"),
                )
                if first is None:
                    first = ("unconnected_port", (hop, broken))
                continue
            blocked_parent: Optional[
                Tuple[str, Tuple[RootCauseHop, ...]]] = None
            sinks = sorted(ast.lhs_base_names(expr))
            if not sinks:
                if first is None:
                    first = ("unconnected_port", (hop,))
                continue
            for sink in sinks:
                sub = self._prop_signal(parent_name, sink, depth - 1,
                                        visiting, pinned)
                if sub is None:
                    return None
                if blocked_parent is None:
                    blocked_parent = (sub[0], (hop,) + sub[1])
            if first is None:
                first = blocked_parent
        return first
