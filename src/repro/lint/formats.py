"""Lint output formats: text, JSON and SARIF 2.1.0.

The SARIF emitter produces the subset of SARIF 2.1.0 that GitHub code
scanning ingests: one run, one tool driver with per-rule metadata, and one
result per diagnostic with a physical location (file + line) and a logical
location (``module.signal``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.lint.core import Diagnostic, LintResult, RuleRegistry, default_registry

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-lint"

# SARIF has no "warning"/"info"/"error" enum of its own beyond `level`.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _witness_line(witness: Dict[str, object]) -> str:
    """One-line witness summary for the text format."""
    if witness.get("kind") == "vector_pair":
        verified = "simulator-verified" if witness.get("verified") \
            else "unverified"
        pinned = witness.get("pinned") or {}
        pin_txt = ", ".join(f"{k}={v}" for k, v in sorted(pinned.items()))
        extra = f"; pinned {pin_txt}" if pin_txt else ""
        return (f"witness: {verified} vector pair toggling "
                f"'{witness.get('signal')}' with no observable "
                f"difference{extra}")
    if witness.get("kind") == "atpg_redundant":
        implied = witness.get("implications") or {}
        return (f"witness: ATPG proves {witness.get('fault')} redundant "
                f"({len(implied)} implied assignments)")
    return f"witness: {witness.get('kind')}"


def render_finding(diag: Diagnostic) -> List[str]:
    """A finding plus its indented root-cause hops and witness line."""
    lines = [diag.render()]
    for i, step in enumerate(diag.trace):
        where = f"{step.module}" + (f":{step.line}" if step.line else "")
        construct = f" [{step.construct}]" if step.construct else ""
        lines.append(f"  #{i} {where}{construct} {step.signal}: "
                     f"{step.text()}")
    if diag.witness is not None:
        lines.append("  " + _witness_line(diag.witness))
    return lines


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Compiler-style listing: one line per finding, indented trace hops
    underneath findings that carry a root-cause trace."""
    lines: List[str] = []
    for diag in result.diagnostics:
        lines.extend(render_finding(diag))
    if verbose:
        for diag, waiver in result.waived:
            reason = f" ({waiver.reason})" if waiver.reason else ""
            expiry = f" until {waiver.expires}" if waiver.expires else ""
            lines.append(f"{diag.render()} [waived{reason}{expiry}]")
    lines.append(result.summary())
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable JSON: findings plus counts, stable key order."""
    payload: Dict[str, object] = {
        "tool": TOOL_NAME,
        "findings": [diag.as_dict() for diag in result.diagnostics],
        "waived": [
            {"finding": diag.as_dict(), "reason": waiver.reason}
            for diag, waiver in result.waived
        ],
        "counts": result.counts(),
        "by_rule": result.by_rule(),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_rule(rule) -> Dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": rule.title.title().replace(" ", "").replace("-", ""),
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.description or rule.title},
        "defaultConfiguration": {
            "level": _SARIF_LEVELS.get(rule.severity, "warning"),
        },
        "properties": {"category": rule.category},
    }


def _sarif_result(diag: Diagnostic) -> Dict[str, object]:
    physical: Dict[str, object] = {
        "artifactLocation": {
            "uri": diag.file or f"{diag.module or 'design'}.v",
        },
    }
    if diag.line > 0:
        physical["region"] = {"startLine": diag.line}
    location: Dict[str, object] = {"physicalLocation": physical}
    logical_name = diag.module
    if diag.signal:
        logical_name = f"{diag.module}.{diag.signal}" if diag.module \
            else diag.signal
    if logical_name:
        location["logicalLocations"] = [
            {"name": logical_name, "kind": "member"},
        ]
    result: Dict[str, object] = {
        "ruleId": diag.rule_id,
        "level": _SARIF_LEVELS.get(diag.severity, "warning"),
        "message": {"text": diag.message},
        "locations": [location],
    }
    if diag.trace:
        result["relatedLocations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.file or f"{step.module or 'design'}.v",
                    },
                    **({"region": {"startLine": step.line}}
                       if step.line > 0 else {}),
                },
                "message": {"text": step.text()},
            }
            for step in diag.trace
        ]
    if diag.trace and diag.root_cause:
        # Root-cause traces are ordered execution paths, which SARIF
        # models as one codeFlow with one threadFlow (§3.36/§3.37).
        # Legacy one-hop trails stay relatedLocations only.
        result["codeFlows"] = [{
            "threadFlows": [{
                "locations": [
                    {
                        "location": {
                            "physicalLocation": {
                                "artifactLocation": {
                                    "uri": diag.file
                                    or f"{step.module or 'design'}.v",
                                },
                                **({"region": {"startLine": step.line}}
                                   if step.line > 0 else {}),
                            },
                            "message": {"text": step.text()},
                            **({"logicalLocations": [{
                                "name": f"{step.module}.{step.signal}",
                                "kind": step.construct or "member",
                            }]} if step.module or step.signal else {}),
                        },
                    }
                    for step in diag.trace
                ],
            }],
        }]
    properties: Dict[str, object] = {}
    if diag.root_cause:
        properties["rootCause"] = diag.root_cause
    if diag.witness is not None:
        properties["witness"] = diag.witness
    if properties:
        result["properties"] = properties
    return result


def sarif_dict(result: LintResult,
               registry: Optional[RuleRegistry] = None,
               tool_version: Optional[str] = None) -> Dict[str, object]:
    """The SARIF log as a plain dict (for tests and embedding)."""
    from repro import __version__

    reg = registry if registry is not None else default_registry()
    rules: List[Dict[str, object]] = [
        _sarif_rule(rule) for rule in reg.rules()
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version or __version__,
                        "informationUri":
                            "https://github.com/repro/factor",
                        "rules": rules,
                    },
                },
                "results": [
                    _sarif_result(diag) for diag in result.diagnostics
                ],
            },
        ],
    }


def render_sarif(result: LintResult,
                 registry: Optional[RuleRegistry] = None) -> str:
    return json.dumps(sarif_dict(result, registry), indent=2) + "\n"


FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def validate_sarif(log: Dict[str, object]) -> List[str]:
    """Structural validation of a SARIF log against the 2.1.0 subset we
    emit (runs, results, locations, codeFlows/threadFlows).

    Returns a list of problems, empty when the log conforms.  This is the
    checker the ``lint-explain-smoke`` CI job runs; it is hand-rolled
    because the full JSON-schema validator is not a runtime dependency.
    """
    problems: List[str] = []

    def need(obj, key, types, where):
        if not isinstance(obj, dict) or key not in obj:
            problems.append(f"{where}: missing required '{key}'")
            return None
        value = obj[key]
        if not isinstance(value, types):
            problems.append(f"{where}.{key}: expected "
                            f"{getattr(types, '__name__', types)}")
            return None
        return value

    if need(log, "version", str, "$") != SARIF_VERSION:
        problems.append(f"$.version: expected {SARIF_VERSION!r}")
    runs = need(log, "runs", list, "$") or []
    for ri, run in enumerate(runs):
        where = f"$.runs[{ri}]"
        tool = need(run, "tool", dict, where)
        if tool is not None:
            driver = need(tool, "driver", dict, f"{where}.tool")
            if driver is not None:
                need(driver, "name", str, f"{where}.tool.driver")
        results = need(run, "results", list, where) or []
        for si, res in enumerate(results):
            rwhere = f"{where}.results[{si}]"
            need(res, "ruleId", str, rwhere)
            message = need(res, "message", dict, rwhere)
            if message is not None:
                need(message, "text", str, f"{rwhere}.message")
            if res.get("level") not in (None, "error", "warning", "note",
                                        "none"):
                problems.append(f"{rwhere}.level: bad value "
                                f"{res.get('level')!r}")
            for li, loc in enumerate(res.get("locations") or []):
                _validate_sarif_location(loc, f"{rwhere}.locations[{li}]",
                                         problems, need)
            for fi, flow in enumerate(res.get("codeFlows") or []):
                fwhere = f"{rwhere}.codeFlows[{fi}]"
                threads = need(flow, "threadFlows", list, fwhere) or []
                if not threads:
                    problems.append(f"{fwhere}.threadFlows: must not be "
                                    "empty")
                for ti, thread in enumerate(threads):
                    twhere = f"{fwhere}.threadFlows[{ti}]"
                    locations = need(thread, "locations", list,
                                     twhere) or []
                    if not locations:
                        problems.append(f"{twhere}.locations: must not "
                                        "be empty")
                    for li, tfl in enumerate(locations):
                        lwhere = f"{twhere}.locations[{li}]"
                        inner = need(tfl, "location", dict, lwhere)
                        if inner is not None:
                            _validate_sarif_location(
                                inner, f"{lwhere}.location", problems,
                                need)
    return problems


def _validate_sarif_location(loc, where: str, problems: List[str],
                             need) -> None:
    physical = loc.get("physicalLocation") if isinstance(loc, dict) \
        else None
    if physical is None:
        problems.append(f"{where}: missing 'physicalLocation'")
        return
    artifact = need(physical, "artifactLocation", dict,
                    f"{where}.physicalLocation")
    if artifact is not None:
        need(artifact, "uri", str,
             f"{where}.physicalLocation.artifactLocation")
    region = physical.get("region")
    if region is not None:
        start = region.get("startLine")
        if not isinstance(start, int) or start < 1:
            problems.append(f"{where}.physicalLocation.region.startLine: "
                            "must be a positive integer")
