"""Lint output formats: text, JSON and SARIF 2.1.0.

The SARIF emitter produces the subset of SARIF 2.1.0 that GitHub code
scanning ingests: one run, one tool driver with per-rule metadata, and one
result per diagnostic with a physical location (file + line) and a logical
location (``module.signal``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.lint.core import Diagnostic, LintResult, RuleRegistry, default_registry

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-lint"

# SARIF has no "warning"/"info"/"error" enum of its own beyond `level`.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Classic compiler-style one-line-per-finding listing."""
    lines = [diag.render() for diag in result.diagnostics]
    if verbose:
        for diag, waiver in result.waived:
            reason = f" ({waiver.reason})" if waiver.reason else ""
            lines.append(f"{diag.render()} [waived{reason}]")
    lines.append(result.summary())
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable JSON: findings plus counts, stable key order."""
    payload: Dict[str, object] = {
        "tool": TOOL_NAME,
        "findings": [diag.as_dict() for diag in result.diagnostics],
        "waived": [
            {"finding": diag.as_dict(), "reason": waiver.reason}
            for diag, waiver in result.waived
        ],
        "counts": result.counts(),
        "by_rule": result.by_rule(),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_rule(rule) -> Dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": rule.title.title().replace(" ", "").replace("-", ""),
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.description or rule.title},
        "defaultConfiguration": {
            "level": _SARIF_LEVELS.get(rule.severity, "warning"),
        },
        "properties": {"category": rule.category},
    }


def _sarif_result(diag: Diagnostic) -> Dict[str, object]:
    physical: Dict[str, object] = {
        "artifactLocation": {
            "uri": diag.file or f"{diag.module or 'design'}.v",
        },
    }
    if diag.line > 0:
        physical["region"] = {"startLine": diag.line}
    location: Dict[str, object] = {"physicalLocation": physical}
    logical_name = diag.module
    if diag.signal:
        logical_name = f"{diag.module}.{diag.signal}" if diag.module \
            else diag.signal
    if logical_name:
        location["logicalLocations"] = [
            {"name": logical_name, "kind": "member"},
        ]
    result: Dict[str, object] = {
        "ruleId": diag.rule_id,
        "level": _SARIF_LEVELS.get(diag.severity, "warning"),
        "message": {"text": diag.message},
        "locations": [location],
    }
    if diag.trace:
        result["relatedLocations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.file or f"{step.module or 'design'}.v",
                    },
                    **({"region": {"startLine": step.line}}
                       if step.line > 0 else {}),
                },
                "message": {
                    "text": step.note or f"{step.module}.{step.signal}",
                },
            }
            for step in diag.trace
        ]
    return result


def sarif_dict(result: LintResult,
               registry: Optional[RuleRegistry] = None,
               tool_version: Optional[str] = None) -> Dict[str, object]:
    """The SARIF log as a plain dict (for tests and embedding)."""
    from repro import __version__

    reg = registry if registry is not None else default_registry()
    rules: List[Dict[str, object]] = [
        _sarif_rule(rule) for rule in reg.rules()
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version or __version__,
                        "informationUri":
                            "https://github.com/repro/factor",
                        "rules": rules,
                    },
                },
                "results": [
                    _sarif_result(diag) for diag in result.diagnostics
                ],
            },
        ],
    }


def render_sarif(result: LintResult,
                 registry: Optional[RuleRegistry] = None) -> str:
    return json.dumps(sarif_dict(result, registry), indent=2) + "\n"


FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
