"""Chain-level lint rules: du/ud chain analysis over the whole hierarchy.

These generalize the paper's Section-4.2 flags: an empty chain on a port
means there is no path between the signal and the chip interface (coverage
is lost before ATPG even starts), and an input cone terminating only in
constants means the port can never be justified to arbitrary values.

The message text and classification live here so that
:func:`repro.core.testability.analyze_testability` and ``repro lint``
describe the same situation the same way.  Each W101/W102 finding carries
a root-cause trace (:mod:`repro.lint.rootcause`) down to the first
statement where the path breaks; witnesses are attached afterwards by the
``run_lint`` driver when elaboration is in scope.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Optional, Tuple

from repro.hierarchy.chains import ChainDB
from repro.lint.cone import ConstantConeAnalyzer, hard_coded_inputs
from repro.lint.core import Diagnostic, LintContext, TraceStep, rule
from repro.lint.rootcause import hops_as_trace, site_line

# Shared Section-4.2 empty-chain vocabulary: kind -> (rule id, message).
EMPTY_CHAIN_KINDS = {
    "no_driver": (
        "W101",
        "no definition found — there is no path from the chip interface "
        "to this signal",
    ),
    "no_propagation": (
        "W102",
        "no use found — the signal cannot propagate to the chip interface",
    ),
}


def empty_chain_diagnostic(
    kind: str, module: str, signal: str,
    trail: Tuple[Tuple[str, str], ...] = (),
    line: int = 0,
    chaindb: Optional[ChainDB] = None,
) -> Diagnostic:
    """The canonical diagnostic for an empty du/ud chain finding.

    When a ``chaindb`` is supplied, every trail hop is anchored at a real
    source line — the nearest definition (or use) site of that signal in
    its module — instead of the line-0 placeholder.
    """
    rule_id, message = EMPTY_CHAIN_KINDS[kind]
    severity = "error" if kind == "no_driver" else "warning"

    def hop_line(mod: str, sig: str) -> int:
        if chaindb is None:
            return 0
        try:
            return site_line(chaindb.chains(mod), sig)
        except KeyError:
            return 0

    return Diagnostic(
        rule_id=rule_id, severity=severity, category="testability",
        module=module, signal=signal, line=line, message=message,
        trace=tuple(TraceStep(module=mod, signal=sig,
                              line=hop_line(mod, sig))
                    for mod, sig in trail),
    )


@rule("W101", severity="error", category="testability",
      title="output port has no driver (empty ud chain)")
def check_undriven_output_ports(ctx: LintContext) -> Iterator[Diagnostic]:
    """An output port with an empty use-def chain is never assigned inside
    its module: parents read a floating value and, in the paper's terms,
    there is no path from the chip interface to anything behind it."""
    for name in sorted(ctx.modules):
        module = ctx.modules[name]
        chains = ctx.chaindb.chains(name)
        for port in module.outputs():
            if not chains.ud_chain(port.name):
                diag = empty_chain_diagnostic(
                    "no_driver", name, port.name, line=port.line,
                    chaindb=ctx.chaindb)
                trace = ctx.rootcause().explain_justification(
                    name, port.name)
                if trace.blocked:
                    diag = replace(diag, trace=hops_as_trace(trace.hops),
                                   root_cause=trace.root_cause)
                yield diag


@rule("W102", severity="warning", category="testability",
      title="input port is never used (empty du chain)")
def check_unused_input_ports(ctx: LintContext) -> Iterator[Diagnostic]:
    """An input port with an empty def-use chain is dead at the module
    boundary: whatever the parent justifies onto it cannot propagate, so
    faults behind it are untestable through this path."""
    for name in sorted(ctx.modules):
        module = ctx.modules[name]
        chains = ctx.chaindb.chains(name)
        for port in module.inputs():
            uses = chains.du_chain(port.name)
            if not uses:
                diag = empty_chain_diagnostic(
                    "no_propagation", name, port.name, line=port.line,
                    chaindb=ctx.chaindb)
                trace = ctx.rootcause().explain_propagation(
                    name, port.name)
                if trace.blocked:
                    diag = replace(diag, trace=hops_as_trace(trace.hops),
                                   root_cause=trace.root_cause)
                yield diag


@rule("W103", severity="info", category="testability",
      title="instance input is driven only by hard-coded constants")
def check_constant_cone_inputs(ctx: LintContext) -> Iterator[Diagnostic]:
    """Every justification path of the expression wired to this instance
    input terminates in constant assignments (possibly selected by decode
    logic): the port can only ever take the values in the decode table.
    This is the paper's hard-coded-constraint flag, run over every instance
    rather than one MUT."""
    analyzer: Optional[ConstantConeAnalyzer] = None
    for name in sorted(ctx.modules):
        module = ctx.modules[name]
        for inst in module.instances:
            child = ctx.modules.get(inst.module_name)
            if child is None:
                continue
            if analyzer is None:
                analyzer = ConstantConeAnalyzer(
                    ctx.design, ctx.chaindb, ctx.modules)
            for hc in hard_coded_inputs(analyzer, name, child, inst):
                sels = ", ".join(hc.selectors) if hc.selectors else "none"
                endpoint = TraceStep(
                    module=name, signal=f"{inst.inst_name}.{hc.port}",
                    line=hc.line, construct="instance",
                    reason=(f"justification endpoint: input {hc.port!r} "
                            f"of '{child.name}'"),
                )
                sites = tuple(
                    TraceStep(module=mod, signal=sig, line=line,
                              note="constant source",
                              construct="cont_assign",
                              reason="justification cone terminates in a "
                                     "hard-coded constant here")
                    for mod, sig, line in hc.constant_sites[:8])
                yield Diagnostic(
                    rule_id="W103", severity="info", category="testability",
                    module=name,
                    signal=f"{inst.inst_name}.{hc.port}",
                    line=hc.line,
                    message=(
                        f"input {hc.port!r} of {child.name} is driven only "
                        f"from hard-coded values (selectors: [{sels}])"),
                    trace=(endpoint,) + sites,
                    root_cause="constant_cone",
                )
