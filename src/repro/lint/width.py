"""Best-effort bit-width inference for lint.

Verilog width semantics are context-dependent; the width rules only need a
conservative answer, so everything here returns ``None`` ("unknown — do not
flag") whenever a width depends on something we cannot evaluate (unsized
literals, non-constant ranges, unknown identifiers).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.verilog import ast

# Operators whose result is a single bit regardless of operand widths.
_BOOL_BINOPS = {"&&", "||", "==", "!=", "===", "!==", "<", "<=", ">", ">="}
_REDUCTION_OPS = {"&", "|", "^", "~&", "~|", "~^", "!"}
_SHIFT_OPS = {"<<", ">>", "<<<", ">>>"}


def const_eval(expr: ast.Expr, env: Mapping[str, int]) -> Optional[int]:
    """Evaluate a constant expression, or None if it is not constant."""
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Ident):
        return env.get(expr.name)
    if isinstance(expr, ast.Unary):
        value = const_eval(expr.operand, env)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "!":
            return int(value == 0)
        if expr.op == "~":
            return ~value
        return None  # reduction ops need a width; stay conservative
    if isinstance(expr, ast.Binary):
        left = const_eval(expr.left, env)
        right = const_eval(expr.right, env)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right if right else None
            if expr.op == "%":
                return left % right if right else None
            if expr.op == "**":
                return left ** right if right >= 0 else None
            if expr.op == "<<":
                return left << right if right >= 0 else None
            if expr.op == ">>":
                return left >> right if right >= 0 else None
            if expr.op == "&":
                return left & right
            if expr.op == "|":
                return left | right
            if expr.op == "^":
                return left ^ right
            if expr.op in _BOOL_BINOPS:
                return int({
                    "&&": bool(left) and bool(right),
                    "||": bool(left) or bool(right),
                    "==": left == right,
                    "===": left == right,
                    "!=": left != right,
                    "!==": left != right,
                    "<": left < right,
                    "<=": left <= right,
                    ">": left > right,
                    ">=": left >= right,
                }[expr.op])
        except (OverflowError, ValueError):
            return None
        return None
    if isinstance(expr, ast.Ternary):
        cond = const_eval(expr.cond, env)
        if cond is None:
            return None
        branch = expr.if_true if cond else expr.if_false
        return const_eval(branch, env)
    return None


def range_width(rng: Optional[ast.Range],
                env: Mapping[str, int]) -> Optional[int]:
    """Width of a ``[msb:lsb]`` declaration range (None when unknown)."""
    if rng is None:
        return 1
    msb = const_eval(rng.msb, env)
    lsb = const_eval(rng.lsb, env)
    if msb is None or lsb is None:
        return None
    return abs(msb - lsb) + 1


def declared_widths(module: ast.Module,
                    env: Mapping[str, int]) -> Dict[str, Optional[int]]:
    """Declared width of every port and net in ``module``."""
    widths: Dict[str, Optional[int]] = {}
    for port in module.ports:
        widths[port.name] = range_width(port.range, env)
    for net in module.nets:
        if net.kind == "integer":
            widths[net.name] = 32
        else:
            widths[net.name] = range_width(net.range, env)
    for param in module.params:
        widths[param.name] = None  # parameters are contextually sized
    return widths


def expr_width(expr: ast.Expr, widths: Mapping[str, Optional[int]],
               env: Mapping[str, int]) -> Optional[int]:
    """Self-determined width of an expression, or None when unknown."""
    if isinstance(expr, ast.Number):
        return expr.width  # None for unsized literals
    if isinstance(expr, ast.Ident):
        return widths.get(expr.name)
    if isinstance(expr, ast.BitSelect):
        return 1
    if isinstance(expr, ast.PartSelect):
        return range_width(ast.Range(msb=expr.msb, lsb=expr.lsb), env)
    if isinstance(expr, ast.Concat):
        total = 0
        for part in expr.parts:
            width = expr_width(part, widths, env)
            if width is None:
                return None
            total += width
        return total
    if isinstance(expr, ast.Repeat):
        count = const_eval(expr.count, env)
        width = expr_width(expr.value, widths, env)
        if count is None or width is None:
            return None
        return count * width
    if isinstance(expr, ast.Unary):
        if expr.op in _REDUCTION_OPS:
            return 1
        return expr_width(expr.operand, widths, env)
    if isinstance(expr, ast.Binary):
        if expr.op in _BOOL_BINOPS:
            return 1
        if expr.op in _SHIFT_OPS or expr.op == "**":
            return expr_width(expr.left, widths, env)
        left = expr_width(expr.left, widths, env)
        right = expr_width(expr.right, widths, env)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(expr, ast.Ternary):
        if_true = expr_width(expr.if_true, widths, env)
        if_false = expr_width(expr.if_false, widths, env)
        if if_true is None or if_false is None:
            return None
        return max(if_true, if_false)
    if isinstance(expr, ast.CaseLabelWild):
        return expr.width
    return None
