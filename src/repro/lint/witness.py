"""Wit-HW-style witness vectors for root-cause traces.

A root-cause trace (:mod:`repro.lint.rootcause`) is a *static* claim:
"this signal cannot propagate to / be justified from the chip interface".
This module makes the claim demonstrable:

- **Vector-pair witness** — two input vectors that differ *only* in the
  blocked signal (propagation) or that sweep the whole interface
  (justification), simulated on the interpreted simulator.  The observed
  primary outputs are identical across the pair: toggling the blocked
  signal provably changes nothing, with every controlling side-input
  pinned at the masking value the trace identified.
- **ATPG-redundancy witness** — when the endpoint is buried in the
  hierarchy and cannot be toggled from the interface, PODEM is asked for
  a test on the stuck-at fault at the corresponding net; an
  ``untestable`` proof is recorded together with the *implied
  assignments*: every net the constant cone forces to a definite value
  even under an all-X stimulus.

Witnesses are plain dicts (JSON-able, store-friendly); the
:func:`replay_witness` helper re-simulates a vector-pair witness on any
backend and checks that the claimed blockage is still exhibited — the
seeded differential test replays every emitted witness on both the
interpreted and compiled simulators.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.atpg.simulator import LogicSimulator
from repro.lint.rootcause import RootCauseTrace
from repro.synth.netlist import Netlist, NetlistError

#: Witness kinds.
VECTOR_PAIR = "vector_pair"
ATPG_REDUNDANT = "atpg_redundant"

#: Cap on recorded implied assignments (redundancy witnesses).
MAX_IMPLICATIONS = 24


def _seeded_bit(name: str, seed: int) -> int:
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return digest[0] & 1


def _pi_groups(netlist: Netlist) -> Dict[str, List[int]]:
    """Primary inputs grouped by base signal name (``a[2]`` -> ``a``)."""
    groups: Dict[str, List[int]] = {}
    for pi in netlist.pis:
        name = netlist.net_name(pi)
        base = name.split("[", 1)[0]
        groups.setdefault(base, []).append(pi)
    return groups


def _po_names(netlist: Netlist, base: Optional[str] = None) -> List[str]:
    names = [name for _, name in netlist.po_pairs]
    if base is None:
        return names
    return [n for n in names if n == base or n.startswith(base + "[")]


def _name_to_net(netlist: Netlist) -> Dict[str, int]:
    return {netlist.net_name(net): net
            for net in range(2, netlist.num_nets)}


def _net_bit(values, net: int) -> Optional[int]:
    ones, zeros = values.get(net, (0, 0))
    if ones & 1:
        return 1
    if zeros & 1:
        return 0
    return None


def _simulate(netlist: Netlist, pi_bits: Dict[str, int], backend: str,
              cycles: int = 1):
    """Fresh-state simulation of one vector held for ``cycles`` steps."""
    sim = LogicSimulator(netlist, width=1, backend=backend)
    by_name = {netlist.net_name(pi): pi for pi in netlist.pis}
    vec = {}
    for name, bit in pi_bits.items():
        net = by_name.get(name)
        if net is not None:
            vec[net] = (1, 0) if bit else (0, 1)
    values = None
    for _ in range(max(1, cycles)):
        values = sim.step(vec)
    observed = {name: _net_bit(values, po)
                for po, name in netlist.po_pairs}
    return values, observed


def generate_vector_pair_witness(
    netlist: Netlist, signal: str, direction: str,
    pinned: Optional[Dict[str, int]] = None,
    seed: int = 2002, cycles: int = 1,
    backend: str = "interpreted",
) -> Optional[Dict[str, object]]:
    """Two-vector demonstration that ``signal`` is disconnected.

    ``direction`` is ``"propagation"`` (signal is a primary input whose
    toggle must not reach any output) or ``"justification"`` (signal is a
    primary output that stays unresponsive while every input sweeps).
    Returns None when the signal is not at the chip interface of this
    netlist — the ATPG-redundancy fallback covers those endpoints.
    """
    groups = _pi_groups(netlist)
    if direction == "propagation":
        targets = groups.get(signal)
        if not targets:
            return None
        base = {
            netlist.net_name(pi): _seeded_bit(netlist.net_name(pi), seed)
            for pis in groups.values() for pi in pis
        }
        v0 = dict(base)
        v1 = dict(base)
        for pi in targets:
            name = netlist.net_name(pi)
            v0[name] = 0
            v1[name] = 1
        watch = _po_names(netlist)
    elif direction == "justification":
        watch = _po_names(netlist, signal)
        if not watch:
            return None
        all_pis = [netlist.net_name(pi) for pi in netlist.pis]
        v0 = {name: 0 for name in all_pis}
        v1 = {name: 1 for name in all_pis}
    else:
        raise ValueError(f"bad witness direction {direction!r}")

    try:
        values0, observed0 = _simulate(netlist, v0, backend, cycles)
        _, observed1 = _simulate(netlist, v1, backend, cycles)
    except (NetlistError, ValueError, RecursionError):
        return None  # combinational loop etc.: the netlist won't simulate
    obs0 = {name: observed0.get(name) for name in watch}
    obs1 = {name: observed1.get(name) for name in watch}
    verified = obs0 == obs1

    pinned_values: Dict[str, Optional[int]] = {}
    if pinned:
        by_name = _name_to_net(netlist)
        for name, claimed in sorted(pinned.items()):
            candidates = [n for n in (name, f"{name}[0]") if n in by_name]
            simulated = _net_bit(values0, by_name[candidates[0]]) \
                if candidates else None
            pinned_values[name] = simulated if simulated is not None \
                else claimed

    return {
        "kind": VECTOR_PAIR,
        "direction": direction,
        "signal": signal,
        "vectors": [v0, v1],
        "observed": [
            {k: obs0[k] for k in sorted(obs0)},
            {k: obs1[k] for k in sorted(obs1)},
        ],
        "watch": sorted(watch),
        "pinned": pinned_values,
        "verified": verified,
        "backend": backend,
        "cycles": max(1, cycles),
        "seed": seed,
    }


def replay_witness(netlist: Netlist, witness: Dict[str, object],
                   backend: str) -> bool:
    """Re-simulate a vector-pair witness; True iff the blockage holds.

    The claim is exhibited when every watched primary output observes the
    same value (including X) under both vectors of the pair.
    """
    if witness.get("kind") != VECTOR_PAIR:
        raise ValueError("only vector_pair witnesses replay on a simulator")
    vectors = witness["vectors"]
    watch = witness.get("watch") or _po_names(netlist)
    cycles = int(witness.get("cycles", 1))
    observations = []
    for vec in vectors:
        _, observed = _simulate(netlist, dict(vec), backend, cycles)
        observations.append({name: observed.get(name) for name in watch})
    return all(obs == observations[0] for obs in observations[1:])


def implied_assignments(netlist: Netlist,
                        around: Optional[int] = None,
                        limit: int = MAX_IMPLICATIONS) -> Dict[str, int]:
    """Nets forced to a definite value under an all-X stimulus.

    Three-valued simulation with every primary input X leaves exactly the
    constant-driven cone at definite values — these are the implied
    assignments a redundancy proof rests on.  ``around`` restricts the
    report to the transitive fan-in of that net.
    """
    sim = LogicSimulator(netlist, width=1, backend="interpreted")
    values = sim.step({})
    keep: Optional[set] = None
    if around is not None:
        keep = set()
        stack = [around]
        while stack:
            net = stack.pop()
            if net in keep:
                continue
            keep.add(net)
            gate = netlist.driver(net)
            if gate is not None:
                stack.extend(gate.inputs)
    out: Dict[str, int] = {}
    for net in range(2, netlist.num_nets):
        if keep is not None and net not in keep:
            continue
        bit = _net_bit(values, net)
        if bit is None:
            continue
        out[netlist.net_name(net)] = bit
        if len(out) >= limit:
            break
    return out


def _candidate_nets(netlist: Netlist, signal: str) -> List[int]:
    """Netlist nets a module-scoped signal name may elaborate to."""
    suffixes = (signal, f"{signal}[0]")
    out = []
    for net in range(2, netlist.num_nets):
        name = netlist.net_name(net)
        if name in suffixes or any(
                name.endswith("." + suf) for suf in suffixes):
            out.append(net)
    return out


def atpg_redundancy_witness(
    netlist: Netlist, signal: str,
    frames: int = 2, backtrack_limit: int = 200,
) -> Optional[Dict[str, object]]:
    """PODEM redundancy proof as a witness for a buried endpoint.

    Tries both stuck-at polarities on the first net matching ``signal``;
    an ``untestable`` outcome proves no test exists, and the implied
    assignments (nets pinned even under all-X stimulus, restricted to the
    fault's fan-in cone) are recorded as the witness body.
    """
    from repro.atpg.faults import Fault
    from repro.atpg.podem import Podem
    from repro.atpg.sequential import UnrolledModel

    nets = _candidate_nets(netlist, signal)
    if not nets:
        return None
    try:
        model = UnrolledModel(netlist, frames)
    except (NetlistError, ValueError, RecursionError):
        return None  # combinational loop etc.: no unrolled view
    for net in nets[:4]:
        for value in (0, 1):
            fault = Fault(net, value)
            result = Podem(model, fault,
                           backtrack_limit=backtrack_limit).run()
            if result.status == "untestable":
                return {
                    "kind": ATPG_REDUNDANT,
                    "signal": signal,
                    "fault": fault.describe(netlist),
                    "frames": frames,
                    "backtracks": result.backtracks,
                    "implications": implied_assignments(netlist,
                                                        around=net),
                    "verified": True,
                    "backend": "podem",
                }
    return None


def witness_for_trace(
    netlist: Netlist, trace: RootCauseTrace, top: str,
    seed: int = 2002, backend: str = "interpreted",
    allow_atpg: bool = True,
) -> Optional[Dict[str, object]]:
    """Best witness for one root-cause trace, or None.

    Endpoints at the chip interface of ``top`` get a simulator-verified
    vector pair; buried endpoints fall back to an ATPG redundancy proof
    when ``allow_atpg``.
    """
    if not trace.blocked:
        return None
    direction = "propagation" if trace.kind == "propagation" \
        else "justification"
    if trace.endpoint_module == top:
        witness = generate_vector_pair_witness(
            netlist, trace.endpoint_signal, direction,
            pinned=trace.pinned, seed=seed, backend=backend)
        if witness is not None:
            return witness
    if allow_atpg:
        return atpg_redundancy_witness(netlist, trace.endpoint_signal)
    return None
