"""Rule-based RTL static analysis over the AST/connectivity/netlist layers.

FACTOR's testability analysis (paper Section 4.2) is static analysis at
heart: empty du/ud chains and hard-coded constant cones are detected from
the RTL before any ATPG runs.  This package generalizes that into an
extensible lint engine:

- :mod:`repro.lint.core`    — ``Diagnostic``, the rule registry and the
  ``run_lint`` engine,
- :mod:`repro.lint.width`   — best-effort bit-width inference for
  expressions (parameter-aware),
- :mod:`repro.lint.cone`    — the constant-justification-cone analyzer
  shared with :mod:`repro.core.testability`,
- :mod:`repro.lint.rules_ast` / ``rules_chain`` / ``rules_netlist`` — the
  shipped rules (AST shape, du/ud chains, elaborated netlist),
- :mod:`repro.lint.rootcause` — root-cause connectivity traces: the walk
  from a blocked endpoint to the first statement where the path breaks,
- :mod:`repro.lint.witness`   — Wit-HW-style witness vectors (simulator
  vector pairs / ATPG redundancy proofs) demonstrating the blockage,
- :mod:`repro.lint.formats` — text, JSON and SARIF 2.1.0 emitters
  (traces surface as SARIF ``codeFlows``/``threadFlows``).

Typical use::

    from repro.lint import LintConfig, run_lint
    from repro.hierarchy.design import Design

    result = run_lint(design, LintConfig(disabled={"W003"}))
    for diag in result.diagnostics:
        print(diag.render())
"""

from repro.lint.core import (
    Diagnostic,
    LintConfig,
    LintContext,
    LintError,
    LintResult,
    Rule,
    RuleRegistry,
    Severity,
    TraceStep,
    Waiver,
    default_registry,
    rule,
    run_lint,
)
from repro.lint.cone import ConeVerdict, ConstantConeAnalyzer, hard_coded_inputs
from repro.lint.formats import render_json, render_sarif, render_text, \
    validate_sarif
from repro.lint.rootcause import RootCauseAnalyzer, RootCauseHop, \
    RootCauseTrace
from repro.lint.witness import generate_vector_pair_witness, \
    replay_witness, witness_for_trace

# Importing the rule modules registers every shipped rule with the default
# registry (decorator side effect).
from repro.lint import rules_ast as _rules_ast  # noqa: F401
from repro.lint import rules_chain as _rules_chain  # noqa: F401
from repro.lint import rules_netlist as _rules_netlist  # noqa: F401

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintContext",
    "LintError",
    "LintResult",
    "Rule",
    "RuleRegistry",
    "Severity",
    "TraceStep",
    "Waiver",
    "default_registry",
    "rule",
    "run_lint",
    "ConeVerdict",
    "ConstantConeAnalyzer",
    "hard_coded_inputs",
    "render_json",
    "render_sarif",
    "render_text",
    "validate_sarif",
    "RootCauseAnalyzer",
    "RootCauseHop",
    "RootCauseTrace",
    "generate_vector_pair_witness",
    "replay_witness",
    "witness_for_trace",
]
