"""The ``repro explain`` query: one target, one root-cause answer.

Shared by the CLI subcommand and the serve tier's ``explain`` operation so
both produce the same JSON shape: the resolved endpoint, the ordered
root-cause trace, and (for blocked traces) the best available witness —
a simulator-verified vector pair when the endpoint sits at the chip
interface, an ATPG redundancy proof otherwise.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hierarchy.design import Design
from repro.lint.core import LintError
from repro.lint.rootcause import RootCauseAnalyzer, RootCauseTrace

#: ATPG fallback ceiling (gates); mirrors the run_lint witness pass.
_ATPG_GATE_LIMIT = 4000


def resolve_target(design: Design, target: str) -> tuple:
    """``MODULE.SIGNAL`` or bare ``SIGNAL`` (top module) -> (module, signal).

    Raises :class:`LintError` when the module or signal does not exist.
    """
    module_name = design.top
    signal = target
    if "." in target:
        head, rest = target.split(".", 1)
        if head in design.module_names():
            module_name, signal = head, rest
    if module_name not in design.module_names():
        raise LintError(f"no module {module_name!r} in design")
    module = design.module(module_name)
    known = {p.name for p in module.ports} | {n.name for n in module.nets} \
        | {p.name for p in module.params}
    if signal not in known:
        chains = design.chaindb().chains(module_name)
        if not chains.ud_chain(signal) and not chains.du_chain(signal):
            raise LintError(
                f"no signal {signal!r} in module {module_name!r}")
    return module_name, signal


def _trace_for(analyzer: RootCauseAnalyzer, module_name: str, signal: str,
               direction: str) -> RootCauseTrace:
    if direction == "justification":
        return analyzer.explain_justification(module_name, signal)
    if direction == "propagation":
        return analyzer.explain_propagation(module_name, signal)
    return analyzer.explain(module_name, signal)


def explain_query(design: Design, target: str, direction: str = "auto",
                  with_witness: bool = True, seed: int = 2002,
                  ) -> Dict[str, object]:
    """Run one explain query and return the JSON-able result payload."""
    module_name, signal = resolve_target(design, target)
    analyzer = RootCauseAnalyzer(design)
    trace = _trace_for(analyzer, module_name, signal, direction)

    witness: Optional[Dict[str, object]] = None
    if with_witness and trace.blocked:
        netlist = _elaborate(design)
        if netlist is not None:
            from repro.lint.witness import witness_for_trace

            allow_atpg = len(netlist.gates) <= _ATPG_GATE_LIMIT
            witness = witness_for_trace(netlist, trace, design.top,
                                        seed=seed, allow_atpg=allow_atpg)

    if trace.blocked:
        summary = (f"{module_name}.{signal}: {trace.kind} blocked — "
                   f"root cause {trace.root_cause} "
                   f"({len(trace.hops)} hops)")
    else:
        summary = (f"{module_name}.{signal}: {trace.kind} path to the "
                   "chip interface exists — not blocked")
    return {
        "op": "explain",
        "target": target,
        "module": module_name,
        "signal": signal,
        "blocked": trace.blocked,
        "root_cause": trace.root_cause,
        "trace": trace.as_dict(),
        "witness": witness,
        "summary": summary,
    }


def _elaborate(design: Design):
    from repro.synth.elaborate import SynthesisError, synthesize
    from repro.synth.netlist import NetlistError

    try:
        return synthesize(design, do_optimize=False)
    except (SynthesisError, NetlistError, ValueError, RecursionError):
        return None


def render_explain_text(payload: Dict[str, object]) -> str:
    """Human-readable form of an explain payload (hops + witness line)."""
    from repro.lint.formats import _witness_line

    lines = [str(payload.get("summary", ""))]
    trace = payload.get("trace") or {}
    for i, hop in enumerate(trace.get("hops", [])):
        where = f"{hop.get('module')}"
        if hop.get("line"):
            where += f":{hop['line']}"
        construct = f" [{hop['construct']}]" if hop.get("construct") else ""
        lines.append(f"  #{i} {where}{construct} {hop.get('signal')}: "
                     f"{hop.get('reason')}")
    pinned = trace.get("pinned") or {}
    if pinned:
        pins = ", ".join(f"{k}={v}" for k, v in sorted(pinned.items()))
        lines.append(f"  pinned: {pins}")
    witness = payload.get("witness")
    if witness:
        lines.append("  " + _witness_line(witness))
    return "\n".join(lines)
