"""Lint engine: diagnostics, rule registry and the ``run_lint`` driver.

A *rule* is a callable ``check(ctx) -> Iterable[Diagnostic]`` registered
under a stable id (``W001``); the registry is populated by the ``@rule``
decorator when the ``rules_*`` modules are imported.  ``run_lint`` builds a
:class:`LintContext` (lazy chain database, lazy elaborated netlist) once and
runs every enabled rule over it, applying config-driven severity overrides
and waivers before returning a :class:`LintResult`.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.hierarchy.chains import ChainDB
from repro.hierarchy.design import Design
from repro.obs import counter, get_logger, span
from repro.verilog import ast

_log = get_logger("lint")


class LintError(ValueError):
    """Raised for lint configuration problems (unknown rules, bad ids).

    Subclasses ValueError so the CLI's generic error handling maps it to
    exit code 1.
    """


# Severity levels, ordered least to most severe.
SEVERITIES = ("info", "warning", "error")
Severity = str


@dataclass(frozen=True)
class TraceStep:
    """One hop of a diagnostic's supporting du/ud or root-cause trace.

    ``construct`` names the RTL construct the hop crosses (``cont_assign``,
    ``if``, ``instance``, ``ternary``, ``dff``, …) and ``reason`` says why
    the walk passed through or stopped here; both are empty on legacy
    trail-style hops, where ``note`` carries the annotation instead.
    """

    module: str
    signal: str
    line: int = 0
    note: str = ""
    construct: str = ""
    reason: str = ""

    def text(self) -> str:
        """The hop's annotation, preferring the root-cause reason."""
        return self.reason or self.note or f"{self.module}.{self.signal}"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "module": self.module, "signal": self.signal, "line": self.line,
        }
        if self.note:
            out["note"] = self.note
        if self.construct:
            out["construct"] = self.construct
        if self.reason:
            out["reason"] = self.reason
        return out


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule id plus where it fired and why."""

    rule_id: str
    severity: Severity
    category: str
    message: str
    module: str = ""
    signal: str = ""
    line: int = 0
    file: str = ""
    trace: Tuple[TraceStep, ...] = ()
    #: Reason code of the trace's breaking hop (see rootcause.REASONS).
    root_cause: str = ""
    #: Witness demonstrating the blockage (see :mod:`repro.lint.witness`):
    #: a simulator-verified vector pair or an ATPG redundancy proof.
    witness: Optional[Dict[str, object]] = None

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def location(self) -> str:
        parts = []
        if self.file:
            parts.append(self.file)
        if self.module:
            parts.append(self.module)
        loc = ":".join(parts) if parts else "<design>"
        if self.line:
            loc += f":{self.line}"
        return loc

    def render(self) -> str:
        """One-line human-readable form (the text format)."""
        subject = f" [{self.signal}]" if self.signal else ""
        return (f"{self.location()}: {self.severity}: "
                f"{self.rule_id}{subject} {self.message}")

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "category": self.category,
            "message": self.message,
            "module": self.module,
            "signal": self.signal,
            "line": self.line,
            "file": self.file,
        }
        if self.trace:
            out["trace"] = [step.as_dict() for step in self.trace]
        if self.root_cause:
            out["root_cause"] = self.root_cause
        if self.witness is not None:
            out["witness"] = self.witness
        return out


@dataclass(frozen=True)
class Waiver:
    """Suppress matching diagnostics; ``None`` fields match anything.

    ``expires`` (``YYYY-MM-DD``) puts a shelf life on the suppression:
    past that date the waiver stops hiding findings and they re-surface
    as warnings, so stale waivers cannot silence real regressions forever.
    """

    rule_id: str
    module: Optional[str] = None
    signal: Optional[str] = None
    reason: str = ""
    expires: Optional[str] = None

    def __post_init__(self) -> None:
        if self.expires is not None:
            try:
                datetime.date.fromisoformat(self.expires)
            except ValueError:
                raise LintError(
                    f"bad waiver expiry {self.expires!r}; "
                    "expected YYYY-MM-DD") from None

    def matches(self, diag: Diagnostic) -> bool:
        if self.rule_id != diag.rule_id:
            return False
        if self.module is not None and self.module != diag.module:
            return False
        if self.signal is not None and self.signal != diag.signal:
            return False
        return True

    def is_expired(self, today: Optional[datetime.date] = None) -> bool:
        if self.expires is None:
            return False
        now = today if today is not None else datetime.date.today()
        return now > datetime.date.fromisoformat(self.expires)


@dataclass
class LintConfig:
    """Which rules run and at what severity.

    ``disabled``/``enabled`` select rules (``enabled`` non-empty means
    *only* those ids run); ``severity_overrides`` remaps a rule's severity;
    ``waivers`` drop individual findings (they still count in
    ``LintResult.waived``).
    """

    disabled: Set[str] = field(default_factory=set)
    enabled: Set[str] = field(default_factory=set)
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    waivers: List[Waiver] = field(default_factory=list)

    def __post_init__(self) -> None:
        for sev in self.severity_overrides.values():
            if sev not in SEVERITIES:
                raise LintError(
                    f"bad severity {sev!r}; expected one of {SEVERITIES}"
                )

    def is_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disabled:
            return False
        if self.enabled:
            return rule_id in self.enabled
        return True

    def severity_for(self, rule_: "Rule") -> Severity:
        return self.severity_overrides.get(rule_.rule_id, rule_.severity)

    def waiver_for(self, diag: Diagnostic) -> Optional[Waiver]:
        for waiver in self.waivers:
            if waiver.matches(diag):
                return waiver
        return None


@dataclass(frozen=True)
class Rule:
    """A registered check."""

    rule_id: str
    severity: Severity
    category: str
    title: str
    check: Callable[["LintContext"], Iterable[Diagnostic]]
    description: str = ""

    def run(self, ctx: "LintContext") -> List[Diagnostic]:
        return list(self.check(ctx))


class RuleRegistry:
    """Id-keyed rule store; registration of a duplicate id is an error."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule_: Rule) -> None:
        if rule_.rule_id in self._rules:
            raise LintError(f"duplicate lint rule id {rule_.rule_id!r}")
        if rule_.severity not in SEVERITIES:
            raise LintError(
                f"rule {rule_.rule_id}: bad severity {rule_.severity!r}"
            )
        self._rules[rule_.rule_id] = rule_

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise LintError(f"no lint rule {rule_id!r}") from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[Rule]:
        return [self._rules[key] for key in sorted(self._rules)]

    def ids(self) -> List[str]:
        return sorted(self._rules)


_DEFAULT_REGISTRY = RuleRegistry()


def default_registry() -> RuleRegistry:
    """The process-wide registry holding every shipped rule."""
    return _DEFAULT_REGISTRY


def rule(rule_id: str, severity: Severity, category: str, title: str,
         registry: Optional[RuleRegistry] = None
         ) -> Callable[[Callable[["LintContext"], Iterable[Diagnostic]]],
                       Callable[["LintContext"], Iterable[Diagnostic]]]:
    """Decorator registering ``check(ctx)`` as a lint rule.

    The wrapped function's docstring becomes the rule description.
    """

    def decorate(check: Callable[["LintContext"], Iterable[Diagnostic]]
                 ) -> Callable[["LintContext"], Iterable[Diagnostic]]:
        target = registry if registry is not None else _DEFAULT_REGISTRY
        target.register(Rule(
            rule_id=rule_id,
            severity=severity,
            category=category,
            title=title,
            check=check,
            description=(check.__doc__ or "").strip(),
        ))
        return check

    return decorate


class LintContext:
    """Everything a rule may inspect, built once per ``run_lint``.

    Chain database and elaborated netlist are lazy: AST-only runs never pay
    for elaboration, and an elaboration failure is surfaced exactly once
    (``netlist()`` returns None afterwards; ``netlist_error`` holds the
    exception).
    """

    def __init__(self, design: Design,
                 files: Optional[Mapping[str, str]] = None) -> None:
        self.design = design
        self.modules: Dict[str, ast.Module] = {
            name: design.module(name) for name in design.module_names()
        }
        self._files: Dict[str, str] = dict(files or {})
        self._chaindb: Optional[ChainDB] = None
        self._netlist: object = None
        self._netlist_built = False
        self._rootcause: object = None
        self.netlist_error: Optional[Exception] = None

    def file_of(self, module_name: str) -> str:
        return self._files.get(module_name, "")

    @property
    def chaindb(self) -> ChainDB:
        if self._chaindb is None:
            # Shared with the extractor/PIER analysis: a --lint pre-flight
            # gate and the extraction after it build the chains only once.
            self._chaindb = self.design.chaindb()
        return self._chaindb

    def netlist(self):
        """The elaborated top-level netlist, or None if elaboration fails."""
        if not self._netlist_built:
            self._netlist_built = True
            from repro.synth.elaborate import SynthesisError, synthesize
            from repro.synth.netlist import NetlistError

            try:
                # No optimization: cleanup would hide floating nets and its
                # topological sort would raise on the very loops rule W201
                # wants to report.
                self._netlist = synthesize(self.design, do_optimize=False)
            except (SynthesisError, NetlistError, ValueError,
                    RecursionError) as err:
                self.netlist_error = err
                self._netlist = None
        return self._netlist

    @property
    def netlist_built(self) -> bool:
        """Whether :meth:`netlist` has been forced yet (category gating)."""
        return self._netlist_built

    def rootcause(self):
        """Shared :class:`repro.lint.rootcause.RootCauseAnalyzer`.

        Lazy and chain-level only — building it never triggers
        elaboration, so chain-rule-only runs stay elaboration-free.
        """
        if self._rootcause is None:
            from repro.lint.rootcause import RootCauseAnalyzer

            self._rootcause = RootCauseAnalyzer(
                self.design, self.chaindb, self.modules)
        return self._rootcause

    def const_env(self, module: ast.Module) -> Dict[str, int]:
        """Module parameters that evaluate to integer constants."""
        from repro.lint.width import const_eval

        env: Dict[str, int] = {}
        for param in module.params:
            value = const_eval(param.value, env)
            if value is not None:
                env[param.name] = value
        return env


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: List[Diagnostic]
    waived: List[Tuple[Diagnostic, Waiver]] = field(default_factory=list)
    rules_run: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
            "waived": len(self.waived),
        }

    def by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for diag in self.diagnostics:
            out[diag.rule_id] = out.get(diag.rule_id, 0) + 1
        return out

    def summary(self) -> str:
        c = self.counts()
        return (f"{len(self.diagnostics)} findings "
                f"({c['error']} errors, {c['warning']} warnings, "
                f"{c['info']} info, {c['waived']} waived)")


def _sort_key(diag: Diagnostic) -> Tuple:
    return (diag.file, diag.module, diag.line, diag.rule_id, diag.signal)


#: Rules whose findings get root-cause/witness enrichment, mapped to the
#: walk direction their blockage corresponds to.
_ROOTCAUSE_RULES = {"W101": "justification", "W102": "propagation"}

#: Witness ATPG fallback is skipped above this gate count: a redundancy
#: proof on a large design is real ATPG work, not a lint-time side note.
_WITNESS_ATPG_GATE_LIMIT = 4000


def _attach_witnesses(ctx: LintContext, cfg: LintConfig, reg: RuleRegistry,
                      kept: List[Diagnostic]) -> List[Diagnostic]:
    """Attach simulator/ATPG witnesses to blocked-connectivity findings.

    Elaboration stays category-gated: the netlist is only (lazily) built
    when at least one ``synth``-category rule is enabled, so a
    chain-rules-only run (``--enable W101``) never pays for synthesis —
    its findings carry traces but no witnesses.
    """
    candidates = [d for d in kept if d.rule_id in _ROOTCAUSE_RULES
                  and d.root_cause]
    if not candidates:
        return kept
    if not any(rule_.category == "synth" and cfg.is_enabled(rule_.rule_id)
               for rule_ in reg.rules()):
        return kept
    netlist = ctx.netlist()
    if netlist is None:
        return kept
    from repro.lint.witness import witness_for_trace

    analyzer = ctx.rootcause()
    allow_atpg = len(netlist.gates) <= _WITNESS_ATPG_GATE_LIMIT
    out: List[Diagnostic] = []
    for diag in kept:
        direction = _ROOTCAUSE_RULES.get(diag.rule_id)
        if direction is None or not diag.root_cause:
            out.append(diag)
            continue
        if direction == "justification":
            trace = analyzer.explain_justification(diag.module, diag.signal)
        else:
            trace = analyzer.explain_propagation(diag.module, diag.signal)
        witness = witness_for_trace(netlist, trace, ctx.design.top,
                                    allow_atpg=allow_atpg)
        if witness is not None:
            diag = replace(diag, witness=witness)
            counter("lint.witnesses").inc()
        out.append(diag)
    return out


def run_lint(design: Design, config: Optional[LintConfig] = None,
             registry: Optional[RuleRegistry] = None,
             files: Optional[Mapping[str, str]] = None,
             today: Optional["datetime.date"] = None) -> LintResult:
    """Run every enabled rule over ``design`` and collect diagnostics.

    ``files`` maps module name -> source file path for location reporting;
    ``today`` overrides the waiver-expiry clock (tests).
    """
    cfg = config or LintConfig()
    reg = registry if registry is not None else _DEFAULT_REGISTRY
    for rule_id in set(cfg.disabled) | set(cfg.enabled) \
            | set(cfg.severity_overrides):
        if rule_id not in reg:
            raise LintError(f"unknown lint rule {rule_id!r}")

    ctx = LintContext(design, files=files)
    kept: List[Diagnostic] = []
    waived: List[Tuple[Diagnostic, Waiver]] = []
    rules_run = 0
    expired_waivers = 0
    with span("lint", modules=len(ctx.modules)) as sp:
        for rule_ in reg.rules():
            if not cfg.is_enabled(rule_.rule_id):
                continue
            rules_run += 1
            severity = cfg.severity_for(rule_)
            for diag in rule_.run(ctx):
                diag = replace(
                    diag,
                    rule_id=rule_.rule_id,
                    category=diag.category or rule_.category,
                    severity=severity,
                    file=diag.file or ctx.file_of(diag.module),
                )
                waiver = cfg.waiver_for(diag)
                if waiver is not None and waiver.is_expired(today):
                    # Expired suppression: the finding re-surfaces as (at
                    # least) a warning so it cannot silently rot away.
                    expired_waivers += 1
                    resurfaced = "warning" if diag.severity == "info" \
                        else diag.severity
                    diag = replace(
                        diag, severity=resurfaced,
                        message=(f"{diag.message} "
                                 f"[waiver expired {waiver.expires}]"),
                    )
                    kept.append(diag)
                elif waiver is not None:
                    waived.append((diag, waiver))
                else:
                    kept.append(diag)
        kept = _attach_witnesses(ctx, cfg, reg, kept)
        kept.sort(key=_sort_key)
        sp.set("findings", len(kept))
        sp.set("rules", rules_run)

    result = LintResult(diagnostics=kept, waived=waived, rules_run=rules_run)
    counts = result.counts()
    counter("lint.runs").inc()
    counter("lint.findings").inc(len(kept))
    counter("lint.errors").inc(counts["error"])
    counter("lint.warnings").inc(counts["warning"])
    counter("lint.infos").inc(counts["info"])
    counter("lint.waived").inc(counts["waived"])
    if expired_waivers:
        counter("lint.waivers_expired").inc(expired_waivers)
    for rule_id, n in result.by_rule().items():
        counter(f"lint.rule.{rule_id}").inc(n)
    _log.info("lint_done", findings=len(kept), **counts)
    return result


def iter_module_names(ctx: LintContext) -> Sequence[str]:
    """Module names in deterministic order (shared by the rule modules)."""
    return sorted(ctx.modules)
