"""Netlist-level lint rules: problems visible only after elaboration.

These run on the *unoptimized* flat netlist (see
:meth:`repro.lint.core.LintContext.netlist`): optimization would hide
floating nets and refuse to topologically sort the loops W201 reports.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.lint.core import Diagnostic, LintContext, TraceStep, rule
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist


@rule("W200", severity="error", category="synth",
      title="design fails to elaborate")
def check_elaborates(ctx: LintContext) -> Iterator[Diagnostic]:
    """The design cannot be turned into a gate netlist at all (inferred
    latches, unsupported constructs, bad widths); every downstream FACTOR
    phase — synthesis, transformation, ATPG — would fail the same way."""
    if ctx.netlist() is None and ctx.netlist_error is not None:
        yield Diagnostic(
            rule_id="W200", severity="error", category="synth",
            module=ctx.design.top,
            message=f"elaboration failed: {ctx.netlist_error}",
        )


def _combinational_cycle(netlist: Netlist) -> List[int]:
    """One combinational cycle as a list of net ids, or [] if none."""
    sources: Set[int] = set(netlist.pis) | {CONST0, CONST1}
    for gate in netlist.gates:
        if gate.type is GateType.DFF:
            sources.add(gate.output)

    state: Dict[int, int] = {}  # 0 visiting, 1 done

    def visit(start: int) -> List[int]:
        # Iterative DFS: unoptimized netlists are deep enough to blow the
        # interpreter recursion limit.
        stack: List[List[int]] = [[start, 0]]
        path: List[int] = []
        while stack:
            net, child_idx = stack[-1]
            gate = netlist.driver(net)
            if child_idx == 0:
                if net in sources or state.get(net) == 1 or gate is None:
                    stack.pop()
                    continue
                if state.get(net) == 0:
                    idx = path.index(net)
                    return path[idx:] + [net]
                state[net] = 0
                path.append(net)
            if gate is not None and child_idx < len(gate.inputs):
                stack[-1][1] += 1
                stack.append([gate.inputs[child_idx], 0])
            else:
                state[net] = 1
                path.pop()
                stack.pop()
        return []

    for gate in netlist.gates:
        if gate.type is not GateType.DFF:
            cycle = visit(gate.output)
            if cycle:
                return cycle
    return []


@rule("W201", severity="error", category="synth",
      title="combinational loop")
def check_combinational_loops(ctx: LintContext) -> Iterator[Diagnostic]:
    """A cycle through combinational gates (no flip-flop on the path)
    oscillates or deadlocks in real hardware and makes the netlist
    impossible to topologically sort for simulation and ATPG."""
    netlist = ctx.netlist()
    if netlist is None:
        return
    cycle = _combinational_cycle(netlist)
    if not cycle:
        return
    names = [netlist.net_name(net) for net in cycle]
    yield Diagnostic(
        rule_id="W201", severity="error", category="synth",
        module=ctx.design.top, signal=names[0],
        message="combinational loop: " + " -> ".join(names),
        trace=tuple(TraceStep(module=ctx.design.top,
                              signal=netlist.net_name(net))
                    for net in cycle),
    )


@rule("W202", severity="warning", category="synth",
      title="floating gate input")
def check_floating_gate_inputs(ctx: LintContext) -> Iterator[Diagnostic]:
    """A gate reads a net that no gate drives and that is not a primary
    input or constant: after elaboration the value is undefined, so the
    cone above it computes garbage."""
    netlist = ctx.netlist()
    if netlist is None:
        return
    pi_set = set(netlist.pis)
    seen: Set[int] = set()
    for gate in netlist.gates:
        for inp in gate.inputs:
            if inp in (CONST0, CONST1) or inp in pi_set or inp in seen:
                continue
            if netlist.driver(inp) is None:
                seen.add(inp)
                yield Diagnostic(
                    rule_id="W202", severity="warning", category="synth",
                    module=ctx.design.top,
                    signal=netlist.net_name(inp),
                    message=(
                        f"net {netlist.net_name(inp)!r} is read by a "
                        f"{gate.type.value} gate but has no driver"),
                )
