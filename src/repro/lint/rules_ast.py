"""AST-level lint rules: structural problems visible in one module's source.

Every rule walks the parsed :class:`repro.verilog.ast.Module` directly — no
chain database or elaboration needed — so these run even on designs that do
not synthesize.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import Diagnostic, LintContext, TraceStep, rule
from repro.lint.width import const_eval, declared_widths, expr_width
from repro.verilog import ast


def _iter_modules(ctx: LintContext) -> Iterator[ast.Module]:
    for name in sorted(ctx.modules):
        yield ctx.modules[name]


# ---------------------------------------------------------------------------
# W001 — multiple drivers
# ---------------------------------------------------------------------------


class _Driver:
    """One driving construct for a signal: full (whole vector) or partial."""

    __slots__ = ("full", "line", "what")

    def __init__(self, full: bool, line: int, what: str):
        self.full = full
        self.line = line
        self.what = what


def _lhs_drivers(target: ast.Expr, line: int, what: str
                 ) -> Iterator[Tuple[str, _Driver]]:
    if isinstance(target, ast.Ident):
        yield target.name, _Driver(True, line, what)
    elif isinstance(target, (ast.BitSelect, ast.PartSelect)):
        yield target.name, _Driver(False, line, what)
    elif isinstance(target, ast.Concat):
        for part in target.parts:
            yield from _lhs_drivers(part, line, what)


@rule("W001", severity="error", category="connectivity",
      title="net has multiple drivers")
def check_multi_driven(ctx: LintContext) -> Iterator[Diagnostic]:
    """A net driven by more than one construct (continuous assigns, gate or
    instance outputs, always blocks) has contention: simulation x-es out and
    synthesis rejects it.  Partial (bit-/part-select) drivers from distinct
    constructs only count when one of them writes the whole vector, so
    per-bit continuous assigns stay legal."""
    for module in _iter_modules(ctx):
        drivers: Dict[str, List[_Driver]] = {}

        def add(target: ast.Expr, line: int, what: str) -> None:
            for name, drv in _lhs_drivers(target, line, what):
                drivers.setdefault(name, []).append(drv)

        for port in module.ports:
            if port.direction == "input":
                drivers.setdefault(port.name, []).append(
                    _Driver(True, port.line, "input port"))
        for assign in module.assigns:
            add(assign.target, assign.line, "continuous assign")
        for gate in module.gates:
            add(gate.terminals[0], gate.line,
                f"{gate.gate_type} gate output")
        for inst in module.instances:
            child = ctx.modules.get(inst.module_name)
            if child is None:
                continue
            dirs = {p.name: p.direction for p in child.ports}
            port_names = list(child.port_order)
            for idx, conn in enumerate(inst.connections):
                pname = conn.name if conn.name is not None else (
                    port_names[idx] if idx < len(port_names) else None)
                if pname is None or conn.expr is None:
                    continue
                if dirs.get(pname) == "output":
                    add(conn.expr, conn.line,
                        f"output {pname!r} of instance {inst.inst_name!r}")
        for always in module.always_blocks:
            # One always block is a single driver regardless of how many
            # assignments it contains (procedural last-write-wins).
            names: Dict[str, bool] = {}
            for stmt in ast.walk_stmts(always.body):
                if isinstance(stmt, ast.AssignStmt):
                    for name, drv in _lhs_drivers(stmt.target, stmt.line,
                                                  "always block"):
                        names[name] = names.get(name, False) or drv.full
            for name, full in names.items():
                drivers.setdefault(name, []).append(
                    _Driver(full, always.line, "always block"))

        for name in sorted(drivers):
            sites = drivers[name]
            if len(sites) < 2 or not any(d.full for d in sites):
                continue
            first = min(sites, key=lambda d: d.line)
            whats = ", ".join(
                f"{d.what} (line {d.line})" for d in sites
            )
            yield Diagnostic(
                rule_id="W001", severity="error", category="connectivity",
                module=module.name, signal=name, line=first.line,
                message=f"driven by {len(sites)} constructs: {whats}",
                trace=tuple(TraceStep(module=module.name, signal=name,
                                      line=d.line, note=d.what)
                            for d in sites),
            )


# ---------------------------------------------------------------------------
# W002 / W003 — undriven and unused nets
# ---------------------------------------------------------------------------


@rule("W002", severity="warning", category="connectivity",
      title="net is used but never driven")
def check_undriven_nets(ctx: LintContext) -> Iterator[Diagnostic]:
    """A net read somewhere in the module but with an empty use-def chain
    floats: downstream logic sees an undefined value.  Ports are excluded —
    an undriven output port is rule W101's job."""
    for module in _iter_modules(ctx):
        chains = ctx.chaindb.chains(module.name)
        ports = {p.name for p in module.ports}
        lines = {net.name: net.line for net in module.nets}
        for name in chains.undriven_signals():
            if name in ports:
                continue
            uses = chains.du_chain(name)
            yield Diagnostic(
                rule_id="W002", severity="warning", category="connectivity",
                module=module.name, signal=name,
                line=lines.get(name, uses[0].line if uses else 0),
                message="used but never driven (empty ud chain)",
                trace=tuple(TraceStep(module=module.name, signal=name,
                                      line=site.line, note=f"use:{site.kind}")
                            for site in uses[:8]),
            )


@rule("W003", severity="warning", category="dead-code",
      title="net is never used")
def check_unused_nets(ctx: LintContext) -> Iterator[Diagnostic]:
    """A net that is driven (or merely declared) but never read is dead
    logic; the paper's empty du-chain flag means any value it carries cannot
    propagate anywhere.  Ports are excluded — see W102 for input ports."""
    for module in _iter_modules(ctx):
        chains = ctx.chaindb.chains(module.name)
        ports = {p.name for p in module.ports}
        lines = {net.name: net.line for net in module.nets}
        declared = [net.name for net in module.nets]
        seen: Set[str] = set()
        for name in chains.unused_signals():
            if name in ports:
                continue
            seen.add(name)
            defs = chains.ud_chain(name)
            yield Diagnostic(
                rule_id="W003", severity="warning", category="dead-code",
                module=module.name, signal=name,
                line=lines.get(name, defs[0].line if defs else 0),
                message="driven but never used (empty du chain)",
                trace=tuple(TraceStep(module=module.name, signal=name,
                                      line=site.line, note=f"def:{site.kind}")
                            for site in defs[:8]),
            )
        for name in declared:
            if name in seen or name in ports:
                continue
            if not chains.ud_chain(name) and not chains.du_chain(name):
                yield Diagnostic(
                    rule_id="W003", severity="warning", category="dead-code",
                    module=module.name, signal=name,
                    line=lines.get(name, 0),
                    message="declared but never referenced",
                )


# ---------------------------------------------------------------------------
# W004 / W005 — latch inference
# ---------------------------------------------------------------------------


def _case_fully_covered(case: ast.Case, module: ast.Module,
                        ctx: LintContext) -> Optional[bool]:
    """True/False when coverage is provable, None when unknown."""
    if any(item.is_default for item in case.items):
        return True
    env = ctx.const_env(module)
    widths = declared_widths(module, env)
    sel_width = expr_width(case.selector, widths, env)
    if sel_width is None or sel_width > 12:
        return None
    covered: Set[int] = set()
    for item in case.items:
        for label in item.labels:
            if isinstance(label, ast.CaseLabelWild):
                free = [i for i, bit in enumerate(label.bits) if bit == "?"]
                base = int(label.bits.replace("?", "0"), 2)
                for mask in range(1 << len(free)):
                    value = base
                    for j, pos in enumerate(free):
                        if (mask >> j) & 1:
                            value |= 1 << (label.width - 1 - pos)
                    covered.add(value)
                continue
            value = const_eval(label, env)
            if value is None:
                return None
            covered.add(value & ((1 << sel_width) - 1))
    return len(covered) >= (1 << sel_width)


@rule("W004", severity="warning", category="latch",
      title="case statement does not cover all selector values")
def check_incomplete_case(ctx: LintContext) -> Iterator[Diagnostic]:
    """In a combinational always block, a ``case`` without a ``default``
    whose labels do not cover every selector value leaves the assigned
    signals holding state — a latch is inferred.  Coverage is proved by
    enumerating label values (wildcard labels included) against the
    selector width."""
    for module in _iter_modules(ctx):
        for always in module.always_blocks:
            if always.is_sequential:
                continue
            for stmt in ast.walk_stmts(always.body):
                if not isinstance(stmt, ast.Case):
                    continue
                if _case_fully_covered(stmt, module, ctx) is False:
                    sels = ", ".join(sorted(stmt.selector.signals()))
                    yield Diagnostic(
                        rule_id="W004", severity="warning", category="latch",
                        module=module.name, signal=sels, line=stmt.line,
                        message=(f"{stmt.kind} on [{sels}] has no default "
                                 "and does not cover all selector values"),
                    )


def _definitely_assigned(stmt: ast.Stmt, module: ast.Module,
                         ctx: LintContext) -> Set[str]:
    """Signals assigned on *every* execution path through ``stmt``."""
    if isinstance(stmt, ast.AssignStmt):
        return stmt.defined()
    if isinstance(stmt, ast.Block):
        out: Set[str] = set()
        for inner in stmt.stmts:
            out |= _definitely_assigned(inner, module, ctx)
        return out
    if isinstance(stmt, ast.If):
        if stmt.else_stmt is None:
            return set()
        return (_definitely_assigned(stmt.then_stmt, module, ctx)
                & _definitely_assigned(stmt.else_stmt, module, ctx))
    if isinstance(stmt, ast.Case):
        if _case_fully_covered(stmt, module, ctx) is not True:
            return set()
        sets = [_definitely_assigned(item.stmt, module, ctx)
                for item in stmt.items]
        if not sets:
            return set()
        out = sets[0]
        for other in sets[1:]:
            out &= other
        return out
    if isinstance(stmt, ast.For):
        # Synthesizable for-loops have constant bounds and run >= once in
        # the designs this subset targets; treat the body as executed.  The
        # init assignment (the loop variable) always runs.
        return (stmt.init.defined()
                | _definitely_assigned(stmt.body, module, ctx))
    return set()


@rule("W005", severity="warning", category="latch",
      title="signal not assigned on all paths (latch inferred)")
def check_latch_inference(ctx: LintContext) -> Iterator[Diagnostic]:
    """A combinational always block must assign each of its targets on every
    path; a signal assigned only under some conditions keeps its previous
    value, which infers a level-sensitive latch the synthesis substrate
    rejects."""
    for module in _iter_modules(ctx):
        for always in module.always_blocks:
            if always.is_sequential:
                continue
            assigned_anywhere = always.defined()
            assigned_always = _definitely_assigned(always.body, module, ctx)
            for name in sorted(assigned_anywhere - assigned_always):
                yield Diagnostic(
                    rule_id="W005", severity="warning", category="latch",
                    module=module.name, signal=name, line=always.line,
                    message=("assigned on some but not all paths of a "
                             "combinational always block (latch inferred)"),
                )


# ---------------------------------------------------------------------------
# W006 — blocking / non-blocking mixing
# ---------------------------------------------------------------------------


@rule("W006", severity="warning", category="style",
      title="always block mixes blocking and non-blocking assignments")
def check_blocking_mix(ctx: LintContext) -> Iterator[Diagnostic]:
    """Mixing ``=`` and ``<=`` in one always block makes evaluation order
    subtle and is a classic source of simulation/synthesis mismatch;
    sequential blocks should use ``<=``, combinational blocks ``=``."""
    for module in _iter_modules(ctx):
        for always in module.always_blocks:
            blocking_lines: List[int] = []
            nonblocking_lines: List[int] = []
            for stmt in ast.walk_stmts(always.body):
                if isinstance(stmt, ast.AssignStmt):
                    # For-loop headers are syntactically blocking; only the
                    # statements walk_stmts reaches (bodies included) count.
                    (blocking_lines if stmt.blocking
                     else nonblocking_lines).append(stmt.line)
            if blocking_lines and nonblocking_lines:
                yield Diagnostic(
                    rule_id="W006", severity="warning", category="style",
                    module=module.name, line=always.line,
                    message=(
                        "always block mixes blocking "
                        f"(line {min(blocking_lines)}) and non-blocking "
                        f"(line {min(nonblocking_lines)}) assignments"),
                )


# ---------------------------------------------------------------------------
# W007 / W008 — width mismatches
# ---------------------------------------------------------------------------


def _is_routing_expr(expr: ast.Expr) -> bool:
    """Wiring-only expressions, where a width difference means lost or
    invented bits rather than Verilog's usual context widening."""
    if isinstance(expr, (ast.Ident, ast.BitSelect, ast.PartSelect)):
        return True
    if isinstance(expr, ast.Concat):
        return all(_is_routing_expr(p) for p in expr.parts)
    if isinstance(expr, ast.Repeat):
        return _is_routing_expr(expr.value)
    return False


def _width_mismatch(lhs_width: int, rhs_width: int,
                    rhs: ast.Expr) -> Optional[str]:
    """Why a width difference is worth flagging, or None.

    Truncation always flags.  Extension (wider target) is idiomatic for
    arithmetic (``sum = a * b`` context-widens) and literals (``r <= 1'b0``)
    so it only flags for pure routing expressions, where padding invents
    bits.
    """
    if lhs_width < rhs_width:
        return f"truncates the {rhs_width}-bit expression"
    if lhs_width > rhs_width and _is_routing_expr(rhs):
        return f"zero-pads the {rhs_width}-bit expression"
    return None


@rule("W007", severity="warning", category="width",
      title="assignment width mismatch")
def check_assign_widths(ctx: LintContext) -> Iterator[Diagnostic]:
    """LHS and RHS of an assignment have provably different bit widths;
    Verilog silently truncates or zero-extends, which is rarely what the
    mismatch intended.  Unsized literals and unknown widths never flag."""
    for module in _iter_modules(ctx):
        env = ctx.const_env(module)
        widths = declared_widths(module, env)

        def check(target: ast.Expr, rhs: ast.Expr, line: int,
                  where: str) -> Optional[Diagnostic]:
            lhs_width = expr_width(target, widths, env)
            rhs_width = expr_width(rhs, widths, env)
            if lhs_width is None or rhs_width is None:
                return None
            why = _width_mismatch(lhs_width, rhs_width, rhs)
            if why is None:
                return None
            names = ", ".join(sorted(ast.lhs_base_names(target)))
            return Diagnostic(
                rule_id="W007", severity="warning", category="width",
                module=module.name, signal=names, line=line,
                message=f"{where}: {lhs_width}-bit target {why}",
            )

        for assign in module.assigns:
            diag = check(assign.target, assign.rhs, assign.line,
                         "continuous assign")
            if diag:
                yield diag
        for always in module.always_blocks:
            for stmt in ast.walk_stmts(always.body):
                if isinstance(stmt, ast.AssignStmt):
                    diag = check(stmt.target, stmt.rhs, stmt.line,
                                 "procedural assign")
                    if diag:
                        yield diag


@rule("W008", severity="warning", category="width",
      title="port connection width mismatch")
def check_port_widths(ctx: LintContext) -> Iterator[Diagnostic]:
    """An instance port is connected to an expression whose width provably
    differs from the port declaration: bits are silently dropped or padded
    at the module boundary."""
    from repro.hierarchy.connectivity import instance_port_map

    for module in _iter_modules(ctx):
        env = ctx.const_env(module)
        widths = declared_widths(module, env)
        for inst in module.instances:
            child = ctx.modules.get(inst.module_name)
            if child is None or inst.param_overrides:
                continue  # overridden params change child widths; skip
            child_env = ctx.const_env(child)
            try:
                pmap = instance_port_map(child, inst)
            except ValueError:
                continue  # malformed connections surface elsewhere
            for port in child.ports:
                expr = pmap.get(port.name)
                if expr is None:
                    continue
                from repro.lint.width import range_width

                port_width = range_width(port.range, child_env)
                conn_width = expr_width(expr, widths, env)
                if port_width is None or conn_width is None:
                    continue
                # At an input port the connection behaves like an
                # assignment onto the port; at an output port the
                # connection must be plain wiring, so any difference
                # loses or invents bits.
                if port.direction == "input":
                    if _width_mismatch(port_width, conn_width, expr) is None:
                        continue
                elif port_width == conn_width or not _is_routing_expr(expr):
                    continue
                yield Diagnostic(
                    rule_id="W008", severity="warning", category="width",
                    module=module.name,
                    signal=f"{inst.inst_name}.{port.name}",
                    line=inst.line,
                    message=(
                        f"port {port.name!r} of {child.name} is "
                        f"{port_width} bits but is connected to a "
                        f"{conn_width}-bit expression"),
                )


# ---------------------------------------------------------------------------
# W009 — dead branches
# ---------------------------------------------------------------------------


@rule("W009", severity="info", category="dead-code",
      title="branch condition is constant")
def check_dead_branches(ctx: LintContext) -> Iterator[Diagnostic]:
    """An ``if`` condition or ``case`` selector that evaluates to a constant
    (literals and parameters folded) makes one side of the branch
    unreachable — usually a leftover debug switch or a mis-wired parameter."""
    for module in _iter_modules(ctx):
        env = ctx.const_env(module)
        for always in module.always_blocks:
            for stmt in ast.walk_stmts(always.body):
                if isinstance(stmt, ast.If):
                    value = const_eval(stmt.cond, env)
                    if value is None:
                        continue
                    dead = "then" if value == 0 else "else"
                    if dead == "else" and stmt.else_stmt is None:
                        continue
                    yield Diagnostic(
                        rule_id="W009", severity="info",
                        category="dead-code", module=module.name,
                        line=stmt.line,
                        message=(f"if condition is constant {value}; the "
                                 f"{dead} branch is dead"),
                    )
                elif isinstance(stmt, ast.Case):
                    value = const_eval(stmt.selector, env)
                    if value is not None:
                        yield Diagnostic(
                            rule_id="W009", severity="info",
                            category="dead-code", module=module.name,
                            line=stmt.line,
                            message=(f"{stmt.kind} selector is constant "
                                     f"{value}; all other arms are dead"),
                        )
        for assign in module.assigns:
            for expr in ast.walk_exprs(assign.rhs):
                if isinstance(expr, ast.Ternary):
                    value = const_eval(expr.cond, env)
                    if value is not None:
                        dead = "false" if value else "true"
                        yield Diagnostic(
                            rule_id="W009", severity="info",
                            category="dead-code", module=module.name,
                            line=assign.line,
                            message=(
                                "ternary condition is constant "
                                f"{value}; the {dead} arm is dead"),
                        )
