"""Benchmark suite for the job server: ``repro bench --suite serve``.

Measures the latencies the serving layer exists to improve, against a real
server subprocess with a fresh artifact store:

- **cold**    — first submission of an ATPG job: full pipeline execution,
- **warm**    — identical re-submissions answered from the artifact store
  (p50/p95 of repeated round trips; the <100 ms p50 target lives here),
- **coalesced** — N concurrent identical submissions while the job is in
  flight: all clients share one pipeline execution,
- **throughput** — sustained distinct-job traffic from concurrent
  clients, in jobs/second,
- **progress_overhead** — ATPG engine CPU seconds with the live progress
  reporter installed vs not (in-process, store disabled); guards the
  promise that observability costs under 2%.

Every row records a ``match`` verdict (the run's correctness condition —
e.g. warm rows must actually be store-served) and carries its own
RunRecord, so trajectories can be diffed across PRs like the other
``BENCH_*.json`` payloads.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Dict, List, Optional

from repro.obs import RunRecord, get_logger, span
from repro.serve.client import ServeClient

_LOG = get_logger("bench.serve")

#: Concurrent identical submissions for the coalescing row.
COALESCE_CLIENTS = 8


def _src_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


class _ServerProcess:
    """A ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, work: str, jobs: int = 0):
        env = dict(os.environ, REPRO_CACHE_DIR=os.path.join(work, "store"))
        env.pop("REPRO_NO_CACHE", None)
        env["PYTHONPATH"] = os.pathsep.join(
            [_src_root()] + ([env["PYTHONPATH"]]
                             if env.get("PYTHONPATH") else []))
        cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
               "--journal", os.path.join(work, "journal.jsonl")]
        if jobs:
            cmd += ["--jobs", str(jobs)]
        self.proc = subprocess.Popen(cmd, env=env, text=True,
                                     stdout=subprocess.PIPE,
                                     stderr=subprocess.PIPE)
        line = self.proc.stdout.readline()
        if not line.startswith("serving on "):
            raise RuntimeError(
                f"server failed to start: {line!r} "
                f"{self.proc.stderr.read()[-1000:]}")
        self.base_url = line.split()[-1].strip()
        self.client = ServeClient(self.base_url, timeout=60.0)
        self.client.wait_until_up()

    def stop(self) -> int:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self.proc.kill()
            self.proc.wait()
        return self.proc.returncode


def _atpg_spec(quick: bool, seed: int) -> Dict[str, object]:
    frames, backtracks = (1, 10) if quick else (2, 50)
    return {
        "op": "atpg",
        "design": "arm2",
        "top": "arm",
        "mut": "arm_alu",
        "frames": frames,
        "backtrack_limit": backtracks,
        "seed": seed,
    }


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _row(mode: str, **fields) -> Dict[str, object]:
    row = {
        "mode": mode,
        "design": "arm2/arm_alu",
        "n": 1,
        "wall_s": 0.0,
        "p50_ms": "-",
        "p95_ms": "-",
        "jobs_per_s": "-",
        "served": "-",
        "match": False,
    }
    row.update(fields)
    row["record"] = RunRecord.capture(f"bench.serve.{mode}").as_dict()
    return row


def serve_rows(quick: bool = False, seed: int = 2002,
               jobs: Optional[int] = None) -> List[Dict[str, object]]:
    """Run the four serving scenarios against a fresh server + store."""
    work = tempfile.mkdtemp(prefix="repro-serve-bench-")
    rows: List[Dict[str, object]] = []
    server = None
    try:
        server = _ServerProcess(work)
        client = server.client
        rows.append(_cold_row(client, quick, seed))
        rows.append(_warm_row(client, quick, seed))
        rows.append(_coalesced_row(client, quick, seed))
        rows.append(_throughput_row(client, quick, seed))
        rows.append(_progress_overhead_row(quick, seed))
        code = server.stop()
        server = None
        if code != 0:
            _LOG.error("serve_bench.bad_exit", returncode=code)
            for row in rows:
                row["match"] = False
    finally:
        if server is not None:
            server.stop()
        shutil.rmtree(work, ignore_errors=True)
    return rows


def _cold_row(client: ServeClient, quick: bool,
              seed: int) -> Dict[str, object]:
    with span("bench.serve", mode="cold") as sp:
        response = client.submit(_atpg_spec(quick, seed))
        job = client.wait(response["job"]["id"], timeout=600)
    served = job.get("served_from")
    return _row("cold", wall_s=round(sp.wall_seconds, 3), served=served,
                match=job["status"] == "done" and served == "pipeline")


def _warm_row(client: ServeClient, quick: bool,
              seed: int) -> Dict[str, object]:
    repeats = 5 if quick else 20
    latencies: List[float] = []
    served_ok = True
    with span("bench.serve", mode="warm", repeats=repeats) as sp:
        for _ in range(repeats):
            with span("bench.serve.warm_submit") as each:
                response = client.submit(_atpg_spec(quick, seed))
            job = response["job"]
            if job["status"] != "done" \
                    or job.get("served_from") != "store":
                served_ok = False
            latencies.append(each.wall_seconds * 1000.0)
    return _row("warm", n=repeats, wall_s=round(sp.wall_seconds, 3),
                p50_ms=round(_percentile(latencies, 0.5), 2),
                p95_ms=round(_percentile(latencies, 0.95), 2),
                served="store", match=served_ok)


def _coalesced_row(client: ServeClient, quick: bool,
                   seed: int) -> Dict[str, object]:
    spec = _atpg_spec(quick, seed + 1)  # unseen by the cold/warm rows
    executed_before = client.metric_value("serve_executed_total") or 0
    job_ids: List[str] = []
    errors: List[str] = []
    lock = threading.Lock()

    def one_client() -> None:
        try:
            local = ServeClient(f"http://{client.host}:{client.port}",
                                timeout=600.0)
            response = local.submit(spec)
            job = local.wait(response["job"]["id"], timeout=600)
            with lock:
                job_ids.append(job["id"])
                if job["status"] != "done":
                    errors.append(job.get("error") or "job failed")
        except Exception as exc:  # collected, fails the row
            with lock:
                errors.append(str(exc))

    threads = [threading.Thread(target=one_client)
               for _ in range(COALESCE_CLIENTS)]
    with span("bench.serve", mode="coalesced",
              clients=COALESCE_CLIENTS) as sp:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    executed_after = client.metric_value("serve_executed_total") or 0
    executions = executed_after - executed_before
    match = (not errors and len(set(job_ids)) >= 1
             and len(job_ids) == COALESCE_CLIENTS and executions <= 1)
    if errors:
        _LOG.error("serve_bench.coalesce_errors", errors=errors[:3])
    return _row("coalesced", n=COALESCE_CLIENTS,
                wall_s=round(sp.wall_seconds, 3),
                served=f"executions={int(executions)}", match=match)


def _progress_overhead_row(quick: bool, seed: int) -> Dict[str, object]:
    """ATPG engine CPU seconds: progress reporter installed vs not.

    Runs in-process (no server) with the artifact store disabled so both
    configurations execute the full engine loop; best-of-N CPU seconds
    per configuration to shrug off scheduler noise.  ``match`` holds the
    <2% overhead promise from docs/observability.md — and requires the
    reporter to have actually fired, so a silently-disconnected hook
    can't pass as zero-cost.
    """
    from repro.atpg.engine import AtpgOptions
    from repro.core.factor import Factor
    from repro.designs import arm2_source
    from repro.obs import CallbackProgressReporter, CpuTimer, reporting

    frames, backtracks = (1, 10) if quick else (2, 50)
    repeats = 3 if quick else 5
    saved_no_cache = os.environ.get("REPRO_NO_CACHE")
    os.environ["REPRO_NO_CACHE"] = "1"
    events: List[Dict[str, object]] = []
    try:
        factor = Factor.from_verilog(arm2_source(), top="arm")
        analyzed = factor.analyze("arm_alu")
        options = AtpgOptions(max_frames=frames,
                              backtrack_limit=backtracks, seed=seed)

        def timed(reporter) -> float:
            timer = CpuTimer()
            with timer:
                if reporter is None:
                    factor.generate_tests(analyzed, options)
                else:
                    with reporting(reporter):
                        factor.generate_tests(analyzed, options)
            return timer.elapsed

        with span("bench.serve", mode="progress_overhead",
                  repeats=repeats) as sp:
            baseline = min(timed(None) for _ in range(repeats))
            reported = min(
                timed(CallbackProgressReporter(events.append))
                for _ in range(repeats))
    finally:
        if saved_no_cache is None:
            os.environ.pop("REPRO_NO_CACHE", None)
        else:
            os.environ["REPRO_NO_CACHE"] = saved_no_cache
    overhead_pct = 100.0 * (reported - baseline) / max(baseline, 1e-9)
    return _row("progress_overhead", n=repeats,
                wall_s=round(sp.wall_seconds, 3),
                served=f"cpu {baseline:.3f}s -> {reported:.3f}s "
                       f"({overhead_pct:+.2f}%)",
                match=overhead_pct < 2.0 and bool(events))


def _throughput_row(client: ServeClient, quick: bool,
                    seed: int) -> Dict[str, object]:
    clients, per_client = (2, 4) if quick else (4, 6)
    errors: List[str] = []
    lock = threading.Lock()

    def one_client(index: int) -> None:
        local = ServeClient(f"http://{client.host}:{client.port}",
                            timeout=600.0)
        for i in range(per_client):
            # Distinct seeds -> distinct fingerprints -> no reuse: this
            # row measures sustained pipeline throughput, not caching.
            spec = _atpg_spec(quick, seed + 100 + index * per_client + i)
            try:
                response = local.submit(spec)
                job = local.wait(response["job"]["id"], timeout=600)
                if job["status"] != "done":
                    with lock:
                        errors.append(job.get("error") or "job failed")
            except Exception as exc:
                with lock:
                    errors.append(str(exc))

    threads = [threading.Thread(target=one_client, args=(index,))
               for index in range(clients)]
    with span("bench.serve", mode="throughput", clients=clients) as sp:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    total = clients * per_client
    if errors:
        _LOG.error("serve_bench.throughput_errors", errors=errors[:3])
    return _row("throughput", n=total, wall_s=round(sp.wall_seconds, 3),
                jobs_per_s=round(total / max(sp.wall_seconds, 1e-9), 2),
                served="pipeline", match=not errors)
