"""Shared experiment driver for the Table 1-6 reproductions.

All benchmarks and examples reproduce the paper's evaluation on the ARM-2
substitute design.  One ``Arm2Experiments`` instance is shared per process
(the full-chip netlist and both extraction composers are expensive), and all
ATPG runs use identical engine options so the comparisons are fair.

Environment knobs:

- ``REPRO_BENCH_SCALE=smoke``  — tiny fault samples / budgets for CI smoke
  runs (default is ``paper``: the full evaluation),
- ``REPRO_BENCH_SEED``        — RNG seed for the ATPG random phase,
- ``REPRO_JOBS``              — worker-process count for the Table 4-6 ATPG
  fan-out (default: ``os.cpu_count()``; ``1`` forces serial).

The per-MUT ATPG reports are independent and seeded, so computing them in a
:class:`~concurrent.futures.ProcessPoolExecutor` returns bit-identical rows
to a serial run; worker metrics snapshots are merged back into the parent
registry so benchmark ``RunRecord`` payloads stay complete.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atpg.engine import AtpgEngine, AtpgOptions, AtpgReport
from repro.obs import get_registry
from repro.core.composer import ConstraintComposer
from repro.core.extractor import ExtractionMode, MutSpec
from repro.core.piers import find_piers, pier_q_nets
from repro.core.testability import analyze_testability
from repro.core.transform import TransformedModule
from repro.designs.arm2 import ARM2_MUTS, MutInfo, arm2_design
from repro.hierarchy.design import Design
from repro.jobs import resolve_jobs
from repro.store import synthesize_cached
from repro.synth.stats import netlist_stats


def bench_scale() -> str:
    """Current evaluation scale: "paper" (full) or "smoke" (CI-sized)."""
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


_scale = bench_scale


def _seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2002"))


def default_atpg_options(**overrides) -> AtpgOptions:
    """The engine configuration shared by every Table 4-6 run."""
    smoke = _scale() == "smoke"
    base = dict(
        max_frames=4,
        frame_schedule=(2, 4),
        backtrack_limit=100 if smoke else 200,
        fault_time_limit=0.25 if smoke else 0.4,
        # High safety ceiling: every fault gets its per-fault budget; the
        # paper-shape comparisons need complete (not time-truncated) runs.
        total_time_limit=60.0 if smoke else 900.0,
        random_sequences=4 if smoke else 8,
        random_sequence_length=16 if smoke else 24,
        seed=_seed(),
    )
    base.update(overrides)
    return AtpgOptions(**base)




def _report_job(key: Tuple) -> Tuple[Tuple, AtpgReport,
                                     Dict[str, Dict[str, object]]]:
    """Worker entry point: compute one ATPG report in a pool process.

    With the default fork start method the worker inherits the parent's
    warm ``_SHARED`` experiments instance; under spawn it rebuilds one (the
    reports are seeded, so results are identical either way).  The metrics
    registry is reset first so the returned snapshot is exactly this job's
    delta for the parent to merge.
    """
    registry = get_registry()
    registry.reset()
    report = get_experiments().compute_report(key)
    return key, report, registry.snapshot()


def processor_level_fault_sample() -> int:
    """Chip-level raw ATPG is intractable fault-by-fault in pure Python;
    Table 4 estimates coverage on a uniform fault sample (documented in
    EXPERIMENTS.md)."""
    return 60 if _scale() == "smoke" else 200


class Arm2Experiments:
    """Computes the rows of every paper table for the ARM-2 substitute."""

    def __init__(self) -> None:
        self.design: Design = arm2_design()
        self.full_netlist = synthesize_cached(self.design)
        self.composers: Dict[ExtractionMode, ConstraintComposer] = {
            ExtractionMode.COMPOSE: ConstraintComposer(
                self.design, ExtractionMode.COMPOSE
            ),
            ExtractionMode.CONVENTIONAL: ConstraintComposer(
                self.design, ExtractionMode.CONVENTIONAL
            ),
        }
        self.piers = find_piers(self.design)
        self._standalone_cache: Dict[str, object] = {}
        self._atpg_cache: Dict[Tuple, AtpgReport] = {}

    # -- shared pieces -----------------------------------------------------

    def muts(self) -> List[MutInfo]:
        return list(ARM2_MUTS)

    def standalone_netlist(self, mut: MutInfo):
        if mut.name not in self._standalone_cache:
            self._standalone_cache[mut.name] = synthesize_cached(
                self.design, root=mut.name
            )
        return self._standalone_cache[mut.name]

    def transformed(self, mut: MutInfo,
                    mode: ExtractionMode) -> TransformedModule:
        return self.composers[mode].transform(
            MutSpec(module=mut.name, path=mut.path)
        )

    # -- Table 1: module characteristics -------------------------------------

    def table1_rows(self) -> List[Dict[str, object]]:
        rows = []
        for mut in self.muts():
            module_nl = self.standalone_netlist(mut)
            stats = netlist_stats(module_nl)
            surrounding = self.full_netlist.gate_count() - stats.num_gates
            rows.append({
                "module": mut.name,
                "hier_level": mut.level,
                "PI": stats.num_pis,
                "PO": stats.num_pos,
                "gates_in_module": stats.num_gates,
                "gates_in_surrounding": surrounding,
                "stuck_at_faults": stats.num_faults,
            })
        return rows

    # -- Tables 2 and 3: transformed-module construction ----------------------

    def transform_rows(self, mode: ExtractionMode) -> List[Dict[str, object]]:
        rows = []
        for mut in self.muts():
            tr = self.transformed(mut, mode)
            full_surrounding = self.full_netlist.gate_count() - tr.mut_gates
            reduction = 100.0 * (
                1.0 - tr.surrounding_gates / full_surrounding
            )
            rows.append({
                "module": mut.name,
                "extraction_s": round(tr.extraction_seconds, 4),
                "synthesis_s": round(tr.synthesis_seconds, 4),
                "gates_in_surrounding": tr.surrounding_gates,
                "gate_reduction_%": round(reduction, 1),
                "PI": tr.num_pis,
                "PO": tr.num_pos,
            })
        return rows

    def table2_rows(self) -> List[Dict[str, object]]:
        return self.transform_rows(ExtractionMode.CONVENTIONAL)

    def table3_rows(self) -> List[Dict[str, object]]:
        return self.transform_rows(ExtractionMode.COMPOSE)

    # -- parallel ATPG fan-out ---------------------------------------------

    def compute_report(self, key: Tuple) -> AtpgReport:
        """Compute (and cache) the ATPG report named by a cache key."""
        mut = next(m for m in self.muts() if m.name == key[1])
        if key[0] == "proc":
            return self.processor_level_report(mut)
        if key[0] == "standalone":
            return self.standalone_report(mut)
        if key[0] == "transformed":
            return self.transformed_report(mut, ExtractionMode(key[2]),
                                           use_piers=key[3])
        raise KeyError(f"unknown report key {key!r}")

    def prefetch_reports(self, keys: Sequence[Tuple],
                         jobs: Optional[int] = None) -> None:
        """Fill the ATPG report cache, fanning the misses out over worker
        processes (``jobs`` -> ``REPRO_JOBS`` -> ``os.cpu_count()``)."""
        missing = [k for k in keys if k not in self._atpg_cache]
        if not missing:
            return
        jobs = min(resolve_jobs(jobs), len(missing))
        if jobs <= 1:
            for key in missing:
                self.compute_report(key)
            return
        # Fork-based workers inherit this exact instance via _SHARED, so
        # they skip the expensive design/composer construction.
        global _SHARED
        previous = _SHARED
        _SHARED = self
        try:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            with ProcessPoolExecutor(max_workers=jobs,
                                     mp_context=context) as pool:
                for key, report, metrics in pool.map(_report_job, missing):
                    self._atpg_cache[key] = report
                    get_registry().merge_snapshot(metrics)
        finally:
            _SHARED = previous

    # -- Table 4: raw test generation ------------------------------------------

    def processor_level_report(self, mut: MutInfo) -> AtpgReport:
        key = ("proc", mut.name)
        if key not in self._atpg_cache:
            opts = default_atpg_options(
                fault_region=mut.path,
                fault_sample=processor_level_fault_sample(),
            )
            self._atpg_cache[key] = AtpgEngine(self.full_netlist, opts).run()
        return self._atpg_cache[key]

    def standalone_report(self, mut: MutInfo) -> AtpgReport:
        key = ("standalone", mut.name)
        if key not in self._atpg_cache:
            opts = default_atpg_options()
            self._atpg_cache[key] = AtpgEngine(
                self.standalone_netlist(mut), opts
            ).run()
        return self._atpg_cache[key]

    def table4_rows(self, jobs: Optional[int] = None
                    ) -> List[Dict[str, object]]:
        self.prefetch_reports(
            [("proc", m.name) for m in self.muts()]
            + [("standalone", m.name) for m in self.muts()],
            jobs=jobs,
        )
        rows = []
        for mut in self.muts():
            proc = self.processor_level_report(mut)
            alone = self.standalone_report(mut)
            rows.append({
                "module": mut.name,
                "proc_lvl_cov_%": round(proc.coverage_percent, 2),
                "proc_lvl_time_s": round(proc.total_seconds, 2),
                "proc_sampled_faults": proc.total_faults,
                "standalone_cov_%": round(alone.coverage_percent, 2),
                "standalone_time_s": round(alone.total_seconds, 2),
            })
        return rows

    # -- Tables 5 and 6: transformed-module test generation ----------------------

    def transformed_report(self, mut: MutInfo, mode: ExtractionMode,
                           use_piers: bool = True) -> AtpgReport:
        key = ("transformed", mut.name, mode.value, use_piers)
        if key not in self._atpg_cache:
            tr = self.transformed(mut, mode)
            pier_nets = (
                frozenset(pier_q_nets(tr.netlist, self.design, self.piers))
                if use_piers else frozenset()
            )
            opts = default_atpg_options(
                fault_region=mut.path,
                pier_qs=pier_nets,
            )
            self._atpg_cache[key] = AtpgEngine(tr.netlist, opts).run()
        return self._atpg_cache[key]

    def atpg_rows(self, mode: ExtractionMode,
                  jobs: Optional[int] = None) -> List[Dict[str, object]]:
        self.prefetch_reports(
            [("transformed", m.name, mode.value, True) for m in self.muts()],
            jobs=jobs,
        )
        rows = []
        for mut in self.muts():
            tr = self.transformed(mut, mode)
            report = self.transformed_report(mut, mode)
            total_time = (
                tr.extraction_seconds + tr.synthesis_seconds
                + report.total_seconds
            )
            rows.append({
                "module": mut.name,
                "fault_cov_%": round(report.coverage_percent, 2),
                "atpg_eff_%": round(report.efficiency_percent, 2),
                "test_gen_s": round(report.test_gen_seconds, 2),
                "total_s": round(total_time, 2),
                "faults": report.total_faults,
                "vectors": report.num_vectors,
            })
        return rows

    def table5_rows(self) -> List[Dict[str, object]]:
        return self.atpg_rows(ExtractionMode.CONVENTIONAL)

    def table6_rows(self) -> List[Dict[str, object]]:
        return self.atpg_rows(ExtractionMode.COMPOSE)

    # -- Section 4.2: testability analysis ----------------------------------------

    def testability_rows(self) -> List[Dict[str, object]]:
        rows = []
        for mut in self.muts():
            extraction = self.composers[ExtractionMode.COMPOSE].extract(
                MutSpec(module=mut.name, path=mut.path)
            )
            report = analyze_testability(self.design, extraction)
            rows.append({
                "module": mut.name,
                "input_ports": report.total_input_ports,
                "hard_coded_inputs": report.num_hard_coded,
                "empty_chain_warnings": sum(
                    1 for w in report.warnings
                    if w.kind in ("no_driver", "no_propagation")
                ),
                "selectors": ",".join(sorted({
                    s for hc in report.hard_coded_ports for s in hc.selectors
                })) or "-",
            })
        return rows

    # -- ablations -------------------------------------------------------------

    def ablation_reuse_rows(self) -> List[Dict[str, object]]:
        """Extraction with and without the cross-MUT task cache."""
        rows = []
        # Cold composer: fresh cache per MUT (no reuse).
        for label, shared in (("no_reuse", False), ("reuse", True)):
            composer = ConstraintComposer(self.design, ExtractionMode.COMPOSE)
            total = 0.0
            tasks = 0
            reused = 0
            for mut in self.muts():
                if not shared:
                    composer = ConstraintComposer(
                        self.design, ExtractionMode.COMPOSE
                    )
                result = composer.extractor.extract(
                    MutSpec(module=mut.name, path=mut.path)
                )
                total += result.extraction_seconds
                tasks += result.tasks_run
                reused += result.tasks_reused
            rows.append({
                "config": label,
                "total_extraction_s": round(total, 4),
                "tasks_run": tasks,
                "tasks_reused": reused,
            })
        return rows

    def ablation_pier_rows(self) -> List[Dict[str, object]]:
        """Transformed-module ATPG with PIERs enabled vs disabled."""
        rows = []
        mut = next(m for m in self.muts() if m.name == "regfile_struct")
        self.prefetch_reports([
            ("transformed", mut.name, ExtractionMode.COMPOSE.value, use)
            for use in (True, False)
        ])
        for label, use in (("piers_on", True), ("piers_off", False)):
            report = self.transformed_report(
                mut, ExtractionMode.COMPOSE, use_piers=use
            )
            rows.append({
                "config": label,
                "module": mut.name,
                "fault_cov_%": round(report.coverage_percent, 2),
                "atpg_eff_%": round(report.efficiency_percent, 2),
                "test_gen_s": round(report.test_gen_seconds, 2),
            })
        return rows

    def ablation_deadcode_rows(self) -> List[Dict[str, object]]:
        """Constraint synthesis with and without optimization (the paper
        leans on synthesis to delete redundant constraint logic)."""
        rows = []
        mut = self.muts()[0]
        spec = MutSpec(module=mut.name, path=mut.path)
        for label, do_opt in (("optimized", True), ("raw", False)):
            composer = ConstraintComposer(self.design, ExtractionMode.COMPOSE)
            tr = composer.transform(spec, do_optimize=do_opt)
            rows.append({
                "config": label,
                "module": mut.name,
                "total_gates": tr.netlist.gate_count(include_buffers=True),
                "dffs": len(tr.netlist.dffs()),
            })
        return rows


_SHARED: Optional[Arm2Experiments] = None


def get_experiments() -> Arm2Experiments:
    """Process-wide shared experiment state."""
    global _SHARED
    if _SHARED is None:
        _SHARED = Arm2Experiments()
    return _SHARED
