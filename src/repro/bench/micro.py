"""Microbenchmarks for the simulation backends: ``repro bench``.

Two differential benchmark suites, each timed with the observability CPU
clock and written as a ``BENCH_*.json`` payload next to the table output:

- **fault_sim** — the same (vectors, faults) workload through the
  interpreted reference simulator, the compiled/cone-partitioned
  backend and the arena lane-block backend.  The detected sets must be
  identical across all three; the row records CPU times and throughput
  ratios (``speedup_x`` interpreted/compiled, ``arena_x``
  compiled/arena).  With ``--jobs > 1`` an extra row partitions the
  fault list across a process pool and checks the union of the chunk
  detections against the serial run — when the pool helper declines to
  fork (too few cores, faults or gates) the row is labelled
  ``serial-fallback(j=N)`` and carries the exact reason, so a
  ``parallel`` label always means a real pool ran.
- **atpg** — one deterministic small ATPG configuration run with each
  backend; coverage, efficiency, detections and vector counts must be
  bit-identical (the backend may only change speed, never results).

Any differential mismatch makes :func:`run_bench` return a non-zero exit
status, so the CI smoke job doubles as an equivalence gate.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.engine import AtpgEngine, AtpgOptions
from repro.atpg.fault_sim import (FaultSimulator, available_cores,
                                  parallel_detected_faults,
                                  parallelize_decision)
from repro.atpg.faults import Fault, build_fault_list
from repro.bench.experiments import resolve_jobs
from repro.core.report import format_table
from repro.designs.arm2 import arm2_design
from repro.obs import RunRecord, atomic_write_text, get_logger, span
from repro.store import synthesize_cached
from repro.synth.netlist import Netlist

_LOG = get_logger("bench.micro")

# Benchmark netlists, built once per process (the pool workers re-use the
# warm cache under the default fork start method).
_NETLISTS: Dict[str, Netlist] = {}
_FAULTS: Dict[str, List[Fault]] = {}


def _bench_netlist(name: str) -> Netlist:
    if name not in _NETLISTS:
        if name == "arm2":
            _NETLISTS[name] = synthesize_cached(arm2_design())
        else:
            _NETLISTS[name] = synthesize_cached(arm2_design(),
                                                root=name, name=name)
    return _NETLISTS[name]


def _bench_faults(name: str) -> List[Fault]:
    if name not in _FAULTS:
        _FAULTS[name] = build_fault_list(_bench_netlist(name))
    return _FAULTS[name]


def random_vectors(netlist: Netlist, count: int,
                   seed: int) -> List[Dict[int, int]]:
    """Seeded fully-specified random input vectors."""
    rng = random.Random(seed)
    return [{pi: rng.randint(0, 1) for pi in netlist.pis}
            for _ in range(count)]


def _timed_detect(netlist: Netlist, backend: str,
                  vectors: Sequence[Dict[int, int]],
                  faults: Sequence[Fault],
                  repeats: int = 1) -> Tuple[Set[Fault], float]:
    """Detected set and best-of-``repeats`` CPU seconds for one backend.

    An untimed warmup over the full workload first populates the
    per-netlist caches (generated good-machine code, arena lane blocks,
    fanout adjacency), so the row reports steady-state throughput — the
    regime every ATPG run after the first operates in.
    """
    sim = FaultSimulator(netlist, backend=backend)
    sim.detected_faults(vectors, faults)
    best = None
    detected: Set[Fault] = set()
    for _ in range(max(1, repeats)):
        with span("bench.fault_sim", backend=backend,
                  design=netlist.name) as sp:
            detected = sim.detected_faults(vectors, faults)
        if best is None or sp.cpu_seconds < best:
            best = sp.cpu_seconds
    return detected, best or 0.0


def _kfvs(faults: int, vectors: int, seconds: float) -> float:
    """Throughput in thousands of fault-vector evaluations per second."""
    return faults * vectors / max(seconds, 1e-9) / 1000.0


def fault_sim_rows(quick: bool = False, seed: int = 2002,
                   jobs: Optional[int] = None) -> List[Dict[str, object]]:
    """Differential interpreted/compiled/arena fault simulation rows."""
    designs = ["arm_alu"] if quick else ["arm_alu", "arm2"]
    count = 8 if quick else 16
    jobs = resolve_jobs(jobs)
    rows: List[Dict[str, object]] = []
    for name in designs:
        netlist = _bench_netlist(name)
        faults = _bench_faults(name)
        vectors = random_vectors(netlist, count, seed)
        repeats = 1 if quick else 2
        interp, interp_s = _timed_detect(netlist, "interpreted",
                                         vectors, faults, repeats)
        compiled, compiled_s = _timed_detect(netlist, "compiled",
                                             vectors, faults, repeats)
        arena, arena_s = _timed_detect(netlist, "arena",
                                       vectors, faults, repeats)
        match = interp == compiled == arena
        if not match:
            _LOG.error("fault_sim.mismatch", design=name,
                       interpreted=len(interp), compiled=len(compiled),
                       arena=len(arena))
        rows.append({
            "design": name,
            "mode": "serial",
            "faults": len(faults),
            "vectors": count,
            "interp_s": round(interp_s, 3),
            "compiled_s": round(compiled_s, 3),
            "arena_s": round(arena_s, 3),
            "interp_kfv_s": round(_kfvs(len(faults), count, interp_s), 1),
            "compiled_kfv_s": round(_kfvs(len(faults), count, compiled_s), 1),
            "arena_kfv_s": round(_kfvs(len(faults), count, arena_s), 1),
            "speedup_x": round(interp_s / max(compiled_s, 1e-9), 2),
            "arena_x": round(compiled_s / max(arena_s, 1e-9), 2),
            "detected": len(arena),
            "match": match,
        })
        if jobs > 1:
            # The pool helper declines to fork when the host or workload
            # is too small (arm_alu used to bench at 0.61x with a forced
            # pool).  Label the row honestly: ``parallel(j=N)`` only when
            # a real pool runs, ``serial-fallback(j=N)`` plus the exact
            # reason otherwise.
            go, reason = parallelize_decision(jobs, len(faults),
                                              len(netlist.gates))
            with span("bench.fault_sim", backend="arena-parallel",
                      design=name, jobs=jobs) as sp:
                union = parallel_detected_faults(
                    netlist, vectors, faults, jobs=jobs,
                    backend="arena")
            par_match = union == arena
            if not par_match:
                _LOG.error("fault_sim.parallel_mismatch", design=name,
                           serial=len(arena), parallel=len(union))
            # Worker CPU time is invisible to the parent's CPU clock, so
            # the parallel row reports wall seconds (includes pool setup).
            par_s = sp.wall_seconds
            rows.append({
                "design": name,
                "mode": (f"parallel(j={jobs})" if go
                         else f"serial-fallback(j={jobs})"),
                "workers": jobs if go else 1,
                "fallback_reason": reason or "",
                "faults": len(faults),
                "vectors": count,
                "interp_s": round(interp_s, 3),
                "arena_par_s": round(par_s, 3),
                "interp_kfv_s": round(_kfvs(len(faults), count, interp_s), 1),
                "arena_par_kfv_s": round(
                    _kfvs(len(faults), count, par_s), 1),
                "speedup_x": round(interp_s / max(par_s, 1e-9), 2),
                "detected": len(union),
                "match": par_match,
            })
    return rows


#: The committed arm2 intra-run parallelism benchmark configuration.
#: ``fault_time_limit`` is set high so the backtrack limit always binds
#: first: backtrack-bounded search is exactly reproducible, which is what
#: lets the serial and parallel runs assert bit-identical classification
#: (a CPU-time bound can cut a borderline fault differently between any
#: two runs, serial ones included).
ARM2_PARALLEL_OPTS = dict(
    max_frames=2,
    frame_schedule=(1, 2),
    backtrack_limit=50,
    fault_time_limit=10.0,
    random_sequences=8,
    random_sequence_length=16,
    fault_sample=3000,
)


def atpg_parallel_rows(quick: bool = False, seed: int = 2002,
                       jobs: Optional[int] = None
                       ) -> List[Dict[str, object]]:
    """arm2 single-run ATPG, serial vs fault-parallel PODEM.

    The parallel run must reproduce the serial detected / untestable /
    aborted fault sets, coverage and vector count exactly — the speedup
    column is only meaningful because the ``match`` column proves both
    rows did identical work.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return []
    netlist = _bench_netlist("arm2")
    opts = dict(ARM2_PARALLEL_OPTS, seed=seed)
    if quick:
        opts.update(backtrack_limit=20, fault_sample=600,
                    random_sequences=4)
    cores = available_cores()
    runs: Dict[str, Tuple[AtpgEngine, float]] = {}
    rows: List[Dict[str, object]] = []
    for mode, n in (("serial", 1), (f"parallel(j={jobs})", jobs)):
        engine = AtpgEngine(netlist, AtpgOptions(jobs=n, **opts))
        # Force the fork pool past should_parallelize() for the parallel
        # leg: the row is a differential proof that the machinery
        # reproduces serial results bit-for-bit, and it must exercise the
        # real pool even on hosts (single-core CI boxes) where the engine
        # would sensibly decline.  The ``cores`` column tells readers when
        # the speedup number is meaningful (cores >= workers) and when it
        # merely measures timesharing overhead.
        forced = {"REPRO_PARALLEL_MIN_CORES": "1",
                  "REPRO_PARALLEL_MIN_FAULTS": "1",
                  "REPRO_PARALLEL_MIN_GATES": "1"} if n > 1 else {}
        saved = {k: os.environ.get(k) for k in forced}
        os.environ.update(forced)
        try:
            with span("bench.atpg_parallel", mode=mode,
                      design="arm2") as sp:
                report = engine.run()
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        # Worker CPU is invisible to the parent CPU clock: compare wall.
        runs[mode] = (engine, sp.wall_seconds)
        rows.append({
            "design": "arm2",
            "mode": mode,
            "workers": engine.parallel_workers or 1,
            "cores": cores,
            "faults": report.total_faults,
            "detected": report.detected,
            "untestable": report.untestable,
            "cov%": round(report.coverage_percent, 2),
            "vectors": report.num_vectors,
            "wall_s": round(sp.wall_seconds, 2),
        })
    serial_engine, serial_s = runs["serial"]
    par_engine, par_s = runs[f"parallel(j={jobs})"]
    match = (
        serial_engine.detected_faults == par_engine.detected_faults
        and serial_engine.untestable_faults == par_engine.untestable_faults
        and serial_engine.aborted_faults == par_engine.aborted_faults
        and serial_engine.tests == par_engine.tests
    )
    if not match:
        _LOG.error("atpg.parallel_mismatch",
                   serial=len(serial_engine.detected_faults),
                   parallel=len(par_engine.detected_faults))
    speedup = serial_s / max(par_s, 1e-9)
    for row in rows:
        row["match"] = match
        row["speedup_x"] = (round(speedup, 2)
                            if row["mode"] != "serial" else 1.0)
    return rows


def atpg_rows(quick: bool = False, seed: int = 2002,
              jobs: Optional[int] = None) -> List[Dict[str, object]]:
    """One small deterministic ATPG run per backend; results must match."""
    netlist = _bench_netlist("arm_alu")
    opts = dict(
        max_frames=2,
        frame_schedule=(1, 2),
        backtrack_limit=50,
        fault_time_limit=0.1,
        total_time_limit=120.0,
        random_sequences=2,
        random_sequence_length=8,
        seed=seed,
        fault_sample=40 if quick else None,
    )
    rows: List[Dict[str, object]] = []
    reports = {}
    for backend in ("interpreted", "compiled", "arena"):
        engine = AtpgEngine(netlist, AtpgOptions(
            fault_sim_backend=backend, **opts))
        with span("bench.atpg", backend=backend) as sp:
            report = engine.run()
        reports[backend] = report
        rows.append({
            "backend": backend,
            "faults": report.total_faults,
            "detected": report.detected,
            "cov%": round(report.coverage_percent, 2),
            "eff%": round(report.efficiency_percent, 2),
            "vectors": report.num_vectors,
            "cpu_s": round(sp.cpu_seconds, 3),
        })
    a = reports["interpreted"]
    match = all(
        a.coverage_percent == b.coverage_percent
        and a.efficiency_percent == b.efficiency_percent
        and a.detected == b.detected
        and a.num_vectors == b.num_vectors
        for b in (reports["compiled"], reports["arena"])
    )
    if not match:
        _LOG.error("atpg.backend_mismatch", rows=rows)
    for row in rows:
        row["match"] = match
    return rows


def warm_pipeline_rows(quick: bool = False,
                       seed: int = 2002) -> List[Dict[str, object]]:
    """Cold-vs-warm end-to-end pipeline run against a fresh artifact store.

    Runs the full CLI (``repro atpg`` on the bundled arm2, arm_alu MUT)
    twice in subprocesses sharing one freshly created ``REPRO_CACHE_DIR``.
    The first run is cold (every store stage misses and publishes); the
    second is warm (parse, extraction, synthesis, codegen and the final
    ATPG report all load from the store).  The reports must be
    byte-identical — the stored report carries the cold run's timing
    fields, so even ``tgen_s`` matches — and the row records the
    end-to-end wall-clock speedup.
    """
    from repro.designs import arm2_source

    frames, backtracks = ("1", "10") if quick else ("2", "50")
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    work = tempfile.mkdtemp(prefix="repro-warm-bench-")
    rows: List[Dict[str, object]] = []
    try:
        design_path = os.path.join(work, "arm2.v")
        atomic_write_text(design_path, arm2_source())
        cache_dir = os.path.join(work, "store")
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
        env.pop("REPRO_NO_CACHE", None)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
        outputs: Dict[str, str] = {}
        timings: Dict[str, float] = {}
        hits: Dict[str, int] = {}
        for mode in ("cold", "warm"):
            metrics_path = os.path.join(work, f"metrics-{mode}.json")
            cmd = [sys.executable, "-m", "repro", "atpg", design_path,
                   "--top", "arm", "--mut", "arm_alu",
                   "--frames", frames, "--backtrack-limit", backtracks,
                   "--seed", str(seed), "--metrics-out", metrics_path]
            with span("bench.warm_pipeline", mode=mode) as sp:
                proc = subprocess.run(cmd, env=env, capture_output=True,
                                      text=True)
            if proc.returncode != 0:
                _LOG.error("warm_pipeline.run_failed", mode=mode,
                           returncode=proc.returncode,
                           stderr=proc.stderr[-2000:])
            outputs[mode] = proc.stdout
            timings[mode] = sp.wall_seconds
            with open(metrics_path, encoding="utf-8") as handle:
                snapshot = json.load(handle)
            hits[mode] = sum(
                metric.get("value", 0)
                for name, metric in snapshot.items()
                if name.startswith("store.") and name.endswith(".hits"))
        match = outputs["cold"] == outputs["warm"] and bool(outputs["cold"])
        if not match:
            _LOG.error("warm_pipeline.report_mismatch")
        speedup = timings["cold"] / max(timings["warm"], 1e-9)
        for mode in ("cold", "warm"):
            rows.append({
                "mode": mode,
                "design": "arm2/arm_alu",
                "wall_s": round(timings[mode], 3),
                "store_hits": hits[mode],
                "speedup_x": round(speedup, 2) if mode == "warm" else 1.0,
                "match": match,
            })
    finally:
        shutil.rmtree(work, ignore_errors=True)
    return rows


def transient_sim_rows(quick: bool = False,
                       seed: int = 2002) -> List[Dict[str, object]]:
    """Differential SEU (transient bit-flip) fault simulation rows.

    The same seeded (vector sequence, transient fault sample) workload
    through the interpreted reference and the arena lane-block backend;
    the detected sets must be bit-identical.  The transient universe is
    sites x {0,1} x cycles, so the sample is drawn per design from the
    same seed both backends see.
    """
    from repro.atpg.faults import build_transient_fault_list

    designs = ["arm_alu"] if quick else ["arm_alu", "arm2"]
    cycles = 8 if quick else 16
    sample = 128 if quick else 512
    rows: List[Dict[str, object]] = []
    for name in designs:
        netlist = _bench_netlist(name)
        vectors = random_vectors(netlist, cycles, seed)
        faults = build_transient_fault_list(netlist, cycles,
                                            sample=sample, seed=seed)
        interp, interp_s = _timed_detect(netlist, "interpreted",
                                         vectors, faults)
        arena, arena_s = _timed_detect(netlist, "arena", vectors, faults)
        match = interp == arena
        if not match:
            _LOG.error("transient_sim.mismatch", design=name,
                       interpreted=len(interp), arena=len(arena))
        rows.append({
            "design": name,
            "faults": len(faults),
            "cycles": cycles,
            "interp_s": round(interp_s, 3),
            "arena_s": round(arena_s, 3),
            "interp_kfv_s": round(_kfvs(len(faults), cycles, interp_s), 1),
            "arena_kfv_s": round(_kfvs(len(faults), cycles, arena_s), 1),
            "speedup_x": round(interp_s / max(arena_s, 1e-9), 2),
            "detected": len(arena),
            "match": match,
        })
    return rows


def campaign_rows(quick: bool = False,
                  seed: int = 2002) -> List[Dict[str, object]]:
    """SEU differential rows plus one tiny local factorial campaign.

    The campaign row runs a 4-point, random-phase-only transient sweep
    on the bundled arm2 through :class:`CampaignRunner`'s local path
    (the serve worker entry point), so the bench covers spec -> design
    -> trials -> trial DB -> fitted report end to end.  ``match``
    asserts every trial succeeded and the report fitted every factor.
    """
    from repro.campaign import CampaignRunner, CampaignSpec

    rows = transient_sim_rows(quick=quick, seed=seed)
    spec = CampaignSpec.from_dict({
        "name": f"bench-campaign-{'quick' if quick else 'full'}",
        "design": "arm2",
        "mut": "arm_alu",
        "mode": "factorial",
        "seed": seed,
        "max_trials": 4,
        "base": {"frames": 1, "fault_model": "transient",
                 "backtrack_limit": 10},
        "factors": {
            "random_length": [4, 8] if quick else [8, 16],
            "transient_sample": [16, 32] if quick else [64, 128],
        },
    })
    with span("bench.campaign", campaign=spec.name) as sp:
        summary = CampaignRunner(spec, local=True).run()
    factorial = summary.get("factorial", {})
    report = summary.get("report", {})
    match = (factorial.get("failed", 1) == 0
             and report.get("trials", 0) == factorial.get("trials")
             and len(report.get("effects") or []) == len(spec.factors))
    if not match:
        _LOG.error("campaign.bench_mismatch", summary=summary)
    rows.append({
        "design": "arm2/arm_alu (campaign)",
        "faults": summary.get("trials", 0),
        "detected": factorial.get("trials", 0) - factorial.get("failed", 0),
        "wall_s": round(sp.wall_seconds, 3),
        "speedup_x": 1.0,
        "match": match,
    })
    return rows


#: Suites run by a bare ``repro bench``.  The serve and campaign suites
#: are opt-in (``--suite serve`` / ``--suite campaign`` / ``--suite
#: all``): serve boots a server subprocess with its own worker pool, and
#: campaign runs end-to-end pipeline trials — both too heavy for the
#: default smoke.
DEFAULT_SUITES = ("fault_sim", "atpg", "warm_pipeline")
ALL_SUITES = DEFAULT_SUITES + ("serve", "campaign")


def run_bench(out_dir: str = "benchmarks/results", quick: bool = False,
              jobs: Optional[int] = None, seed: int = 2002,
              suites: Optional[Sequence[str]] = None) -> int:
    """Run the selected suites, print tables, write ``BENCH_*.json``.

    Returns 0 when every differential check passed, 1 otherwise.
    """
    from repro.bench.serve import serve_rows

    jobs = resolve_jobs(jobs)
    scale = "quick" if quick else "full"
    os.makedirs(out_dir, exist_ok=True)
    status = 0
    selected = tuple(suites) if suites else DEFAULT_SUITES
    unknown = [name for name in selected if name not in ALL_SUITES]
    if unknown:
        raise ValueError(f"unknown bench suite(s): {', '.join(unknown)} "
                         f"(choose from {', '.join(ALL_SUITES)})")
    catalogue = {
        "fault_sim": (
            "Fault simulation: interpreted vs compiled vs arena backend",
            lambda: fault_sim_rows(quick=quick, seed=seed, jobs=jobs)),
        "atpg": (
            "ATPG backend equivalence (arm_alu) + "
            "serial-vs-parallel PODEM (arm2)",
            lambda: atpg_rows(quick=quick, seed=seed)
            + atpg_parallel_rows(quick=quick, seed=seed, jobs=jobs)),
        "warm_pipeline": (
            "Warm-start pipeline: cold vs warm artifact store",
            lambda: warm_pipeline_rows(quick=quick, seed=seed)),
        "serve": (
            "Job server: cold/warm/coalesced latency and throughput",
            lambda: serve_rows(quick=quick, seed=seed, jobs=jobs)),
        "campaign": (
            "SEU transient fault sim (interpreted vs arena) + "
            "local factorial campaign",
            lambda: campaign_rows(quick=quick, seed=seed)),
    }
    for key in selected:
        title, build = catalogue[key]
        rows = build()
        # Union of keys across rows (first-seen order): suites may mix row
        # shapes, e.g. the atpg suite's backend rows and parallel rows.
        columns = [col for col in dict.fromkeys(
            key for row in rows for key in row) if col != "record"]
        print(format_table(f"{title} [{scale}]", rows, columns=columns))
        if not all(row["match"] for row in rows):
            status = 1
        payload = {
            "title": title,
            "scale": scale,
            "seed": seed,
            "jobs": jobs,
            "rows": rows,
            "record": RunRecord.capture(f"bench.{key}").as_dict(),
        }
        path = os.path.join(out_dir, f"BENCH_{key}.json")
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    if status:
        print("DIFFERENTIAL MISMATCH: a backend disagrees with the "
              "interpreted reference (see rows with match=False)")
    return status
