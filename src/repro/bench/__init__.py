"""Benchmark harness: regenerates every table of the paper's evaluation.

``Arm2Experiments`` owns the shared state (parsed design, synthesized full
netlist, composers for both extraction modes) and exposes one method per
paper table; the ``benchmarks/`` pytest files are thin wrappers that time the
underlying operation and print the rows.
"""

from repro.bench.experiments import (
    Arm2Experiments,
    bench_scale,
    default_atpg_options,
    get_experiments,
    resolve_jobs,
)
from repro.bench.micro import run_bench

__all__ = ["Arm2Experiments", "bench_scale", "default_atpg_options",
           "get_experiments", "resolve_jobs", "run_bench"]
