"""Chip-level translation of transformed-module tests for the ARM-2 design.

The paper: "internal registers which can be accessed from the chip level
using the load/store instructions are identified [...]  The patterns
obtained are later translated back to the chip level."

For the ARM-2 substitute this module performs that translation concretely:

- a transformed-module test may pre-load PIER register-file cells
  (``u_core.u_dp.u_rb.u_rf.u_rN.r``); the translator synthesises a MOVI /
  SHL / OR instruction prologue that writes those 16-bit values through the
  normal write port,
- the test body frames already drive chip pins (``inst``, ``mem_rdata``,
  peripherals), so they are replayed as-is after the prologue,
- an ST-instruction epilogue stores the touched registers back to the data
  pins so fault effects captured in the register file become observable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.atpg.vectors import Test, TestSet

_RF_CELL_RE = re.compile(
    r"^u_core\.u_dp\.u_rb\.u_rf\.u_r(?P<idx>[0-7])\.r\[(?P<bit>\d+)\]$"
)

# Opcodes (see designs/arm2.py).
_OP_SHL = 0x5
_OP_OR = 0x3
_OP_MOVI = 0x7
_OP_ST = 0x9

# Scratch registers used by the prologue.  r6/r7 are reserved by convention
# for translated tests (the compiler-style "assembler temporaries").
_TMP = 6
_SHIFT_AMOUNT_REG = 7


def _movi(rd: int, imm8: int) -> int:
    return (_OP_MOVI << 12) | (rd << 9) | (imm8 & 0xFF)


def _shl(rd: int, ra: int, rb: int) -> int:
    return (_OP_SHL << 12) | (rd << 9) | (ra << 6) | (rb << 3)


def _or(rd: int, ra: int, rb: int) -> int:
    return (_OP_OR << 12) | (rd << 9) | (ra << 6) | (rb << 3)


def _st(rb: int) -> int:
    return (_OP_ST << 12) | (rb << 3)


@dataclass
class TranslatedTest:
    """A chip-level test: a reset cycle, then one instruction per frame."""

    prologue: List[int]        # register-load instructions
    body: List[Dict[str, int]]  # original pin assignments per frame
    epilogue: List[int]        # store instructions for observation
    loaded_registers: Dict[int, int] = field(default_factory=dict)
    untranslated_state: Dict[str, int] = field(default_factory=dict)


def load_register_program(index: int, value: int) -> List[int]:
    """Instruction sequence writing a full 16-bit value into r<index>."""
    hi = (value >> 8) & 0xFF
    lo = value & 0xFF
    if hi == 0:
        return [_movi(index, lo)]
    return [
        _movi(_SHIFT_AMOUNT_REG, 8),
        _movi(index, hi),
        _shl(index, index, _SHIFT_AMOUNT_REG),
        _movi(_TMP, lo),
        _or(index, index, _TMP),
    ]


def translate_test(test: Test) -> TranslatedTest:
    """Translate one transformed-module test to the chip level."""
    registers: Dict[int, List[Optional[int]]] = {}
    untranslated: Dict[str, int] = {}
    for name, bit in test.initial_state.items():
        match = _RF_CELL_RE.match(name)
        if match is None:
            untranslated[name] = bit
            continue
        idx = int(match.group("idx"))
        pos = int(match.group("bit"))
        registers.setdefault(idx, [None] * 16)[pos] = bit

    prologue: List[int] = []
    loaded: Dict[int, int] = {}
    for idx in sorted(registers):
        bits = registers[idx]
        value = sum((b or 0) << i for i, b in enumerate(bits))
        loaded[idx] = value
        prologue.extend(load_register_program(idx, value))

    epilogue = [_st(idx) for idx in sorted(loaded)]
    return TranslatedTest(
        prologue=prologue,
        body=[dict(vec) for vec in test.vectors],
        epilogue=epilogue,
        loaded_registers=loaded,
        untranslated_state=untranslated,
    )


def to_chip_vectors(translated: TranslatedTest,
                    pi_names: Sequence[str]) -> List[Dict[str, int]]:
    """Flatten a translated test into chip-level pin vectors.

    The first cycle asserts reset; prologue/epilogue instructions drive the
    ``inst`` pins with zeros elsewhere; body frames pass through verbatim
    (they already name chip pins).
    """
    inst_bits = [n for n in pi_names if n.startswith("inst[")]
    width = len(inst_bits)

    def inst_vector(word: int) -> Dict[str, int]:
        vec = {n: 0 for n in pi_names}
        for i in range(width):
            vec[f"inst[{i}]"] = (word >> i) & 1
        return vec

    vectors: List[Dict[str, int]] = []
    reset = {n: 0 for n in pi_names}
    reset["rst"] = 1
    vectors.append(reset)
    for word in translated.prologue:
        vectors.append(inst_vector(word))
    for frame in translated.body:
        vec = {n: 0 for n in pi_names}
        vec.update({k: v for k, v in frame.items() if k in vec})
        vec["rst"] = 0
        vectors.append(vec)
    for word in translated.epilogue:
        vectors.append(inst_vector(word))
    # One drain cycle so the last writeback/store lands.
    vectors.append({n: 0 for n in pi_names})
    return vectors


def translate_test_set(testset: TestSet,
                       chip_pi_names: Sequence[str]) -> TestSet:
    """Translate a whole transformed-module test set to chip level."""
    out = TestSet(testset.name + "@chip", chip_pi_names)
    for test in testset.tests:
        translated = translate_test(test)
        out.add(Test(
            vectors=to_chip_vectors(translated, chip_pi_names),
            initial_state={},
        ))
    return out
