"""Small benchmark circuits used across the test suite.

Each function returns Verilog source text in the supported subset, with a
known top module and well-understood behaviour so tests can assert exact
functional results.
"""

from __future__ import annotations

from typing import Dict


def adder_source(width: int = 4) -> str:
    return f"""
module adder(
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  input cin,
  output [{width - 1}:0] sum,
  output cout
);
  wire [{width}:0] full;
  assign full = a + b + cin;
  assign sum = full[{width - 1}:0];
  assign cout = full[{width}];
endmodule
"""


def counter_source(width: int = 4) -> str:
    return f"""
module counter(
  input clk,
  input rst,
  input en,
  output [{width - 1}:0] q,
  output wrap
);
  reg [{width - 1}:0] cnt;
  always @(posedge clk)
    if (rst)
      cnt <= {width}'d0;
    else if (en)
      cnt <= cnt + {width}'d1;
  assign q = cnt;
  assign wrap = &cnt;
endmodule
"""


def fsm_source() -> str:
    """Four-state handshake FSM (00 -> 01 -> 10 -> 11 -> 00)."""
    return """
module fsm(
  input clk,
  input rst,
  input go,
  output [1:0] state_out,
  output done
);
  reg [1:0] state;
  assign state_out = state;
  assign done = state == 2'b11;
  always @(posedge clk)
    if (rst)
      state <= 2'b00;
    else
      case (state)
        2'b00: if (go) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: state <= 2'b11;
        default: state <= 2'b00;
      endcase
endmodule
"""


def mux_tree_source() -> str:
    """Hierarchical 4:1 mux built from 2:1 mux submodules."""
    return """
module mux2(
  input a,
  input b,
  input sel,
  output y
);
  assign y = sel ? b : a;
endmodule

module mux4(
  input [3:0] d,
  input [1:0] sel,
  output y
);
  wire lo;
  wire hi;
  mux2 u_lo(.a(d[0]), .b(d[1]), .sel(sel[0]), .y(lo));
  mux2 u_hi(.a(d[2]), .b(d[3]), .sel(sel[0]), .y(hi));
  mux2 u_out(.a(lo), .b(hi), .sel(sel[1]), .y(y));
endmodule
"""


def parity_source(width: int = 8) -> str:
    return f"""
module parity(
  input [{width - 1}:0] d,
  output even,
  output odd
);
  assign odd = ^d;
  assign even = ~^d;
endmodule
"""


def shifter_source() -> str:
    return """
module shifter(
  input [7:0] d,
  input [2:0] amt,
  input dir,
  output [7:0] y
);
  assign y = dir ? (d >> amt) : (d << amt);
endmodule
"""


def small_designs() -> Dict[str, str]:
    """Name -> source for every small benchmark circuit."""
    return {
        "adder": adder_source(),
        "counter": counter_source(),
        "fsm": fsm_source(),
        "mux_tree": mux_tree_source(),
        "parity": parity_source(),
        "shifter": shifter_source(),
    }
