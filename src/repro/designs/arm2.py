"""ARM-2-like hierarchical processor benchmark.

The original evaluation used a Verilog ARM-2 class-project model that is not
publicly available, so this module provides a from-scratch 16-bit
ARM-flavoured processor with the structural properties the evaluation needs:

- the four modules under test of the paper's tables (``arm_alu``,
  ``regfile_struct``, ``exc``, ``forward``) embedded two or more hierarchy
  levels deep (``regfile_struct`` deepest, and the largest),
- an ALU whose 13 control inputs are mostly driven from a hard-coded decode
  table keyed by a single opcode field (the Section 4.2 testability story),
- a register file loadable from the instruction/data pins (MOVI/LD) and
  storable back out (ST) — i.e. genuine PIERs,
- enough sequential depth (pipeline + flags + exception state) that flat
  processor-level ATPG struggles.

Hierarchy::

    arm                               (top: bus glue, IRQ synchroniser)
      u_core : core                   (level 1)
        u_dec : decode                (level 2: the hard-coded control table)
        u_exc : exc                   (level 2: exception unit — MUT)
        u_dp  : datapath              (level 2: pipeline)
          u_alu : arm_alu             (level 3 — MUT)
          u_fwd : forward             (level 3 — MUT)
          u_rb  : regbank             (level 3: write-port arbitration)
            u_rf : regfile_struct     (level 4 — MUT, structural reg file)
              u_r0..u_r7 : reg16      (level 5)
      u_mac : mac32                   (level 1: MAC coprocessor, own pins)
      u_uart : uart                   (level 1: serial unit, own pins)
      u_crc : crc16                   (level 1: CRC engine, own pins)
      u_tmr : timer                   (level 1: raises IRQs into the core)
      u_dma : dma_gen                 (level 1: address generator, own pins)

The peripheral blocks are what make the surrounding logic of each MUT large:
only the timer intersects the core MUTs' functional cones (through the IRQ
line into ``exc``), so FACTOR's extraction legitimately discards the rest —
the mechanism behind the paper's surrounding-gate reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hierarchy.design import Design
from repro.store import parse_verilog_cached


@dataclass(frozen=True)
class MutInfo:
    """One module-under-test of the paper's evaluation."""

    name: str           # module name
    path: str           # hierarchical instance prefix inside `arm`
    level: int          # embedding depth (top = 0)


ARM2_MUTS: List[MutInfo] = [
    MutInfo(name="arm_alu", path="u_core.u_dp.u_alu.", level=3),
    MutInfo(name="regfile_struct", path="u_core.u_dp.u_rb.u_rf.", level=4),
    MutInfo(name="exc", path="u_core.u_exc.", level=2),
    MutInfo(name="forward", path="u_core.u_dp.u_fwd.", level=3),
]


_ARM2_VERILOG = r"""
// ---------------------------------------------------------------------------
// arm_alu: 16-bit ALU with 13 one-hot-ish control inputs.
// ---------------------------------------------------------------------------
module arm_alu(
  input [15:0] a,
  input [15:0] b,
  input op_add,
  input op_sub,
  input op_and,
  input op_or,
  input op_xor,
  input op_shl,
  input op_shr,
  input op_pass_b,
  input inv_a,
  input inv_b,
  input cin,
  input flag_en,
  input cmp_mode,
  output [15:0] y,
  output z,
  output n,
  output c,
  output v
);
  wire [15:0] ea;
  wire [15:0] eb;
  assign ea = inv_a ? ~a : a;
  assign eb = inv_b ? ~b : b;

  wire [16:0] addres;
  wire [16:0] subres;
  assign addres = {1'b0, ea} + {1'b0, eb} + cin;
  assign subres = {1'b0, ea} - {1'b0, eb};

  wire [15:0] shlres;
  wire [15:0] shrres;
  assign shlres = ea << eb[3:0];
  assign shrres = ea >> eb[3:0];

  reg [15:0] y_core;
  reg c_core;
  reg v_core;
  always @(*) begin
    y_core = 16'h0000;
    c_core = 1'b0;
    v_core = 1'b0;
    if (op_add) begin
      y_core = addres[15:0];
      c_core = addres[16];
      v_core = (ea[15] == eb[15]) && (y_core[15] != ea[15]);
    end else if (op_sub) begin
      y_core = subres[15:0];
      c_core = ~subres[16];
      v_core = (ea[15] != eb[15]) && (y_core[15] != ea[15]);
    end else if (op_and)
      y_core = ea & eb;
    else if (op_or)
      y_core = ea | eb;
    else if (op_xor)
      y_core = ea ^ eb;
    else if (op_shl)
      y_core = shlres;
    else if (op_shr)
      y_core = shrres;
    else if (op_pass_b)
      y_core = eb;
  end

  assign y = cmp_mode ? 16'h0000 : y_core;
  assign z = flag_en & ~(|y_core);
  assign n = flag_en & y_core[15];
  assign c = flag_en & c_core;
  assign v = flag_en & v_core;
endmodule

// ---------------------------------------------------------------------------
// reg16: one 16-bit register cell with write enable.
// ---------------------------------------------------------------------------
module reg16(
  input clk,
  input we,
  input [15:0] d,
  output [15:0] q
);
  reg [15:0] r;
  always @(posedge clk)
    if (we)
      r <= d;
  assign q = r;
endmodule

// ---------------------------------------------------------------------------
// regfile_struct: structural 8 x 16 register file (two read ports).
// ---------------------------------------------------------------------------
module regfile_struct(
  input clk,
  input we,
  input [2:0] waddr,
  input [15:0] wdata,
  input [2:0] raddr_a,
  input [2:0] raddr_b,
  output reg [15:0] rdata_a,
  output reg [15:0] rdata_b
);
  wire [7:0] wsel;
  assign wsel[0] = we & (waddr == 3'd0);
  assign wsel[1] = we & (waddr == 3'd1);
  assign wsel[2] = we & (waddr == 3'd2);
  assign wsel[3] = we & (waddr == 3'd3);
  assign wsel[4] = we & (waddr == 3'd4);
  assign wsel[5] = we & (waddr == 3'd5);
  assign wsel[6] = we & (waddr == 3'd6);
  assign wsel[7] = we & (waddr == 3'd7);

  wire [15:0] q0;
  wire [15:0] q1;
  wire [15:0] q2;
  wire [15:0] q3;
  wire [15:0] q4;
  wire [15:0] q5;
  wire [15:0] q6;
  wire [15:0] q7;

  reg16 u_r0(.clk(clk), .we(wsel[0]), .d(wdata), .q(q0));
  reg16 u_r1(.clk(clk), .we(wsel[1]), .d(wdata), .q(q1));
  reg16 u_r2(.clk(clk), .we(wsel[2]), .d(wdata), .q(q2));
  reg16 u_r3(.clk(clk), .we(wsel[3]), .d(wdata), .q(q3));
  reg16 u_r4(.clk(clk), .we(wsel[4]), .d(wdata), .q(q4));
  reg16 u_r5(.clk(clk), .we(wsel[5]), .d(wdata), .q(q5));
  reg16 u_r6(.clk(clk), .we(wsel[6]), .d(wdata), .q(q6));
  reg16 u_r7(.clk(clk), .we(wsel[7]), .d(wdata), .q(q7));

  always @(*)
    case (raddr_a)
      3'd0: rdata_a = q0;
      3'd1: rdata_a = q1;
      3'd2: rdata_a = q2;
      3'd3: rdata_a = q3;
      3'd4: rdata_a = q4;
      3'd5: rdata_a = q5;
      3'd6: rdata_a = q6;
      default: rdata_a = q7;
    endcase

  always @(*)
    case (raddr_b)
      3'd0: rdata_b = q0;
      3'd1: rdata_b = q1;
      3'd2: rdata_b = q2;
      3'd3: rdata_b = q3;
      3'd4: rdata_b = q4;
      3'd5: rdata_b = q5;
      3'd6: rdata_b = q6;
      default: rdata_b = q7;
    endcase
endmodule

// ---------------------------------------------------------------------------
// regbank: write-port arbitration around the register file.
// ---------------------------------------------------------------------------
module regbank(
  input clk,
  input rst,
  input wb_we,
  input [2:0] wb_idx,
  input [15:0] wb_alu_data,
  input [15:0] wb_mem_data,
  input wb_from_mem,
  input [2:0] raddr_a,
  input [2:0] raddr_b,
  input [7:0] prof_cfg,
  input prof_en,
  output [15:0] rdata_a,
  output [15:0] rdata_b,
  output par_err,
  output [15:0] mon_signature,
  output [15:0] mon_count,
  output mon_ovf
);
  wire [15:0] wdata;
  assign wdata = wb_from_mem ? wb_mem_data : wb_alu_data;

  regfile_struct u_rf(
    .clk(clk),
    .we(wb_we),
    .waddr(wb_idx),
    .wdata(wdata),
    .raddr_a(raddr_a),
    .raddr_b(raddr_b),
    .rdata_a(rdata_a),
    .rdata_b(rdata_b)
  );

  // Read-port parity monitor (debug visibility only).
  assign par_err = (^rdata_a) ^ (^rdata_b);

  rf_monitor u_mon(
    .clk(clk),
    .rst(rst),
    .rdata_a(rdata_a),
    .rdata_b(rdata_b),
    .prof_cfg(prof_cfg),
    .prof_en(prof_en),
    .signature(mon_signature),
    .prof_count(mon_count),
    .prof_ovf(mon_ovf)
  );
endmodule

// ---------------------------------------------------------------------------
// forward: writeback-to-execute forwarding unit.
// ---------------------------------------------------------------------------
module forward(
  input [2:0] ra,
  input [2:0] rb,
  input [2:0] wb_idx,
  input wb_we,
  input wb_valid,
  output fwd_a,
  output fwd_b
);
  wire hit_a;
  wire hit_b;
  assign hit_a = ra == wb_idx;
  assign hit_b = rb == wb_idx;
  assign fwd_a = wb_we & wb_valid & hit_a;
  assign fwd_b = wb_we & wb_valid & hit_b;
endmodule

// ---------------------------------------------------------------------------
// exc: exception unit (undefined instruction, SWI, IRQ) with mode/EPC state.
// ---------------------------------------------------------------------------
module exc(
  input clk,
  input rst,
  input undef,
  input swi,
  input irq,
  input rfe,
  input [7:0] pc,
  output exc_taken,
  output [7:0] exc_vector,
  output [7:0] epc_out,
  output mode_out,
  output [7:0] exc_count
);
  reg mode;
  reg irq_pend;
  reg [7:0] epc;
  reg [7:0] count;

  assign exc_taken = undef | swi | (irq_pend & ~mode);
  assign exc_vector = undef ? 8'h04 : (swi ? 8'h08 : 8'h0c);
  assign epc_out = epc;
  assign mode_out = mode;
  assign exc_count = count;

  always @(posedge clk)
    if (rst) begin
      mode <= 1'b0;
      irq_pend <= 1'b0;
      epc <= 8'h00;
      count <= 8'h00;
    end else begin
      irq_pend <= irq & ~mode;
      if (exc_taken) begin
        mode <= 1'b1;
        epc <= pc;
        count <= count + 8'h01;
      end else if (rfe)
        mode <= 1'b0;
    end
endmodule

// ---------------------------------------------------------------------------
// decode: instruction decoder.  The 13-bit ALU control vector is a hard-coded
// table keyed by the 4-bit opcode — ten of the thirteen ALU control inputs
// can only ever take the constant patterns below (the paper's Section 4.2
// testability bottleneck).
// ---------------------------------------------------------------------------
module decode(
  input [15:0] inst,
  input flag_z,
  output [3:0] opcode,
  output [2:0] rd,
  output [2:0] ra,
  output [2:0] rb,
  output [7:0] imm8,
  output [5:0] imm6,
  output reg [12:0] alu_ctrl,
  output reg wb_en,
  output reg wb_from_mem,
  output reg mem_re,
  output reg mem_we,
  output reg use_imm8,
  output reg use_imm6,
  output reg is_branch,
  output reg is_swi,
  output reg is_rfe,
  output reg is_undef,
  output branch_taken,
  output reg [2:0] dbg_class
);
  assign opcode = inst[15:12];
  assign rd = inst[11:9];
  assign ra = inst[8:6];
  assign rb = inst[5:3];
  assign imm8 = inst[7:0];
  assign imm6 = inst[5:0];
  assign branch_taken = is_branch & flag_z;

  // alu_ctrl bits: {cmp_mode, flag_en, cin, inv_b, inv_a, op_pass_b,
  //                 op_shr, op_shl, op_xor, op_or, op_and, op_sub, op_add}
  always @(*) begin
    alu_ctrl = 13'b0000000000000;
    wb_en = 1'b0;
    wb_from_mem = 1'b0;
    mem_re = 1'b0;
    mem_we = 1'b0;
    use_imm8 = 1'b0;
    use_imm6 = 1'b0;
    is_branch = 1'b0;
    is_swi = 1'b0;
    is_rfe = 1'b0;
    is_undef = 1'b0;
    case (opcode)
      4'h0: begin alu_ctrl = 13'b0100000000001; wb_en = 1'b1; end // ADD
      4'h1: begin alu_ctrl = 13'b0100000000010; wb_en = 1'b1; end // SUB
      4'h2: begin alu_ctrl = 13'b0000000000100; wb_en = 1'b1; end // AND
      4'h3: begin alu_ctrl = 13'b0000000001000; wb_en = 1'b1; end // OR
      4'h4: begin alu_ctrl = 13'b0000000010000; wb_en = 1'b1; end // XOR
      4'h5: begin alu_ctrl = 13'b0000000100000; wb_en = 1'b1; end // SHL
      4'h6: begin alu_ctrl = 13'b0000001000000; wb_en = 1'b1; end // SHR
      4'h7: begin // MOVI rd, imm8
        alu_ctrl = 13'b0000010000000;
        wb_en = 1'b1;
        use_imm8 = 1'b1;
      end
      4'h8: begin // LD rd, [ra + imm6]
        alu_ctrl = 13'b0000000000001;
        wb_en = 1'b1;
        wb_from_mem = 1'b1;
        mem_re = 1'b1;
        use_imm6 = 1'b1;
      end
      4'h9: begin // ST rb, [ra + imm6]
        alu_ctrl = 13'b0000000000001;
        mem_we = 1'b1;
        use_imm6 = 1'b1;
      end
      4'ha: is_branch = 1'b1;                                     // BEQ imm8
      4'hb: alu_ctrl = 13'b1100000000010;                         // CMP
      4'hc: is_swi = 1'b1;                                        // SWI
      4'hd: is_rfe = 1'b1;                                        // RFE
      default: is_undef = 1'b1;                                   // E/F
    endcase
  end

  // Instruction-class debug bus (trace visibility only).
  always @(*)
    casez (opcode)
      4'b00??: dbg_class = 3'd0;  // arithmetic / logic
      4'b010?: dbg_class = 3'd1;  // shifts
      4'b0110: dbg_class = 3'd1;
      4'b0111: dbg_class = 3'd2;  // immediate move
      4'b100?: dbg_class = 3'd3;  // memory
      4'b101?: dbg_class = 3'd4;  // branch / compare
      default: dbg_class = 3'd5;  // system
    endcase
endmodule

// ---------------------------------------------------------------------------
// datapath: program counter, pipeline registers, flags and operand muxing.
// ---------------------------------------------------------------------------
module datapath(
  input clk,
  input rst,
  input [15:0] mem_rdata,
  input [2:0] rd,
  input [2:0] ra,
  input [2:0] rb,
  input [7:0] imm8,
  input [5:0] imm6,
  input [12:0] alu_ctrl,
  input wb_en_d,
  input wb_from_mem_d,
  input use_imm8,
  input use_imm6,
  input branch_taken,
  input exc_taken,
  input [7:0] exc_vector,
  input [7:0] epc,
  input is_rfe,
  input stall,
  input [15:0] wp_lo,
  input [15:0] wp_hi,
  input [7:0] ext_event,
  input [2:0] ev_sel,
  input ev_en,
  input [7:0] prof_cfg,
  input prof_en,
  output [7:0] pc_out,
  output flag_z_out,
  output [15:0] mem_addr,
  output [15:0] mem_wdata,
  output [15:0] alu_result,
  output rf_par_err,
  output wp_match,
  output [15:0] trace_status,
  output [23:0] timestamp,
  output [15:0] mon_signature,
  output [15:0] mon_count,
  output mon_ovf
);
  reg [7:0] pc;
  reg [3:0] flags; // {v, c, n, z}

  // Writeback pipeline stage registers.
  reg wb_we;
  reg wb_from_mem;
  reg [2:0] wb_idx;
  reg [15:0] wb_alu_data;
  reg [15:0] wb_mem_data;

  wire [15:0] rf_a;
  wire [15:0] rf_b;
  wire fwd_a_sel;
  wire fwd_b_sel;

  regbank u_rb(
    .clk(clk),
    .rst(rst),
    .wb_we(wb_we),
    .wb_idx(wb_idx),
    .wb_alu_data(wb_alu_data),
    .wb_mem_data(wb_mem_data),
    .wb_from_mem(wb_from_mem),
    .raddr_a(ra),
    .raddr_b(rb),
    .rdata_a(rf_a),
    .rdata_b(rf_b),
    .par_err(rf_par_err),
    .prof_cfg(prof_cfg),
    .prof_en(prof_en),
    .mon_signature(mon_signature),
    .mon_count(mon_count),
    .mon_ovf(mon_ovf)
  );

  trace_unit u_trace(
    .clk(clk),
    .rst(rst),
    .value(alu_y),
    .wp_lo(wp_lo),
    .wp_hi(wp_hi),
    .ext_event(ext_event),
    .ev_sel(ev_sel),
    .ev_en(ev_en),
    .wp_match(wp_match),
    .trace_status(trace_status),
    .timestamp(timestamp)
  );

  forward u_fwd(
    .ra(ra),
    .rb(rb),
    .wb_idx(wb_idx),
    .wb_we(wb_we),
    .wb_valid(1'b1),
    .fwd_a(fwd_a_sel),
    .fwd_b(fwd_b_sel)
  );

  wire [15:0] wb_value;
  assign wb_value = wb_from_mem ? wb_mem_data : wb_alu_data;

  wire [15:0] op_a;
  assign op_a = fwd_a_sel ? wb_value : rf_a;

  wire [15:0] rb_fwd;
  assign rb_fwd = fwd_b_sel ? wb_value : rf_b;

  wire [15:0] op_b;
  assign op_b = use_imm8 ? {8'h00, imm8}
              : (use_imm6 ? {10'b0000000000, imm6} : rb_fwd);

  wire [15:0] alu_y;
  wire alu_z;
  wire alu_n;
  wire alu_c;
  wire alu_v;

  arm_alu u_alu(
    .a(op_a),
    .b(op_b),
    .op_add(alu_ctrl[0]),
    .op_sub(alu_ctrl[1]),
    .op_and(alu_ctrl[2]),
    .op_or(alu_ctrl[3]),
    .op_xor(alu_ctrl[4]),
    .op_shl(alu_ctrl[5]),
    .op_shr(alu_ctrl[6]),
    .op_pass_b(alu_ctrl[7]),
    .inv_a(alu_ctrl[8]),
    .inv_b(alu_ctrl[9]),
    .cin(alu_ctrl[10]),
    .flag_en(alu_ctrl[11]),
    .cmp_mode(alu_ctrl[12]),
    .y(alu_y),
    .z(alu_z),
    .n(alu_n),
    .c(alu_c),
    .v(alu_v)
  );

  assign alu_result = alu_y;
  assign mem_addr = alu_y;
  assign mem_wdata = rb_fwd;
  assign pc_out = pc;
  assign flag_z_out = flags[0];

  always @(posedge clk)
    if (rst) begin
      pc <= 8'h00;
      flags <= 4'b0000;
      wb_we <= 1'b0;
      wb_from_mem <= 1'b0;
      wb_idx <= 3'd0;
      wb_alu_data <= 16'h0000;
      wb_mem_data <= 16'h0000;
    end else begin
      if (exc_taken)
        pc <= exc_vector;
      else if (is_rfe)
        pc <= epc;
      else if (branch_taken)
        pc <= imm8;
      else if (!stall)
        pc <= pc + 8'h01;

      if (alu_ctrl[11])
        flags <= {alu_v, alu_c, alu_n, alu_z};

      wb_we <= wb_en_d;
      wb_from_mem <= wb_from_mem_d;
      wb_idx <= rd;
      wb_alu_data <= alu_y;
      wb_mem_data <= mem_rdata;
    end
endmodule

// ---------------------------------------------------------------------------
// core: decoder + datapath + exception unit.
// ---------------------------------------------------------------------------
module core(
  input clk,
  input rst,
  input [15:0] inst,
  input [15:0] mem_rdata,
  input irq,
  output [7:0] pc,
  output [15:0] mem_addr,
  output [15:0] mem_wdata,
  output mem_we,
  output mem_re,
  output mode,
  output [15:0] alu_result,
  input [15:0] wp_lo,
  input [15:0] wp_hi,
  input [7:0] ext_event,
  input [2:0] ev_sel,
  input ev_en,
  input [7:0] prof_cfg,
  input prof_en,
  output [2:0] dbg_class,
  output [7:0] exc_count,
  output rf_par_err,
  output wp_match,
  output [15:0] trace_status,
  output [23:0] timestamp,
  output [15:0] mon_signature,
  output [15:0] mon_count,
  output mon_ovf
);
  wire [2:0] rd;
  wire [2:0] ra;
  wire [2:0] rb;
  wire [7:0] imm8;
  wire [5:0] imm6;
  wire [12:0] alu_ctrl;
  wire wb_en;
  wire wb_from_mem;
  wire mem_re_w;
  wire mem_we_w;
  wire use_imm8;
  wire use_imm6;
  wire is_swi;
  wire is_rfe;
  wire is_undef;
  wire branch_taken;
  wire flag_z;
  wire exc_taken;
  wire [7:0] exc_vector;
  wire [7:0] epc;

  decode u_dec(
    .inst(inst),
    .flag_z(flag_z),
    .opcode(),
    .rd(rd),
    .ra(ra),
    .rb(rb),
    .imm8(imm8),
    .imm6(imm6),
    .alu_ctrl(alu_ctrl),
    .wb_en(wb_en),
    .wb_from_mem(wb_from_mem),
    .mem_re(mem_re_w),
    .mem_we(mem_we_w),
    .use_imm8(use_imm8),
    .use_imm6(use_imm6),
    .is_branch(),
    .is_swi(is_swi),
    .is_rfe(is_rfe),
    .is_undef(is_undef),
    .branch_taken(branch_taken),
    .dbg_class(dbg_class)
  );

  exc u_exc(
    .clk(clk),
    .rst(rst),
    .undef(is_undef),
    .swi(is_swi),
    .irq(irq),
    .rfe(is_rfe),
    .pc(pc),
    .exc_taken(exc_taken),
    .exc_vector(exc_vector),
    .epc_out(epc),
    .mode_out(mode),
    .exc_count(exc_count)
  );

  datapath u_dp(
    .clk(clk),
    .rst(rst),
    .mem_rdata(mem_rdata),
    .rd(rd),
    .ra(ra),
    .rb(rb),
    .imm8(imm8),
    .imm6(imm6),
    .alu_ctrl(alu_ctrl),
    .wb_en_d(wb_en),
    .wb_from_mem_d(wb_from_mem),
    .use_imm8(use_imm8),
    .use_imm6(use_imm6),
    .branch_taken(branch_taken),
    .exc_taken(exc_taken),
    .exc_vector(exc_vector),
    .epc(epc),
    .is_rfe(is_rfe),
    .stall(1'b0),
    .pc_out(pc),
    .flag_z_out(flag_z),
    .mem_addr(mem_addr),
    .mem_wdata(mem_wdata),
    .alu_result(alu_result),
    .rf_par_err(rf_par_err),
    .wp_lo(wp_lo),
    .wp_hi(wp_hi),
    .ext_event(ext_event),
    .ev_sel(ev_sel),
    .ev_en(ev_en),
    .prof_cfg(prof_cfg),
    .prof_en(prof_en),
    .wp_match(wp_match),
    .trace_status(trace_status),
    .timestamp(timestamp),
    .mon_signature(mon_signature),
    .mon_count(mon_count),
    .mon_ovf(mon_ovf)
  );

  assign mem_we = mem_we_w;
  assign mem_re = mem_re_w;
endmodule


// ---------------------------------------------------------------------------
// trace_unit: watchpoint comparator (thin) plus an event-counting trace
// engine on dedicated pins (fat).  Only the watchpoint slice is functionally
// visible to the ALU; hierarchical extraction prunes the rest.
// ---------------------------------------------------------------------------
module trace_unit(
  input clk,
  input rst,
  input [15:0] value,
  input [15:0] wp_lo,
  input [15:0] wp_hi,
  input [7:0] ext_event,
  input [2:0] ev_sel,
  input ev_en,
  output wp_match,
  output [15:0] trace_status,
  output [23:0] timestamp
);
  // Thin slice: range watchpoint on the observed value.
  wire ge_lo;
  wire le_hi;
  assign ge_lo = ~(value < wp_lo);
  assign le_hi = ~(wp_hi < value);
  assign wp_match = ge_lo & le_hi;

  // Fat remainder: event filter, four counters and a timestamp generator,
  // all driven from dedicated pins.
  reg [23:0] ts;
  reg [15:0] cnt0;
  reg [15:0] cnt1;
  reg [15:0] cnt2;
  reg [15:0] cnt3;
  wire ev_bit;
  wire [7:0] masked;
  assign masked = ext_event & {8{ev_en}};
  assign ev_bit = masked[ev_sel];

  always @(posedge clk)
    if (rst) begin
      ts <= 24'd0;
      cnt0 <= 16'd0;
      cnt1 <= 16'd0;
      cnt2 <= 16'd0;
      cnt3 <= 16'd0;
    end else begin
      ts <= ts + 24'd1;
      if (ev_bit & ~ev_sel[1])
        cnt0 <= cnt0 + 16'd1;
      if (ev_bit & ev_sel[0])
        cnt1 <= cnt1 + 16'd1;
      if ((&masked[3:0]) | ev_bit)
        cnt2 <= cnt2 + 16'd1;
      if (^masked)
        cnt3 <= cnt3 + 16'd1;
    end

  assign trace_status = cnt0 ^ cnt1 ^ (cnt2 & cnt3);
  assign timestamp = ts;
endmodule

// ---------------------------------------------------------------------------
// rf_monitor: read-port signature compactor (thin) plus a programmable
// access profiler on dedicated pins (fat), sitting next to the register
// file inside the regbank.
// ---------------------------------------------------------------------------
module rf_monitor(
  input clk,
  input rst,
  input [15:0] rdata_a,
  input [15:0] rdata_b,
  input [7:0] prof_cfg,
  input prof_en,
  output [15:0] signature,
  output [15:0] prof_count,
  output prof_ovf
);
  // Thin slice: MISR-style signature over the read ports.
  reg [15:0] sig;
  wire [15:0] sig_next;
  assign sig_next = {sig[14:0], sig[15] ^ sig[12] ^ sig[3]}
                    ^ rdata_a ^ {rdata_b[7:0], rdata_b[15:8]};
  always @(posedge clk)
    if (rst)
      sig <= 16'hace1;
    else
      sig <= sig_next;
  assign signature = sig;

  // Fat remainder: windowed profiler with prescaler and overflow flag,
  // entirely on dedicated configuration pins.
  reg [15:0] window;
  reg [15:0] hits;
  reg [7:0] div;
  reg ovf;
  always @(posedge clk)
    if (rst) begin
      window <= 16'd0;
      hits <= 16'd0;
      div <= 8'd0;
      ovf <= 1'b0;
    end else if (prof_en) begin
      if (div == prof_cfg) begin
        div <= 8'd0;
        window <= window + 16'd1;
        if (window[3:0] == {prof_cfg[3:2], prof_cfg[1:0]})
          hits <= hits + 16'd1;
        if (&hits)
          ovf <= 1'b1;
      end else
        div <= div + 8'd1;
    end
  assign prof_count = hits;
  assign prof_ovf = ovf;
endmodule

// ---------------------------------------------------------------------------
// mac32: multiply-accumulate coprocessor on dedicated pins.
// ---------------------------------------------------------------------------
module mac32(
  input clk,
  input rst,
  input [31:0] cp_a,
  input [31:0] cp_b,
  input [1:0] cp_op,
  input cp_en,
  output [31:0] cp_result,
  output cp_ovf,
  output cp_zero
);
  reg [31:0] acc;
  wire [31:0] prod;
  assign prod = cp_a * cp_b;

  wire [32:0] sum;
  assign sum = {1'b0, acc} + {1'b0, prod};

  always @(posedge clk)
    if (rst)
      acc <= 32'h00000000;
    else if (cp_en)
      case (cp_op)
        2'd1: acc <= prod;
        2'd2: acc <= sum[31:0];
        2'd3: acc <= 32'h00000000;
        default: acc <= acc;
      endcase

  assign cp_result = acc;
  assign cp_ovf = sum[32];
  assign cp_zero = ~(|acc);
endmodule

// ---------------------------------------------------------------------------
// uart: 8N1 transmitter and receiver on dedicated pins.
// ---------------------------------------------------------------------------
module uart(
  input clk,
  input rst,
  input [7:0] baud_div,
  input rx,
  input [7:0] tx_data,
  input tx_start,
  output tx,
  output tx_busy,
  output [7:0] rx_data,
  output rx_valid
);
  // Transmitter: 10-bit frame shifted out at the programmed rate.
  reg [9:0] tx_shift;
  reg [3:0] tx_count;
  reg [7:0] tx_baud;
  always @(posedge clk)
    if (rst) begin
      tx_shift <= 10'b1111111111;
      tx_count <= 4'd0;
      tx_baud <= 8'd0;
    end else if (tx_count == 4'd0) begin
      if (tx_start) begin
        tx_shift <= {1'b1, tx_data, 1'b0};
        tx_count <= 4'd10;
        tx_baud <= baud_div;
      end
    end else if (tx_baud == 8'd0) begin
      tx_shift <= {1'b1, tx_shift[9:1]};
      tx_count <= tx_count - 4'd1;
      tx_baud <= baud_div;
    end else
      tx_baud <= tx_baud - 8'd1;

  assign tx = tx_shift[0];
  assign tx_busy = |tx_count;

  // Receiver: start-bit detect, mid-bit sample, 8 data bits.
  reg [1:0] rx_sync;
  reg [3:0] rx_count;
  reg [7:0] rx_baud;
  reg [7:0] rx_shift;
  reg [7:0] rx_hold;
  reg rx_done;
  always @(posedge clk)
    if (rst) begin
      rx_sync <= 2'b11;
      rx_count <= 4'd0;
      rx_baud <= 8'd0;
      rx_shift <= 8'h00;
      rx_hold <= 8'h00;
      rx_done <= 1'b0;
    end else begin
      rx_sync <= {rx_sync[0], rx};
      rx_done <= 1'b0;
      if (rx_count == 4'd0) begin
        if (!rx_sync[1]) begin
          rx_count <= 4'd9;
          rx_baud <= {1'b0, baud_div[7:1]};
        end
      end else if (rx_baud == 8'd0) begin
        rx_baud <= baud_div;
        rx_count <= rx_count - 4'd1;
        if (rx_count == 4'd1) begin
          rx_hold <= rx_shift;
          rx_done <= 1'b1;
        end else
          rx_shift <= {rx_sync[1], rx_shift[7:1]};
      end else
        rx_baud <= rx_baud - 8'd1;
    end

  assign rx_data = rx_hold;
  assign rx_valid = rx_done;
endmodule

// ---------------------------------------------------------------------------
// crc16: byte-wide CRC-16/CCITT engine on dedicated pins.
// ---------------------------------------------------------------------------
module crc16(
  input clk,
  input rst,
  input [7:0] data_in,
  input data_en,
  input crc_clear,
  output [15:0] crc,
  output crc_ok
);
  reg [15:0] r;
  reg [15:0] nxt;
  reg [7:0] d;
  integer i;

  always @(*) begin
    nxt = r;
    d = data_in;
    for (i = 0; i < 8; i = i + 1) begin
      if (nxt[15] ^ d[7])
        nxt = {nxt[14:0], 1'b0} ^ 16'h1021;
      else
        nxt = {nxt[14:0], 1'b0};
      d = {d[6:0], 1'b0};
    end
  end

  always @(posedge clk)
    if (rst)
      r <= 16'hffff;
    else if (crc_clear)
      r <= 16'hffff;
    else if (data_en)
      r <= nxt;

  assign crc = r;
  assign crc_ok = r == 16'h0000;
endmodule

// ---------------------------------------------------------------------------
// timer: prescaled 16-bit timer raising IRQs into the core.
// ---------------------------------------------------------------------------
module timer(
  input clk,
  input rst,
  input [7:0] prescale,
  input [15:0] compare,
  input enable,
  input clear,
  output irq,
  output [15:0] count_out
);
  reg [7:0] pre;
  reg [15:0] count;
  reg hit;

  always @(posedge clk)
    if (rst) begin
      pre <= 8'd0;
      count <= 16'd0;
      hit <= 1'b0;
    end else if (clear) begin
      pre <= 8'd0;
      count <= 16'd0;
      hit <= 1'b0;
    end else if (enable) begin
      if (pre == prescale) begin
        pre <= 8'd0;
        count <= count + 16'd1;
        hit <= (count + 16'd1) == compare;
      end else begin
        pre <= pre + 8'd1;
        hit <= 1'b0;
      end
    end else
      hit <= 1'b0;

  assign irq = hit;
  assign count_out = count;
endmodule

// ---------------------------------------------------------------------------
// dma_gen: descriptor-driven address generator on dedicated pins.
// ---------------------------------------------------------------------------
module dma_gen(
  input clk,
  input rst,
  input [15:0] base,
  input [7:0] len,
  input [1:0] stride,
  input start,
  output [15:0] addr,
  output active,
  output done
);
  reg [15:0] cur;
  reg [7:0] remaining;
  reg running;
  reg finished;

  wire [15:0] step;
  assign step = stride == 2'd0 ? 16'd1
              : (stride == 2'd1 ? 16'd2
              : (stride == 2'd2 ? 16'd4 : 16'd8));

  always @(posedge clk)
    if (rst) begin
      cur <= 16'd0;
      remaining <= 8'd0;
      running <= 1'b0;
      finished <= 1'b0;
    end else if (!running) begin
      finished <= 1'b0;
      if (start) begin
        cur <= base;
        remaining <= len;
        running <= 1'b1;
      end
    end else if (remaining == 8'd0) begin
      running <= 1'b0;
      finished <= 1'b1;
    end else begin
      cur <= cur + step;
      remaining <= remaining - 8'd1;
    end

  assign addr = cur;
  assign active = running;
  assign done = finished;
endmodule


// ---------------------------------------------------------------------------
// pwm: eight-channel pulse-width modulator on dedicated pins.
// ---------------------------------------------------------------------------
module pwm(
  input clk,
  input rst,
  input [7:0] duty0,
  input [7:0] duty1,
  input [7:0] duty2,
  input [7:0] duty3,
  input pwm_en,
  output [3:0] pwm_out,
  output [7:0] phase
);
  reg [7:0] counter;
  always @(posedge clk)
    if (rst)
      counter <= 8'd0;
    else if (pwm_en)
      counter <= counter + 8'd1;

  assign pwm_out[0] = pwm_en & (counter < duty0);
  assign pwm_out[1] = pwm_en & (counter < duty1);
  assign pwm_out[2] = pwm_en & (counter < duty2);
  assign pwm_out[3] = pwm_en & (counter < duty3);
  assign phase = counter;
endmodule

// ---------------------------------------------------------------------------
// gpio: input synchroniser with edge detection and output latch.
// ---------------------------------------------------------------------------
module gpio(
  input clk,
  input rst,
  input [7:0] gpio_in,
  input [7:0] gpio_set,
  input [7:0] gpio_clr,
  output [7:0] gpio_out,
  output [7:0] rise_seen,
  output [7:0] fall_seen
);
  reg [7:0] sync0;
  reg [7:0] sync1;
  reg [7:0] rise;
  reg [7:0] fall;
  reg [7:0] out;

  always @(posedge clk)
    if (rst) begin
      sync0 <= 8'h00;
      sync1 <= 8'h00;
      rise <= 8'h00;
      fall <= 8'h00;
      out <= 8'h00;
    end else begin
      sync0 <= gpio_in;
      sync1 <= sync0;
      rise <= rise | (sync0 & ~sync1);
      fall <= fall | (~sync0 & sync1);
      out <= (out | gpio_set) & ~gpio_clr;
    end

  assign gpio_out = out;
  assign rise_seen = rise;
  assign fall_seen = fall;
endmodule

// ---------------------------------------------------------------------------
// arm: top level — core, peripherals, bus glue and an IRQ synchroniser.
// ---------------------------------------------------------------------------
module arm(
  input clk,
  input rst,
  input [15:0] inst,
  input [15:0] mem_rdata,
  input irq_pin,
  input [31:0] cp_a,
  input [31:0] cp_b,
  input [1:0] cp_op,
  input cp_en,
  input [7:0] baud_div,
  input uart_rx,
  input [7:0] uart_tx_data,
  input uart_tx_start,
  input [7:0] crc_data,
  input crc_en,
  input crc_clear,
  input [7:0] tmr_prescale,
  input [15:0] tmr_compare,
  input tmr_enable,
  input tmr_clear,
  input [15:0] dma_base,
  input [7:0] dma_len,
  input [1:0] dma_stride,
  input dma_start,
  input [7:0] duty0,
  input [7:0] duty1,
  input [7:0] duty2,
  input [7:0] duty3,
  input pwm_en,
  input [7:0] gpio_in,
  input [7:0] gpio_set,
  input [7:0] gpio_clr,
  input [15:0] wp_lo,
  input [15:0] wp_hi,
  input [7:0] ext_event,
  input [2:0] ev_sel,
  input ev_en,
  input [7:0] prof_cfg,
  input prof_en,
  output [7:0] inst_addr,
  output [15:0] mem_addr,
  output [15:0] mem_wdata,
  output mem_we,
  output mem_re,
  output supervisor,
  output [15:0] result_bus,
  output [2:0] dbg_class,
  output [7:0] exc_count,
  output rf_par_err,
  output [31:0] cp_result,
  output cp_ovf,
  output cp_zero,
  output uart_tx,
  output uart_tx_busy,
  output [7:0] uart_rx_data,
  output uart_rx_valid,
  output [15:0] crc_value,
  output crc_ok,
  output [15:0] tmr_count,
  output [15:0] dma_addr,
  output dma_active,
  output dma_done,
  output [3:0] pwm_out,
  output [7:0] pwm_phase,
  output [7:0] gpio_out,
  output [7:0] gpio_rise,
  output [7:0] gpio_fall,
  output wp_match,
  output [15:0] trace_status,
  output [23:0] timestamp,
  output [15:0] mon_signature,
  output [15:0] mon_count,
  output mon_ovf
);
  reg irq_sync;
  reg irq_meta;
  wire tmr_irq;
  always @(posedge clk)
    if (rst) begin
      irq_meta <= 1'b0;
      irq_sync <= 1'b0;
    end else begin
      irq_meta <= irq_pin;
      irq_sync <= irq_meta;
    end

  wire core_irq;
  assign core_irq = irq_sync | tmr_irq;

  wire [7:0] pc;
  wire mode;
  wire [15:0] alu_result;

  core u_core(
    .clk(clk),
    .rst(rst),
    .inst(inst),
    .mem_rdata(mem_rdata),
    .irq(core_irq),
    .pc(pc),
    .mem_addr(mem_addr),
    .mem_wdata(mem_wdata),
    .mem_we(mem_we),
    .mem_re(mem_re),
    .mode(mode),
    .alu_result(alu_result),
    .dbg_class(dbg_class),
    .exc_count(exc_count),
    .rf_par_err(rf_par_err),
    .wp_lo(wp_lo),
    .wp_hi(wp_hi),
    .ext_event(ext_event),
    .ev_sel(ev_sel),
    .ev_en(ev_en),
    .prof_cfg(prof_cfg),
    .prof_en(prof_en),
    .wp_match(wp_match),
    .trace_status(trace_status),
    .timestamp(timestamp),
    .mon_signature(mon_signature),
    .mon_count(mon_count),
    .mon_ovf(mon_ovf)
  );

  mac32 u_mac(
    .clk(clk),
    .rst(rst),
    .cp_a(cp_a),
    .cp_b(cp_b),
    .cp_op(cp_op),
    .cp_en(cp_en),
    .cp_result(cp_result),
    .cp_ovf(cp_ovf),
    .cp_zero(cp_zero)
  );

  uart u_uart(
    .clk(clk),
    .rst(rst),
    .baud_div(baud_div),
    .rx(uart_rx),
    .tx_data(uart_tx_data),
    .tx_start(uart_tx_start),
    .tx(uart_tx),
    .tx_busy(uart_tx_busy),
    .rx_data(uart_rx_data),
    .rx_valid(uart_rx_valid)
  );

  crc16 u_crc(
    .clk(clk),
    .rst(rst),
    .data_in(crc_data),
    .data_en(crc_en),
    .crc_clear(crc_clear),
    .crc(crc_value),
    .crc_ok(crc_ok)
  );

  timer u_tmr(
    .clk(clk),
    .rst(rst),
    .prescale(tmr_prescale),
    .compare(tmr_compare),
    .enable(tmr_enable),
    .clear(tmr_clear),
    .irq(tmr_irq),
    .count_out(tmr_count)
  );

  dma_gen u_dma(
    .clk(clk),
    .rst(rst),
    .base(dma_base),
    .len(dma_len),
    .stride(dma_stride),
    .start(dma_start),
    .addr(dma_addr),
    .active(dma_active),
    .done(dma_done)
  );

  pwm u_pwm(
    .clk(clk),
    .rst(rst),
    .duty0(duty0),
    .duty1(duty1),
    .duty2(duty2),
    .duty3(duty3),
    .pwm_en(pwm_en),
    .pwm_out(pwm_out),
    .phase(pwm_phase)
  );

  gpio u_gpio(
    .clk(clk),
    .rst(rst),
    .gpio_in(gpio_in),
    .gpio_set(gpio_set),
    .gpio_clr(gpio_clr),
    .gpio_out(gpio_out),
    .rise_seen(gpio_rise),
    .fall_seen(gpio_fall)
  );

  assign inst_addr = pc;
  assign supervisor = mode;
  assign result_bus = alu_result;
endmodule
"""


def arm2_source() -> str:
    """The Verilog source text of the ARM-2-like benchmark."""
    return _ARM2_VERILOG


def arm2_design() -> Design:
    """Parse the benchmark into a :class:`~repro.hierarchy.Design`."""
    return Design(parse_verilog_cached(_ARM2_VERILOG), top="arm")


def mut_by_name(name: str) -> MutInfo:
    for mut in ARM2_MUTS:
        if mut.name == name:
            return mut
    raise KeyError(f"unknown MUT {name!r}")
