"""A second hierarchical benchmark: a small DSP filter SoC.

Demonstrates that the FACTOR flow is not specific to the ARM-2 substitute.
The chip is a 4-tap FIR filter pipeline with a coefficient bank programmed
over a simple register-write bus, an output limiter, and an independent
tone-detector peripheral:

    filterchip                       (top: bus decode, peripherals)
      u_dsp : dsp_core               (level 1)
        u_fir : fir4                 (level 2: the filter datapath)
          u_mac0..u_mac3 : mac_tap   (level 3 — MUT: multiply/add tap)
        u_coef : coeff_bank          (level 2 — MUT: programmed registers)
        u_lim : limiter              (level 2 — MUT: saturating clamp)
      u_tone : tone_detect           (level 1: independent peripheral)

Interesting structure for extraction:

- `mac_tap` instances are *four siblings of one module* — extraction must
  union their contexts ("all possible paths", paper Section 3),
- `coeff_bank` is loadable over the bus (PIER-like) and its outputs are
  hard-coded-free (programmed data, not decode constants),
- `limiter`'s threshold input IS decode-constrained (a mode table), giving
  a second hard-coded testability case,
- `tone_detect` sits outside every MUT cone.
"""

from __future__ import annotations

from typing import List

from repro.designs.arm2 import MutInfo
from repro.hierarchy.design import Design
from repro.store import parse_verilog_cached

FILTERCHIP_MUTS: List[MutInfo] = [
    MutInfo(name="mac_tap", path="u_dsp.u_fir.u_mac1.", level=3),
    MutInfo(name="coeff_bank", path="u_dsp.u_coef.", level=2),
    MutInfo(name="limiter", path="u_dsp.u_lim.", level=2),
]


_FILTERCHIP_VERILOG = r"""
// ---------------------------------------------------------------------------
// mac_tap: one FIR tap — multiply the delayed sample by a coefficient and
// add the running partial sum.
// ---------------------------------------------------------------------------
module mac_tap(
  input [7:0] sample,
  input [7:0] coeff,
  input [15:0] sum_in,
  output [15:0] sum_out
);
  wire [15:0] product;
  assign product = sample * coeff;
  assign sum_out = sum_in + product;
endmodule

// ---------------------------------------------------------------------------
// coeff_bank: four bus-programmable coefficient registers.
// ---------------------------------------------------------------------------
module coeff_bank(
  input clk,
  input rst,
  input wr_en,
  input [1:0] wr_addr,
  input [7:0] wr_data,
  output [7:0] c0,
  output [7:0] c1,
  output [7:0] c2,
  output [7:0] c3
);
  reg [7:0] r0;
  reg [7:0] r1;
  reg [7:0] r2;
  reg [7:0] r3;
  always @(posedge clk)
    if (rst) begin
      r0 <= 8'd1;
      r1 <= 8'd0;
      r2 <= 8'd0;
      r3 <= 8'd0;
    end else if (wr_en)
      case (wr_addr)
        2'd0: r0 <= wr_data;
        2'd1: r1 <= wr_data;
        2'd2: r2 <= wr_data;
        default: r3 <= wr_data;
      endcase
  assign c0 = r0;
  assign c1 = r1;
  assign c2 = r2;
  assign c3 = r3;
endmodule

// ---------------------------------------------------------------------------
// limiter: saturate the accumulator against a mode-selected threshold.
// ---------------------------------------------------------------------------
module limiter(
  input [15:0] value,
  input [15:0] threshold,
  input enable,
  output [15:0] out,
  output clipped
);
  wire over;
  assign over = threshold < value;
  assign clipped = enable & over;
  assign out = clipped ? threshold : value;
endmodule

// ---------------------------------------------------------------------------
// fir4: the four-tap pipeline.
// ---------------------------------------------------------------------------
module fir4(
  input clk,
  input rst,
  input sample_en,
  input [7:0] sample_in,
  input [7:0] c0,
  input [7:0] c1,
  input [7:0] c2,
  input [7:0] c3,
  output [15:0] acc_out
);
  reg [7:0] d0;
  reg [7:0] d1;
  reg [7:0] d2;
  reg [7:0] d3;
  always @(posedge clk)
    if (rst) begin
      d0 <= 8'd0;
      d1 <= 8'd0;
      d2 <= 8'd0;
      d3 <= 8'd0;
    end else if (sample_en) begin
      d0 <= sample_in;
      d1 <= d0;
      d2 <= d1;
      d3 <= d2;
    end

  wire [15:0] s0;
  wire [15:0] s1;
  wire [15:0] s2;
  wire [15:0] s3;
  mac_tap u_mac0(.sample(d0), .coeff(c0), .sum_in(16'd0), .sum_out(s0));
  mac_tap u_mac1(.sample(d1), .coeff(c1), .sum_in(s0), .sum_out(s1));
  mac_tap u_mac2(.sample(d2), .coeff(c2), .sum_in(s1), .sum_out(s2));
  mac_tap u_mac3(.sample(d3), .coeff(c3), .sum_in(s2), .sum_out(s3));
  assign acc_out = s3;
endmodule

// ---------------------------------------------------------------------------
// dsp_core: filter + coefficients + limiter, with a mode-driven threshold
// table (the hard-coded constraint on the limiter).
// ---------------------------------------------------------------------------
module dsp_core(
  input clk,
  input rst,
  input sample_en,
  input [7:0] sample_in,
  input coef_wr,
  input [1:0] coef_addr,
  input [7:0] coef_data,
  input [1:0] mode,
  output [15:0] filt_out,
  output clipped
);
  wire [7:0] c0;
  wire [7:0] c1;
  wire [7:0] c2;
  wire [7:0] c3;
  coeff_bank u_coef(
    .clk(clk), .rst(rst), .wr_en(coef_wr), .wr_addr(coef_addr),
    .wr_data(coef_data), .c0(c0), .c1(c1), .c2(c2), .c3(c3)
  );

  wire [15:0] acc;
  fir4 u_fir(
    .clk(clk), .rst(rst), .sample_en(sample_en), .sample_in(sample_in),
    .c0(c0), .c1(c1), .c2(c2), .c3(c3), .acc_out(acc)
  );

  reg [15:0] threshold;
  reg lim_en;
  always @(*)
    case (mode)
      2'd0: begin threshold = 16'hffff; lim_en = 1'b0; end
      2'd1: begin threshold = 16'h7fff; lim_en = 1'b1; end
      2'd2: begin threshold = 16'h3fff; lim_en = 1'b1; end
      default: begin threshold = 16'h0fff; lim_en = 1'b1; end
    endcase

  limiter u_lim(
    .value(acc), .threshold(threshold), .enable(lim_en),
    .out(filt_out), .clipped(clipped)
  );
endmodule

// ---------------------------------------------------------------------------
// tone_detect: independent Goertzel-flavoured peripheral on its own pins.
// ---------------------------------------------------------------------------
module tone_detect(
  input clk,
  input rst,
  input [7:0] td_in,
  input td_en,
  input [7:0] td_ref,
  output td_hit,
  output [15:0] td_energy
);
  reg [15:0] energy;
  reg [7:0] last;
  wire [7:0] delta;
  assign delta = td_in - last;
  always @(posedge clk)
    if (rst) begin
      energy <= 16'd0;
      last <= 8'd0;
    end else if (td_en) begin
      last <= td_in;
      energy <= energy + {8'd0, delta};
    end
  assign td_energy = energy;
  assign td_hit = {8'd0, td_ref} < energy;
endmodule

// ---------------------------------------------------------------------------
// filterchip: top level.
// ---------------------------------------------------------------------------
module filterchip(
  input clk,
  input rst,
  input [7:0] sample_in,
  input sample_en,
  input coef_wr,
  input [1:0] coef_addr,
  input [7:0] coef_data,
  input [1:0] mode,
  input [7:0] td_in,
  input td_en,
  input [7:0] td_ref,
  output [15:0] filt_out,
  output clipped,
  output td_hit,
  output [15:0] td_energy
);
  dsp_core u_dsp(
    .clk(clk), .rst(rst), .sample_en(sample_en), .sample_in(sample_in),
    .coef_wr(coef_wr), .coef_addr(coef_addr), .coef_data(coef_data),
    .mode(mode), .filt_out(filt_out), .clipped(clipped)
  );

  tone_detect u_tone(
    .clk(clk), .rst(rst), .td_in(td_in), .td_en(td_en), .td_ref(td_ref),
    .td_hit(td_hit), .td_energy(td_energy)
  );
endmodule
"""


def filterchip_source() -> str:
    """Verilog source of the DSP filter benchmark."""
    return _FILTERCHIP_VERILOG


def filterchip_design() -> Design:
    return Design(parse_verilog_cached(_FILTERCHIP_VERILOG), top="filterchip")
