"""Benchmark designs written in the supported Verilog subset.

``arm2`` is the ARM-2-like hierarchical processor used for the paper's
evaluation (the original 1995 Verilog ARM class-project model is not
available; DESIGN.md documents the substitution).  ``library`` holds small
well-understood circuits used throughout the test suite.
"""

from repro.designs.arm2 import (
    arm2_source,
    arm2_design,
    ARM2_MUTS,
    MutInfo,
)
from repro.designs.filterchip import (
    FILTERCHIP_MUTS,
    filterchip_design,
    filterchip_source,
)
from repro.designs.library import (
    adder_source,
    counter_source,
    fsm_source,
    mux_tree_source,
    parity_source,
    shifter_source,
    small_designs,
)

__all__ = [
    "arm2_source",
    "arm2_design",
    "ARM2_MUTS",
    "MutInfo",
    "FILTERCHIP_MUTS",
    "filterchip_design",
    "filterchip_source",
    "adder_source",
    "counter_source",
    "fsm_source",
    "mux_tree_source",
    "parity_source",
    "shifter_source",
    "small_designs",
]
