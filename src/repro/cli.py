"""Command-line interface: the FACTOR tool.

Usage (after ``pip install -e .``)::

    python -m repro analyze DESIGN.v --top arm --mut arm_alu \
        --path u_core.u_dp.u_alu. --out constraints/
    python -m repro testability DESIGN.v --top arm --mut arm_alu
    python -m repro atpg DESIGN.v --top arm --mut arm_alu --frames 4
    python -m repro lint DESIGN.v --top arm --format sarif --out lint.sarif
    python -m repro profile DESIGN.v --top arm --mut arm_alu
    python -m repro stats DESIGN.v --top arm
    python -m repro piers DESIGN.v --top arm

Subcommands:

- ``analyze``      extract constraints, build the transformed module and
                   write the constraint netlists out as Verilog,
- ``testability``  Section 4.2 report: hard-coded inputs, empty chains,
- ``atpg``         generate tests for the MUT inside the transformed module,
- ``lint``         rule-based static analysis (text/JSON/SARIF output);
                   exit 0 clean, 1 warnings with ``--strict``, 2 errors,
- ``profile``      full pipeline run with a per-phase time/metric breakdown,
- ``stats``        netlist statistics for the whole design (or one module),
- ``piers``        list PI/PO-accessible registers,
- ``bench``        differential simulation-backend benchmarks (interpreted
                   vs compiled fault simulation plus an ATPG equivalence
                   check); writes ``BENCH_*.json``, exits 1 on mismatch.

``analyze`` and ``atpg`` accept ``--lint`` to run the linter as a
pre-flight gate: error-severity findings abort before extraction starts.

Every subcommand also takes the observability flags ``--log-level``,
``--trace-out FILE`` (span tree as JSON; ``.jsonl`` / ``.chrome.json``
variants by extension) and ``--metrics-out FILE`` (metrics registry
snapshot as JSON).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Optional

from repro import __version__
from repro.atpg.engine import AtpgOptions
from repro.core.extractor import ExtractionMode
from repro.core.factor import Factor
from repro.core.report import format_table
from repro.obs import (
    Span,
    atomic_write_text,
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
)
from repro.synth.stats import netlist_stats

_log = get_logger("cli")

# Pipeline phases reported by ``repro profile``, in execution order.
_PROFILE_PHASES = ["parse", "extract", "compose", "synth",
                   "testability", "piers", "atpg"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FACTOR: functional constraint extraction for "
                    "hierarchical test generation (DATE 2002 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs(p):
        p.add_argument("--log-level", default="warning",
                       choices=["debug", "info", "warning", "error"],
                       help="structured log verbosity (default: warning)")
        p.add_argument("--trace-out", metavar="FILE",
                       help="write the span trace as JSON (.jsonl and "
                            ".chrome.json select other formats)")
        p.add_argument("--metrics-out", metavar="FILE",
                       help="write the metrics registry snapshot as JSON")

    def add_common(p, needs_mut=True, files_nargs="+"):
        p.add_argument("files", nargs=files_nargs,
                       help="Verilog source files")
        p.add_argument("--top", help="top module (inferred when unique)")
        p.add_argument("--define", "-D", action="append", default=[],
                       metavar="NAME[=VALUE]",
                       help="preprocessor macro (repeatable)")
        p.add_argument("--include", "-I", action="append", default=[],
                       metavar="DIR", help="`include search directory "
                                           "(repeatable)")
        add_obs(p)
        if needs_mut:
            p.add_argument("--mut", required=True,
                           help="module under test (module name)")
            p.add_argument("--path",
                           help="instance path, e.g. u_core.u_dp.u_alu. "
                                "(inferred when the module has one instance)")
            p.add_argument(
                "--mode", choices=["compose", "conventional"],
                default="compose",
                help="extraction mode (default: compose)",
            )

    def add_atpg_options(p):
        p.add_argument("--frames", type=int, default=4,
                       help="maximum time frames (default 4)")
        p.add_argument("--backtrack-limit", type=int, default=300)
        p.add_argument("--no-piers", action="store_true",
                       help="disable PIER pseudo PI/PO")
        p.add_argument("--seed", type=int, default=2002)
        p.add_argument("--backend", choices=["compiled", "interpreted"],
                       help="fault-simulation backend (default: compiled, "
                            "or REPRO_SIM_BACKEND)")

    def add_lint_gate(p):
        p.add_argument("--lint", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="run the linter first; error findings abort "
                            "before extraction (default: --no-lint)")

    p_analyze = sub.add_parser("analyze", help="extract constraints and "
                                               "build the transformed module")
    add_common(p_analyze)
    add_lint_gate(p_analyze)
    p_analyze.add_argument("--out", help="directory for constraint netlists")

    p_test = sub.add_parser("testability", help="Section 4.2 testability "
                                                "report")
    add_common(p_test)

    p_atpg = sub.add_parser("atpg", help="generate tests for the MUT")
    add_common(p_atpg)
    add_lint_gate(p_atpg)
    add_atpg_options(p_atpg)

    p_lint = sub.add_parser(
        "lint",
        help="rule-based static analysis (AST, du/ud chains, netlist)",
    )
    add_common(p_lint, needs_mut=False, files_nargs="*")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", help="output format (default: text)")
    p_lint.add_argument("--out", dest="lint_out", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit 1 when there are warnings (errors always "
                             "exit 2)")
    p_lint.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="disable a rule id (repeatable)")
    p_lint.add_argument("--enable", action="append", default=[],
                        metavar="RULE",
                        help="run only these rule ids (repeatable)")
    p_lint.add_argument("--severity", action="append", default=[],
                        metavar="RULE=LEVEL",
                        help="override a rule's severity, e.g. W003=error "
                             "(repeatable)")
    p_lint.add_argument("--waive", action="append", default=[],
                        metavar="RULE[:MODULE[:SIGNAL]]",
                        help="waive matching findings (repeatable)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")

    p_profile = sub.add_parser(
        "profile",
        help="run the full pipeline and print a per-phase "
             "time/metric breakdown",
    )
    add_common(p_profile)
    add_atpg_options(p_profile)

    p_stats = sub.add_parser("stats", help="netlist statistics")
    add_common(p_stats, needs_mut=False)
    p_stats.add_argument("--module", help="synthesize one module stand-alone")

    p_piers = sub.add_parser("piers", help="list PI/PO-accessible registers")
    add_common(p_piers, needs_mut=False)

    p_cache = sub.add_parser(
        "cache",
        help="artifact-store maintenance (stats / clear / gc)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="per-stage entry counts and sizes")
    add_obs(p_cache_stats)
    p_cache_clear = cache_sub.add_parser(
        "clear", help="remove every cached artifact")
    add_obs(p_cache_clear)
    p_cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a size cap")
    p_cache_gc.add_argument(
        "--max-size", required=True, metavar="SIZE",
        help="target store size, e.g. 512M, 2G, or plain bytes")
    add_obs(p_cache_gc)

    p_bench = sub.add_parser(
        "bench",
        help="differential simulation-backend benchmarks "
             "(writes BENCH_*.json)",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-sized workload (arm_alu only, few vectors)")
    p_bench.add_argument("--jobs", type=int,
                         help="worker processes for the parallel row "
                              "(default: REPRO_JOBS or all cores)")
    p_bench.add_argument("--seed", type=int, default=2002)
    p_bench.add_argument("--out", default="benchmarks/results",
                         help="output directory for BENCH_*.json "
                              "(default: benchmarks/results)")
    add_obs(p_bench)

    return parser


def _factor_for(args) -> Factor:
    mode = ExtractionMode.COMPOSE
    if getattr(args, "mode", "compose") == "conventional":
        mode = ExtractionMode.CONVENTIONAL
    defines = {}
    for item in getattr(args, "define", []):
        name, _, value = item.partition("=")
        defines[name] = value
    return Factor.from_files(args.files, top=args.top, mode=mode,
                             defines=defines or None,
                             include_dirs=getattr(args, "include", []))


def _atpg_options(args) -> AtpgOptions:
    return AtpgOptions(
        max_frames=args.frames,
        backtrack_limit=args.backtrack_limit,
        seed=args.seed,
        fault_sim_backend=getattr(args, "backend", None),
    )


def _lint_config_from_args(args) -> "LintConfig":
    from repro.lint import LintConfig, Waiver

    overrides = {}
    for item in getattr(args, "severity", []):
        rule_id, sep, level = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad --severity {item!r}; expected RULE=LEVEL")
        overrides[rule_id] = level
    waivers = []
    for item in getattr(args, "waive", []):
        parts = item.split(":")
        waivers.append(Waiver(
            rule_id=parts[0],
            module=parts[1] if len(parts) > 1 and parts[1] else None,
            signal=parts[2] if len(parts) > 2 and parts[2] else None,
            reason="--waive",
        ))
    return LintConfig(
        disabled=set(getattr(args, "disable", [])),
        enabled=set(getattr(args, "enable", [])),
        severity_overrides=overrides,
        waivers=waivers,
    )


def _load_lint_design(args):
    """Parse each file separately so diagnostics carry real file paths."""
    from repro.hierarchy.design import Design
    from repro.lint import LintError
    from repro.verilog import ast as vast
    from repro.verilog.lexer import LexError
    from repro.verilog.parser import ParseError, parse_source
    from repro.verilog.preprocess import Preprocessor, PreprocessError

    defines = {}
    for item in getattr(args, "define", []):
        name, _, value = item.partition("=")
        defines[name] = value
    pp = Preprocessor(defines=defines or None,
                      include_dirs=getattr(args, "include", []))
    source = vast.Source()
    files: Dict[str, str] = {}
    for path in args.files:
        try:
            chunk = pp.process_file(path)
            sub = parse_source(chunk)
        except (PreprocessError, ParseError, LexError, OSError) as exc:
            raise LintError(f"{path}: {exc}") from exc
        for mod in sub.modules:
            files[mod.name] = path
        source.extend(sub)
    return Design(source, top=args.top), files


def _lint_exit_code(result, strict: bool) -> int:
    if result.errors:
        return 2
    if strict and result.warnings:
        return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import default_registry, render_json, render_sarif, \
        render_text, run_lint

    if args.list_rules:
        for rule_ in default_registry().rules():
            print(f"{rule_.rule_id}  {rule_.severity:<7}  "
                  f"{rule_.category:<12}  {rule_.title}")
        return 0
    if not args.files:
        print("error: no Verilog source files given", file=sys.stderr)
        return 1
    design, files = _load_lint_design(args)
    result = run_lint(design, _lint_config_from_args(args), files=files)
    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    rendered = renderer(result)
    if args.lint_out:
        with open(args.lint_out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            if not rendered.endswith("\n"):
                handle.write("\n")
        print(f"wrote {args.format} report to {args.lint_out} "
              f"({result.summary()})")
    else:
        print(rendered)
    return _lint_exit_code(result, args.strict)


def _lint_gate(args, factor: Factor) -> int:
    """Opt-in pre-flight lint for analyze/atpg: errors abort (exit 2)."""
    from repro.lint import run_lint

    result = run_lint(factor.design)
    if not result.errors:
        _log.info("lint_gate_clean", findings=len(result.diagnostics))
        return 0
    print(f"lint gate failed: {len(result.errors)} error(s)",
          file=sys.stderr)
    for diag in result.errors:
        print("  " + diag.render(), file=sys.stderr)
    return 2


def _cmd_analyze(args) -> int:
    factor = _factor_for(args)
    if getattr(args, "lint", False):
        code = _lint_gate(args, factor)
        if code:
            return code
    result = factor.analyze(args.mut, path=args.path)
    tr = result.transformed
    print(f"MUT {args.mut} at {tr.mut_region}")
    print(f"  extraction : {tr.extraction_seconds:.3f} s "
          f"({result.extraction.tasks_run} tasks, "
          f"{result.extraction.tasks_reused} reused)")
    print(f"  synthesis  : {tr.synthesis_seconds:.3f} s")
    print(f"  transformed: {tr.total_gates} gates "
          f"({tr.mut_gates} MUT + {tr.surrounding_gates} S'), "
          f"{tr.num_pis} PI, {tr.num_pos} PO")
    print(f"  modules    : {', '.join(result.extraction.kept_modules())}")
    if args.out:
        written = result.write_constraints(args.out)
        print(f"  wrote {len(written)} constraint netlists to {args.out}")
    return 0


def _cmd_testability(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path)
    print(result.testability.summary())
    return 0


def _cmd_atpg(args) -> int:
    factor = _factor_for(args)
    if getattr(args, "lint", False):
        code = _lint_gate(args, factor)
        if code:
            return code
    result = factor.analyze(args.mut, path=args.path,
                            use_piers=not args.no_piers)
    report = factor.generate_tests(result, _atpg_options(args))
    print(format_table(
        f"ATPG report for {args.mut}",
        [report.as_row()],
    ))
    print(f"detected {report.detected}, untestable {report.untestable}, "
          f"aborted {report.aborted} of {report.total_faults} faults")
    return 0


def _phase_of(name: str) -> str:
    return name.split(".", 1)[0]


def _aggregate_phases(root: Span) -> Dict[str, Dict[str, float]]:
    """Per-phase wall/CPU totals over the outermost span of each phase.

    A span counts toward its phase only when its parent belongs to a
    different phase, so nested same-phase spans (``atpg.podem`` under
    ``atpg``) are not double counted.
    """
    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: Span, parent_phase: Optional[str]) -> None:
        phase = _phase_of(node.name)
        if phase in _PROFILE_PHASES and phase != parent_phase:
            bucket = totals.setdefault(phase, {"wall_s": 0.0, "cpu_s": 0.0})
            bucket["wall_s"] += node.wall_seconds
            bucket["cpu_s"] += node.cpu_seconds
        for child in node.children:
            visit(child, phase)

    for child in root.children:
        visit(child, None)
    return totals


def _profile_rows(root: Span) -> List[Dict[str, object]]:
    totals = _aggregate_phases(root)
    total_wall = root.wall_seconds
    total_cpu = root.cpu_seconds
    rows: List[Dict[str, object]] = []
    covered_wall = 0.0
    covered_cpu = 0.0
    for phase in _PROFILE_PHASES:
        bucket = totals.get(phase, {"wall_s": 0.0, "cpu_s": 0.0})
        covered_wall += bucket["wall_s"]
        covered_cpu += bucket["cpu_s"]
        share = 100.0 * bucket["wall_s"] / total_wall if total_wall else 0.0
        rows.append({
            "phase": phase,
            "wall_s": f"{bucket['wall_s']:.4f}",
            "cpu_s": f"{bucket['cpu_s']:.4f}",
            "wall_%": round(share, 1),
        })
    other_wall = max(0.0, total_wall - covered_wall)
    rows.append({
        "phase": "(other)",
        "wall_s": f"{other_wall:.4f}",
        "cpu_s": f"{max(0.0, total_cpu - covered_cpu):.4f}",
        "wall_%": round(
            100.0 * other_wall / total_wall if total_wall else 0.0, 1),
    })
    rows.append({
        "phase": "total",
        "wall_s": f"{total_wall:.4f}",
        "cpu_s": f"{total_cpu:.4f}",
        "wall_%": 100.0,
    })
    return rows


_PROFILE_METRIC_PREFIXES = (
    "verilog.", "extract.", "compose.", "synth.", "atpg.", "fault_sim.",
    "store.",
)


def _profile_metric_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name, snap in get_registry().snapshot().items():
        if not name.startswith(_PROFILE_METRIC_PREFIXES):
            continue
        if snap["type"] == "histogram":
            value = (f"n={snap['count']} mean={snap['mean']:.4g} "
                     f"max={snap['max']:.4g}")
        else:
            value = snap["value"]
        rows.append({"metric": name, "type": snap["type"], "value": value})
    return rows


def _cmd_profile(args) -> int:
    with get_tracer().span("profile", mut=args.mut) as root:
        factor = _factor_for(args)
        result = factor.analyze(args.mut, path=args.path,
                                use_piers=not args.no_piers)
        report = factor.generate_tests(result, _atpg_options(args))

    print(format_table(
        f"Per-phase profile: MUT {args.mut} at {result.mut.path}",
        _profile_rows(root),
        columns=["phase", "wall_s", "cpu_s", "wall_%"],
    ))
    metric_rows = _profile_metric_rows()
    if metric_rows:
        print(format_table("Pipeline metrics", metric_rows,
                           columns=["metric", "type", "value"]))
    print(f"coverage {report.coverage_percent:.2f} %, "
          f"efficiency {report.efficiency_percent:.2f} %, "
          f"{report.num_vectors} vectors "
          f"({report.detected}/{report.total_faults} faults detected)")
    return 0


def _cmd_stats(args) -> int:
    from repro.store import synthesize_cached

    factor = _factor_for(args)
    netlist = synthesize_cached(factor.design, root=args.module)
    stats = netlist_stats(netlist)
    print(format_table(f"Netlist statistics: {netlist.name}",
                       [stats.as_row()]))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.micro import run_bench

    return run_bench(out_dir=args.out, quick=args.quick,
                     jobs=args.jobs, seed=args.seed)


def _human_bytes(num: int) -> str:
    value = float(num)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError  # pragma: no cover


def _parse_size(text: str) -> int:
    """``512M`` / ``2G`` / ``100KiB`` / plain bytes -> byte count."""
    match = re.fullmatch(
        r"\s*(\d+(?:\.\d+)?)\s*([KkMmGg]i?[Bb]?|[Bb]?)\s*", text)
    if not match:
        raise ValueError(f"bad size {text!r}; expected e.g. 512M or 2G")
    value = float(match.group(1))
    unit = match.group(2).lower().rstrip("b").rstrip("i")
    scale = {"": 1, "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}[unit]
    return int(value * scale)


def _cmd_cache(args) -> int:
    from repro.store import get_store, store_disabled

    store = get_store()
    if store_disabled():
        print("artifact store disabled (REPRO_NO_CACHE is set)")
        return 0
    if args.cache_command == "stats":
        stats = store.stats()
        rows = [
            {"stage": stage,
             "entries": bucket["entries"],
             "size": _human_bytes(bucket["bytes"])}
            for stage, bucket in sorted(stats.items())
            if stage != "total"
        ]
        rows.append({"stage": "total",
                     "entries": stats["total"]["entries"],
                     "size": _human_bytes(stats["total"]["bytes"])})
        print(format_table(f"Artifact store: {store.root}", rows,
                           columns=["stage", "entries", "size"]))
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cached artifacts from {store.root}")
        return 0
    if args.cache_command == "gc":
        max_bytes = _parse_size(args.max_size)
        removed, remaining = store.gc(max_bytes)
        print(f"evicted {removed} artifacts; store now "
              f"{_human_bytes(remaining)} (cap {_human_bytes(max_bytes)})")
        return 0
    raise AssertionError  # pragma: no cover - argparse enforces choices


def _cmd_piers(args) -> int:
    factor = _factor_for(args)
    rows = []
    for pier in factor.piers():
        rows.append({
            "module": pier.module,
            "register": pier.signal,
            "loadable": "yes" if pier.loadable else "no",
            "storable": "yes" if pier.storable else "no",
            "PIER": "yes" if pier.is_pier else "no",
        })
    print(format_table("PI/PO-accessible registers", rows))
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "testability": _cmd_testability,
    "atpg": _cmd_atpg,
    "lint": _cmd_lint,
    "profile": _cmd_profile,
    "stats": _cmd_stats,
    "piers": _cmd_piers,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
}


def _write_observability(args) -> None:
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        get_tracer().write_json(trace_out)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        atomic_write_text(
            metrics_out,
            json.dumps(get_registry().snapshot(), indent=2) + "\n",
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    # Fresh per-invocation state so --trace-out / --metrics-out describe
    # exactly this run even when main() is driven in-process.
    get_tracer().reset()
    get_registry().reset()
    try:
        code = _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        code = 130
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        code = 1
    except Exception:
        _log.exception("unhandled_error", command=args.command)
        try:
            _write_observability(args)
        except OSError:
            pass
        raise
    try:
        _write_observability(args)
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
