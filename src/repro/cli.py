"""Command-line interface: the FACTOR tool.

Usage (after ``pip install -e .``)::

    python -m repro analyze DESIGN.v --top arm --mut arm_alu \
        --path u_core.u_dp.u_alu. --out constraints/
    python -m repro testability DESIGN.v --top arm --mut arm_alu
    python -m repro atpg DESIGN.v --top arm --mut arm_alu --frames 4
    python -m repro lint DESIGN.v --top arm --format sarif --out lint.sarif
    python -m repro profile DESIGN.v --top arm --mut arm_alu
    python -m repro stats DESIGN.v --top arm
    python -m repro piers DESIGN.v --top arm

Subcommands:

- ``analyze``      extract constraints, build the transformed module and
                   write the constraint netlists out as Verilog,
- ``testability``  Section 4.2 report: hard-coded inputs, empty chains,
- ``atpg``         generate tests for the MUT inside the transformed module,
- ``lint``         rule-based static analysis (text/JSON/SARIF output);
                   exit 0 clean, 1 warnings with ``--strict``, 2 errors,
- ``explain``      root-cause connectivity query for one net or port:
                   ordered hop trace to the first blocking statement plus
                   a simulator-verified witness (see docs/root-cause.md),
- ``profile``      full pipeline run with a per-phase time/metric breakdown,
- ``stats``        netlist statistics for the whole design (or one module),
- ``piers``        list PI/PO-accessible registers,
- ``bench``        differential simulation-backend benchmarks (interpreted
                   vs compiled vs arena fault simulation plus an ATPG
                   equivalence check); writes ``BENCH_*.json``, exits 1 on
                   mismatch,
- ``serve``        resident ATPG job server (queueing, admission control,
                   request coalescing, graceful drain; see docs/serving.md),
- ``submit``       submit a job to a running server and (by default) wait;
                   ``--watch`` streams live progress instead of polling,
- ``jobs``         list the jobs a running server knows about;
                   ``--follow JOB_ID`` tails one job's event stream,
- ``trace``        inspect stitched per-job trace files: ``show`` renders
                   a waterfall + top-spans view, ``slow`` lists jobs that
                   exceeded the server's slow threshold.

``analyze`` and ``atpg`` accept ``--lint`` to run the linter as a
pre-flight gate: error-severity findings abort before extraction starts.
``atpg`` accepts ``--mut`` repeatedly; with ``--jobs`` the per-MUT runs
fan out across worker processes.

Every subcommand also takes the observability flags ``--log-level``,
``--trace-out FILE`` (span tree as JSON; ``.jsonl`` / ``.chrome.json``
variants by extension) and ``--metrics-out FILE`` (metrics registry
snapshot as JSON, or Prometheus text exposition with a ``.prom`` suffix).

``SIGINT`` exits 130; ``SIGTERM`` exits 143 — both flush partial
``--trace-out`` / ``--metrics-out`` payloads first.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Optional

from repro import __version__
from repro.atpg.engine import AtpgOptions
from repro.core.extractor import ExtractionMode
from repro.core.factor import Factor
from repro.core.report import format_table
from repro.jobs import (
    SIGTERM_EXIT_CODE,
    Terminated,
    install_sigterm_handler,
    resolve_jobs,
    resolve_jobs_opt,
)
from repro.obs import (
    Span,
    atomic_write_text,
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
)
from repro.synth.stats import netlist_stats

_log = get_logger("cli")

# Pipeline phases reported by ``repro profile``, in execution order.
_PROFILE_PHASES = ["parse", "extract", "compose", "synth",
                   "testability", "piers", "atpg"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FACTOR: functional constraint extraction for "
                    "hierarchical test generation (DATE 2002 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs(p):
        p.add_argument("--log-level", default="warning",
                       choices=["debug", "info", "warning", "error"],
                       help="structured log verbosity (default: warning)")
        p.add_argument("--trace-out", metavar="FILE",
                       help="write the span trace as JSON (.jsonl and "
                            ".chrome.json select other formats)")
        p.add_argument("--metrics-out", metavar="FILE",
                       help="write the metrics registry snapshot as JSON")

    def add_common(p, needs_mut=True, files_nargs="+",
                   mut_repeatable=False):
        p.add_argument("files", nargs=files_nargs,
                       help="Verilog source files")
        p.add_argument("--top", help="top module (inferred when unique)")
        p.add_argument("--define", "-D", action="append", default=[],
                       metavar="NAME[=VALUE]",
                       help="preprocessor macro (repeatable)")
        p.add_argument("--include", "-I", action="append", default=[],
                       metavar="DIR", help="`include search directory "
                                           "(repeatable)")
        add_obs(p)
        if needs_mut:
            if mut_repeatable:
                p.add_argument("--mut", required=True, action="append",
                               help="module under test (repeatable; "
                                    "multiple MUTs fan out over --jobs)")
            else:
                p.add_argument("--mut", required=True,
                               help="module under test (module name)")
            p.add_argument("--path",
                           help="instance path, e.g. u_core.u_dp.u_alu. "
                                "(inferred when the module has one instance)")
            p.add_argument(
                "--mode", choices=["compose", "conventional"],
                default="compose",
                help="extraction mode (default: compose)",
            )

    def add_atpg_options(p, with_jobs=False):
        p.add_argument("--frames", type=int, default=4,
                       help="maximum time frames (default 4)")
        p.add_argument("--backtrack-limit", type=int, default=300)
        p.add_argument("--no-piers", action="store_true",
                       help="disable PIER pseudo PI/PO")
        p.add_argument("--seed", type=int, default=2002)
        p.add_argument("--backend",
                       choices=["arena", "compiled", "interpreted"],
                       help="fault-simulation backend (default: arena, "
                            "or REPRO_SIM_BACKEND)")
        p.add_argument("--fault-model",
                       choices=["stuck", "transient", "both"],
                       default="stuck",
                       help="fault model: stuck-at (default), transient "
                            "SEU bit flips (random-phase only, graded by "
                            "fault simulation), or both")
        p.add_argument("--random-length", type=int, metavar="N",
                       help="random-phase sequence length (default: the "
                            "engine's built-in)")
        p.add_argument("--transient-sample", type=int, metavar="N",
                       help="SEU faults sampled from the site x value x "
                            "cycle universe (default 256)")
        if with_jobs:
            p.add_argument("--jobs", type=int,
                           help="worker processes: multi-MUT runs fan out "
                                "whole reports, a single MUT parallelizes "
                                "PODEM across the fault list with "
                                "bit-identical results (default: "
                                "REPRO_JOBS, else serial for one MUT / "
                                "all cores for many; <= 0 means all "
                                "cores)")

    def add_lint_gate(p):
        p.add_argument("--lint", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="run the linter first; error findings abort "
                            "before extraction (default: --no-lint)")

    p_analyze = sub.add_parser("analyze", help="extract constraints and "
                                               "build the transformed module")
    add_common(p_analyze)
    add_lint_gate(p_analyze)
    p_analyze.add_argument("--out", help="directory for constraint netlists")

    p_test = sub.add_parser("testability", help="Section 4.2 testability "
                                                "report")
    add_common(p_test)

    p_atpg = sub.add_parser("atpg", help="generate tests for the MUT(s)")
    add_common(p_atpg, mut_repeatable=True)
    add_lint_gate(p_atpg)
    add_atpg_options(p_atpg, with_jobs=True)

    p_lint = sub.add_parser(
        "lint",
        help="rule-based static analysis (AST, du/ud chains, netlist)",
    )
    add_common(p_lint, needs_mut=False, files_nargs="*")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", help="output format (default: text)")
    p_lint.add_argument("--out", dest="lint_out", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit 1 when there are warnings (errors always "
                             "exit 2)")
    p_lint.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="disable a rule id (repeatable)")
    p_lint.add_argument("--enable", action="append", default=[],
                        metavar="RULE",
                        help="run only these rule ids (repeatable)")
    p_lint.add_argument("--severity", action="append", default=[],
                        metavar="RULE=LEVEL",
                        help="override a rule's severity, e.g. W003=error "
                             "(repeatable)")
    p_lint.add_argument("--waive", action="append", default=[],
                        metavar="RULE[:MODULE[:SIGNAL]][@YYYY-MM-DD]",
                        help="waive matching findings (repeatable; an "
                             "@date suffix expires the waiver — expired "
                             "waivers re-surface as warnings)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")

    p_explain = sub.add_parser(
        "explain",
        help="root-cause connectivity trace for one net or port "
             "(why can't it be justified / propagated?)",
    )
    add_common(p_explain, needs_mut=False)
    p_explain.add_argument("target", metavar="TARGET",
                           help="signal to explain, as SIGNAL (in the top "
                                "module) or MODULE.SIGNAL")
    p_explain.add_argument("--direction",
                           choices=["auto", "justification", "propagation"],
                           default="auto",
                           help="which chain walk to run (default: auto — "
                                "by port direction, else both)")
    p_explain.add_argument("--witness",
                           action=argparse.BooleanOptionalAction,
                           default=True,
                           help="attempt a witness vector pair / ATPG "
                                "redundancy proof for blocked traces "
                                "(default: --witness)")
    p_explain.add_argument("--seed", type=int, default=2002,
                           help="seed for witness base vectors "
                                "(default 2002)")
    p_explain.add_argument("--json", action="store_true", dest="as_json",
                           help="print the trace (and witness) as JSON")

    p_profile = sub.add_parser(
        "profile",
        help="run the full pipeline and print a per-phase "
             "time/metric breakdown",
    )
    add_common(p_profile)
    add_atpg_options(p_profile, with_jobs=True)

    p_stats = sub.add_parser("stats", help="netlist statistics")
    add_common(p_stats, needs_mut=False)
    p_stats.add_argument("--module", help="synthesize one module stand-alone")

    p_piers = sub.add_parser("piers", help="list PI/PO-accessible registers")
    add_common(p_piers, needs_mut=False)

    p_cache = sub.add_parser(
        "cache",
        help="artifact-store maintenance (stats / clear / gc)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="per-stage entry counts and sizes")
    add_obs(p_cache_stats)
    p_cache_clear = cache_sub.add_parser(
        "clear", help="remove every cached artifact")
    add_obs(p_cache_clear)
    p_cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a size cap")
    p_cache_gc.add_argument(
        "--max-size", required=True, metavar="SIZE",
        help="target store size, e.g. 512M, 2G, or plain bytes")
    add_obs(p_cache_gc)

    p_bench = sub.add_parser(
        "bench",
        help="differential simulation-backend benchmarks "
             "(writes BENCH_*.json)",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-sized workload (arm_alu only, few vectors)")
    p_bench.add_argument("--jobs", type=int,
                         help="worker processes for the parallel row "
                              "(default: REPRO_JOBS or all cores)")
    p_bench.add_argument("--seed", type=int, default=2002)
    p_bench.add_argument("--out", default="benchmarks/results",
                         help="output directory for BENCH_*.json "
                              "(default: benchmarks/results)")
    p_bench.add_argument("--suite", action="append", default=[],
                         choices=["fault_sim", "atpg", "warm_pipeline",
                                  "serve", "campaign", "all"],
                         help="suites to run (repeatable; default: "
                              "fault_sim, atpg, warm_pipeline)")
    add_obs(p_bench)

    p_serve = sub.add_parser(
        "serve",
        help="resident ATPG job server (see docs/serving.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8371,
                         help="listen port (0 picks an ephemeral port; "
                              "default 8371)")
    p_serve.add_argument("--jobs", type=int,
                         help="worker pool size (default: REPRO_JOBS or "
                              "all cores; <= 0 means all cores)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="admission bound: queued jobs beyond this "
                              "get 429 + Retry-After (default 64)")
    p_serve.add_argument("--journal", metavar="FILE",
                         help="JSONL job journal; queued work survives "
                              "restarts when set")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds running jobs get to finish on "
                              "SIGTERM/SIGINT (default 30)")
    p_serve.add_argument("--job-timeout", type=float,
                         help="per-job wall-clock budget once running "
                              "(default: unlimited)")
    p_serve.add_argument("--worker-mode", choices=["process", "thread"],
                         default="process",
                         help="worker pool flavor (default: process; "
                              "thread is for tests/smoke runs)")
    add_obs(p_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a job to a running repro serve",
    )
    p_submit.add_argument("files", nargs="*",
                          help="Verilog source files (preprocessed "
                               "locally, uploaded as one unit)")
    p_submit.add_argument("--design", choices=["arm2", "filterchip"],
                          help="submit a bundled design instead of files")
    p_submit.add_argument("--op", default="atpg",
                          choices=["analyze", "testability", "atpg",
                                   "lint", "explain"],
                          help="pipeline operation (default: atpg)")
    p_submit.add_argument("--target", metavar="SIGNAL",
                          help="explain jobs: the net/port to explain "
                               "(SIGNAL or MODULE.SIGNAL)")
    p_submit.add_argument("--top", help="top module")
    p_submit.add_argument("--mut", help="module under test")
    p_submit.add_argument("--path", help="MUT instance path")
    p_submit.add_argument("--mode", choices=["compose", "conventional"],
                          default="compose")
    p_submit.add_argument("--define", "-D", action="append", default=[],
                          metavar="NAME[=VALUE]")
    p_submit.add_argument("--include", "-I", action="append", default=[],
                          metavar="DIR")
    p_submit.add_argument("--frames", type=int, default=4)
    p_submit.add_argument("--backtrack-limit", type=int, default=300)
    p_submit.add_argument("--seed", type=int, default=2002)
    p_submit.add_argument("--backend",
                          choices=["arena", "compiled", "interpreted"])
    p_submit.add_argument("--fault-model",
                          choices=["stuck", "transient", "both"],
                          default="stuck",
                          help="atpg jobs: fault model (default: stuck)")
    p_submit.add_argument("--random-length", type=int, metavar="N",
                          help="atpg jobs: random-phase sequence length")
    p_submit.add_argument("--transient-sample", type=int, metavar="N",
                          help="atpg jobs: SEU fault sample size")
    p_submit.add_argument("--jobs", type=int,
                          help="atpg jobs: PODEM workers inside the job "
                               "(default: serial; 0 means all of the "
                               "server's cores; results are identical "
                               "at any value)")
    p_submit.add_argument("--no-piers", action="store_true")
    p_submit.add_argument("--strict", action="store_true",
                          help="lint jobs: warnings fail the job")
    p_submit.add_argument("--deadline", type=float, metavar="SECONDS",
                          help="fail the job if still queued after this "
                               "many seconds")
    p_submit.add_argument("--server", metavar="URL",
                          help="server base URL (default: REPRO_SERVER "
                               "or http://127.0.0.1:8371)")
    p_submit.add_argument("--wait", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="poll until the job finishes "
                               "(default: --wait)")
    p_submit.add_argument("--watch", action="store_true",
                          help="follow the job's live event stream and "
                               "render a progress line (implies --wait)")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="seconds to wait for completion "
                               "(default 600)")
    p_submit.add_argument("--json", action="store_true", dest="as_json",
                          help="print the full job as JSON")
    add_obs(p_submit)

    p_jobs = sub.add_parser("jobs", help="list jobs on a running server")
    p_jobs.add_argument("--server", metavar="URL",
                        help="server base URL (default: REPRO_SERVER "
                             "or http://127.0.0.1:8371)")
    p_jobs.add_argument("--status",
                        choices=["queued", "running", "done", "failed"],
                        help="only jobs in this state")
    p_jobs.add_argument("--follow", metavar="JOB_ID",
                        help="tail one job's event stream as NDJSON "
                             "until it finishes")
    p_jobs.add_argument("--since", type=int, default=0,
                        help="with --follow: replay events after this "
                             "sequence number (default 0 = all)")
    p_jobs.add_argument("--json", action="store_true", dest="as_json")
    add_obs(p_jobs)

    p_trace = sub.add_parser(
        "trace",
        help="inspect stitched per-job trace files (see "
             "docs/observability.md)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_show = trace_sub.add_parser(
        "show", help="waterfall + top-spans view of one stitched trace")
    p_trace_show.add_argument("trace",
                              help="trace file path, or a job id looked "
                                   "up under --trace-dir")
    p_trace_show.add_argument("--trace-dir", metavar="DIR",
                              help="stitched-trace directory (default: "
                                   "<cache>/traces)")
    p_trace_show.add_argument("--top", type=int, default=10,
                              dest="top_spans",
                              help="rows in the top-spans table "
                                   "(default 10)")
    p_trace_show.add_argument("--json", action="store_true",
                              dest="as_json",
                              help="print the parsed spans as JSON")
    add_obs(p_trace_show)
    p_trace_slow = trace_sub.add_parser(
        "slow", help="jobs that exceeded the server's slow threshold")
    p_trace_slow.add_argument("--trace-dir", metavar="DIR",
                              help="stitched-trace directory (default: "
                                   "<cache>/traces)")
    p_trace_slow.add_argument("--limit", type=int, default=20,
                              help="most recent entries shown "
                                   "(default 20)")
    p_trace_slow.add_argument("--json", action="store_true",
                              dest="as_json")
    add_obs(p_trace_slow)

    p_campaign = sub.add_parser(
        "campaign",
        help="fault-injection campaigns: factorial / evolutionary "
             "design-space exploration (see docs/campaign.md)",
    )
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command",
                                             required=True)
    p_camp_run = campaign_sub.add_parser(
        "run", help="execute a campaign spec end to end")
    p_camp_run.add_argument("spec", metavar="SPEC",
                            help="campaign spec file (.toml or .json)")
    p_camp_run.add_argument("--server", metavar="URL",
                            help="submit trials to a running repro serve "
                                 "(default: the spec's server, else local "
                                 "execution)")
    p_camp_run.add_argument("--local", action="store_true",
                            help="force local execution even when the "
                                 "spec names a server")
    p_camp_run.add_argument("--jobs", type=int, default=1,
                            help="local mode: trial worker processes "
                                 "(default 1 = in-process)")
    p_camp_run.add_argument("--timeout", type=float, default=600.0,
                            help="per-trial wall-clock budget in seconds "
                                 "(default 600)")
    p_camp_run.add_argument("--json", action="store_true", dest="as_json",
                            help="print the run summary as JSON")
    add_obs(p_camp_run)
    p_camp_status = campaign_sub.add_parser(
        "status", help="trial counts for a campaign's trial DB")
    p_camp_status.add_argument("name", metavar="NAME",
                               help="campaign name (or a spec file, whose "
                                    "name is used)")
    p_camp_status.add_argument("--json", action="store_true",
                               dest="as_json")
    add_obs(p_camp_status)
    p_camp_report = campaign_sub.add_parser(
        "report", help="fitted coverage-vs-cost factor-effect report")
    p_camp_report.add_argument("name", metavar="NAME",
                               help="campaign spec file (.toml/.json) — "
                                    "needed for the factor levels; a bare "
                                    "name works if the spec was copied "
                                    "into the campaign directory")
    p_camp_report.add_argument("--json", action="store_true",
                               dest="as_json")
    add_obs(p_camp_report)

    return parser


def _factor_for(args) -> Factor:
    mode = ExtractionMode.COMPOSE
    if getattr(args, "mode", "compose") == "conventional":
        mode = ExtractionMode.CONVENTIONAL
    defines = {}
    for item in getattr(args, "define", []):
        name, _, value = item.partition("=")
        defines[name] = value
    return Factor.from_files(args.files, top=args.top, mode=mode,
                             defines=defines or None,
                             include_dirs=getattr(args, "include", []))


def _atpg_options(args) -> AtpgOptions:
    # Intra-run PODEM parallelism is opt-in (--jobs / REPRO_JOBS); a bare
    # single-MUT run stays serial.  Results are identical either way.
    opts = AtpgOptions(
        max_frames=args.frames,
        backtrack_limit=args.backtrack_limit,
        seed=args.seed,
        fault_sim_backend=getattr(args, "backend", None),
        fault_model=getattr(args, "fault_model", "stuck"),
        jobs=resolve_jobs_opt(getattr(args, "jobs", None)),
    )
    if getattr(args, "random_length", None) is not None:
        opts.random_sequence_length = args.random_length
    if getattr(args, "transient_sample", None) is not None:
        opts.transient_sample = args.transient_sample
    return opts


def _lint_config_from_args(args) -> "LintConfig":
    from repro.lint import LintConfig, Waiver

    overrides = {}
    for item in getattr(args, "severity", []):
        rule_id, sep, level = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad --severity {item!r}; expected RULE=LEVEL")
        overrides[rule_id] = level
    waivers = []
    for item in getattr(args, "waive", []):
        spec, _, expires = item.partition("@")
        parts = spec.split(":")
        waivers.append(Waiver(
            rule_id=parts[0],
            module=parts[1] if len(parts) > 1 and parts[1] else None,
            signal=parts[2] if len(parts) > 2 and parts[2] else None,
            reason="--waive",
            expires=expires or None,
        ))
    return LintConfig(
        disabled=set(getattr(args, "disable", [])),
        enabled=set(getattr(args, "enable", [])),
        severity_overrides=overrides,
        waivers=waivers,
    )


def _load_lint_design(args):
    """Parse each file separately so diagnostics carry real file paths."""
    from repro.hierarchy.design import Design
    from repro.lint import LintError
    from repro.verilog import ast as vast
    from repro.verilog.lexer import LexError
    from repro.verilog.parser import ParseError, parse_source
    from repro.verilog.preprocess import Preprocessor, PreprocessError

    defines = {}
    for item in getattr(args, "define", []):
        name, _, value = item.partition("=")
        defines[name] = value
    pp = Preprocessor(defines=defines or None,
                      include_dirs=getattr(args, "include", []))
    source = vast.Source()
    files: Dict[str, str] = {}
    for path in args.files:
        try:
            chunk = pp.process_file(path)
            sub = parse_source(chunk)
        except (PreprocessError, ParseError, LexError, OSError) as exc:
            raise LintError(f"{path}: {exc}") from exc
        for mod in sub.modules:
            files[mod.name] = path
        source.extend(sub)
    return Design(source, top=args.top), files


def _lint_exit_code(result, strict: bool) -> int:
    if result.errors:
        return 2
    if strict and result.warnings:
        return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import default_registry, render_json, render_sarif, \
        render_text, run_lint

    if args.list_rules:
        for rule_ in default_registry().rules():
            print(f"{rule_.rule_id}  {rule_.severity:<7}  "
                  f"{rule_.category:<12}  {rule_.title}")
        return 0
    if not args.files:
        print("error: no Verilog source files given", file=sys.stderr)
        return 1
    design, files = _load_lint_design(args)
    result = run_lint(design, _lint_config_from_args(args), files=files)
    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    rendered = renderer(result)
    if args.lint_out:
        with open(args.lint_out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            if not rendered.endswith("\n"):
                handle.write("\n")
        print(f"wrote {args.format} report to {args.lint_out} "
              f"({result.summary()})")
    else:
        print(rendered)
    return _lint_exit_code(result, args.strict)


def _cmd_explain(args) -> int:
    from repro.lint.explain import explain_query, render_explain_text

    design, _files = _load_lint_design(args)
    payload = explain_query(design, args.target,
                            direction=args.direction,
                            with_witness=args.witness,
                            seed=args.seed)
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_explain_text(payload))
    return 0


def _lint_gate(args, factor: Factor) -> int:
    """Opt-in pre-flight lint for analyze/atpg: errors abort (exit 2)."""
    from repro.lint import run_lint

    from repro.lint.formats import render_finding

    result = run_lint(factor.design)
    if not result.errors:
        _log.info("lint_gate_clean", findings=len(result.diagnostics))
        return 0
    print(f"lint gate failed: {len(result.errors)} error(s)",
          file=sys.stderr)
    for diag in result.errors:
        for line in render_finding(diag):
            print("  " + line, file=sys.stderr)
    return 2


def _cmd_analyze(args) -> int:
    factor = _factor_for(args)
    if getattr(args, "lint", False):
        code = _lint_gate(args, factor)
        if code:
            return code
    result = factor.analyze(args.mut, path=args.path)
    tr = result.transformed
    print(f"MUT {args.mut} at {tr.mut_region}")
    print(f"  extraction : {tr.extraction_seconds:.3f} s "
          f"({result.extraction.tasks_run} tasks, "
          f"{result.extraction.tasks_reused} reused)")
    print(f"  synthesis  : {tr.synthesis_seconds:.3f} s")
    print(f"  transformed: {tr.total_gates} gates "
          f"({tr.mut_gates} MUT + {tr.surrounding_gates} S'), "
          f"{tr.num_pis} PI, {tr.num_pos} PO")
    print(f"  modules    : {', '.join(result.extraction.kept_modules())}")
    if args.out:
        written = result.write_constraints(args.out)
        print(f"  wrote {len(written)} constraint netlists to {args.out}")
    return 0


def _cmd_testability(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path)
    print(result.testability.summary())
    return 0


def _run_one_mut(payload):
    """Full pipeline + ATPG for one MUT (serial and pool paths share it)."""
    files, top, mode, defines, includes, use_piers, opts_fields, mut = \
        payload
    factor = Factor.from_files(
        files, top=top,
        mode=(ExtractionMode.CONVENTIONAL if mode == "conventional"
              else ExtractionMode.COMPOSE),
        defines=defines or None, include_dirs=includes)
    result = factor.analyze(mut, use_piers=use_piers)
    return factor.generate_tests(result, AtpgOptions(**opts_fields))


def _atpg_mut_job(payload) -> tuple:
    """Pool worker: resets the per-process registry so the returned
    snapshot is a mergeable delta."""
    get_registry().reset()
    report = _run_one_mut(payload)
    return payload[-1], report, get_registry().snapshot()


def _cmd_atpg(args) -> int:
    muts = args.mut if isinstance(args.mut, list) else [args.mut]
    if len(muts) != len(set(muts)):
        raise ValueError("duplicate --mut values")
    if len(muts) > 1 and args.path:
        raise ValueError("--path only applies to a single --mut; paths "
                         "are inferred for multi-MUT runs")
    if len(muts) == 1:
        factor = _factor_for(args)
        if getattr(args, "lint", False):
            code = _lint_gate(args, factor)
            if code:
                return code
        result = factor.analyze(muts[0], path=args.path,
                                use_piers=not args.no_piers)
        report = factor.generate_tests(result, _atpg_options(args))
        print(format_table(
            f"ATPG report for {muts[0]}",
            [report.as_row()],
        ))
        print(f"detected {report.detected}, "
              f"untestable {report.untestable}, "
              f"aborted {report.aborted} of {report.total_faults} faults")
        return 0

    if getattr(args, "lint", False):
        code = _lint_gate(args, _factor_for(args))
        if code:
            return code
    opts_fields = dict(
        max_frames=args.frames,
        backtrack_limit=args.backtrack_limit,
        seed=args.seed,
        fault_sim_backend=getattr(args, "backend", None),
        fault_model=getattr(args, "fault_model", "stuck"),
    )
    if getattr(args, "random_length", None) is not None:
        opts_fields["random_sequence_length"] = args.random_length
    if getattr(args, "transient_sample", None) is not None:
        opts_fields["transient_sample"] = args.transient_sample
    payloads = [(list(args.files), args.top,
                 getattr(args, "mode", "compose"),
                 {k: v for k, v in
                  (item.partition("=")[::2] for item in args.define)},
                 list(args.include), not args.no_piers, opts_fields, mut)
                for mut in muts]
    jobs = min(resolve_jobs(getattr(args, "jobs", None)), len(muts))
    rows = []
    totals = {"detected": 0, "faults": 0}
    if jobs <= 1:
        reports = [_run_one_mut(payload) for payload in payloads]
    else:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        parent = get_registry()
        reports = []
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=context) as pool:
            for _mut, report, metrics in pool.map(_atpg_mut_job, payloads):
                parent.merge_snapshot(metrics)
                reports.append(report)
    for report in reports:
        totals["detected"] += report.detected
        totals["faults"] += report.total_faults
        rows.append(report.as_row())
    print(format_table(
        f"ATPG reports for {len(muts)} MUTs (jobs={jobs})", rows))
    print(f"detected {totals['detected']} of {totals['faults']} faults "
          f"across {len(muts)} MUTs")
    return 0


def _phase_of(name: str) -> str:
    return name.split(".", 1)[0]


def _aggregate_phases(root: Span) -> Dict[str, Dict[str, float]]:
    """Per-phase wall/CPU totals over the outermost span of each phase.

    A span counts toward its phase only when its parent belongs to a
    different phase, so nested same-phase spans (``atpg.podem`` under
    ``atpg``) are not double counted.
    """
    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: Span, parent_phase: Optional[str]) -> None:
        phase = _phase_of(node.name)
        if phase in _PROFILE_PHASES and phase != parent_phase:
            bucket = totals.setdefault(phase, {"wall_s": 0.0, "cpu_s": 0.0})
            bucket["wall_s"] += node.wall_seconds
            bucket["cpu_s"] += node.cpu_seconds
        for child in node.children:
            visit(child, phase)

    for child in root.children:
        visit(child, None)
    return totals


def _profile_rows(root: Span) -> List[Dict[str, object]]:
    totals = _aggregate_phases(root)
    total_wall = root.wall_seconds
    total_cpu = root.cpu_seconds
    rows: List[Dict[str, object]] = []
    covered_wall = 0.0
    covered_cpu = 0.0
    for phase in _PROFILE_PHASES:
        bucket = totals.get(phase, {"wall_s": 0.0, "cpu_s": 0.0})
        covered_wall += bucket["wall_s"]
        covered_cpu += bucket["cpu_s"]
        share = 100.0 * bucket["wall_s"] / total_wall if total_wall else 0.0
        rows.append({
            "phase": phase,
            "wall_s": f"{bucket['wall_s']:.4f}",
            "cpu_s": f"{bucket['cpu_s']:.4f}",
            "wall_%": round(share, 1),
        })
    other_wall = max(0.0, total_wall - covered_wall)
    rows.append({
        "phase": "(other)",
        "wall_s": f"{other_wall:.4f}",
        "cpu_s": f"{max(0.0, total_cpu - covered_cpu):.4f}",
        "wall_%": round(
            100.0 * other_wall / total_wall if total_wall else 0.0, 1),
    })
    rows.append({
        "phase": "total",
        "wall_s": f"{total_wall:.4f}",
        "cpu_s": f"{total_cpu:.4f}",
        "wall_%": 100.0,
    })
    return rows


_PROFILE_METRIC_PREFIXES = (
    "verilog.", "extract.", "compose.", "synth.", "atpg.", "fault_sim.",
    "store.", "campaign.",
)


def _profile_metric_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name, snap in get_registry().snapshot().items():
        if not name.startswith(_PROFILE_METRIC_PREFIXES):
            continue
        if snap["type"] == "histogram":
            value = (f"n={snap['count']} mean={snap['mean']:.4g} "
                     f"max={snap['max']:.4g}")
        else:
            value = snap["value"]
        rows.append({"metric": name, "type": snap["type"], "value": value})
    return rows


def _cmd_profile(args) -> int:
    with get_tracer().span("profile", mut=args.mut) as root:
        factor = _factor_for(args)
        result = factor.analyze(args.mut, path=args.path,
                                use_piers=not args.no_piers)
        report = factor.generate_tests(result, _atpg_options(args))

    print(format_table(
        f"Per-phase profile: MUT {args.mut} at {result.mut.path}",
        _profile_rows(root),
        columns=["phase", "wall_s", "cpu_s", "wall_%"],
    ))
    metric_rows = _profile_metric_rows()
    if metric_rows:
        print(format_table("Pipeline metrics", metric_rows,
                           columns=["metric", "type", "value"]))
    print(f"coverage {report.coverage_percent:.2f} %, "
          f"efficiency {report.efficiency_percent:.2f} %, "
          f"{report.num_vectors} vectors "
          f"({report.detected}/{report.total_faults} faults detected)")
    return 0


def _cmd_stats(args) -> int:
    from repro.store import synthesize_cached

    factor = _factor_for(args)
    netlist = synthesize_cached(factor.design, root=args.module)
    stats = netlist_stats(netlist)
    print(format_table(f"Netlist statistics: {netlist.name}",
                       [stats.as_row()]))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.micro import run_bench

    suites = list(args.suite)
    if "all" in suites:
        suites = ["fault_sim", "atpg", "warm_pipeline", "serve",
                  "campaign"]
    return run_bench(out_dir=args.out, quick=args.quick,
                     jobs=args.jobs, seed=args.seed,
                     suites=suites or None)


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        journal_path=args.journal,
        drain_timeout=args.drain_timeout,
        job_timeout=args.job_timeout,
        worker_mode=args.worker_mode,
    )

    def on_started(address: str) -> None:
        # Parsed by scripts/tests that start the server with --port 0.
        print(f"serving on {address}", flush=True)

    return run_server(config, on_started=on_started)


def _submit_source(args) -> str:
    """Local preprocessing, so the server only ever sees plain Verilog."""
    from repro.verilog.preprocess import Preprocessor

    defines = {}
    for item in args.define:
        name, _, value = item.partition("=")
        defines[name] = value
    pp = Preprocessor(defines=defines or None, include_dirs=args.include)
    return "\n".join(pp.process_file(path) for path in args.files)


def _cmd_submit(args) -> int:
    from repro.serve import ServeClient, ServeError

    if bool(args.files) == bool(args.design):
        print("error: pass Verilog files or --design, not both/neither",
              file=sys.stderr)
        return 1
    spec = {
        "op": args.op,
        "target": args.target,
        "design": args.design,
        "source": _submit_source(args) if args.files else None,
        "top": args.top,
        "mut": args.mut,
        "path": args.path,
        "mode": args.mode,
        "frames": args.frames,
        "backtrack_limit": args.backtrack_limit,
        "seed": args.seed,
        "backend": args.backend,
        "fault_model": args.fault_model,
        "random_length": args.random_length,
        "transient_sample": args.transient_sample,
        "use_piers": not args.no_piers,
        "strict": args.strict,
        "jobs": args.jobs,
        "deadline_s": args.deadline,
    }
    client = ServeClient(args.server)
    try:
        response = client.submit(spec)
        job = response["job"]
        if not args.as_json:
            origin = job.get("served_from") or (
                "coalesced" if response.get("coalesced") else "queued")
            print(f"job {job['id']}: {job['status']} ({origin})")
        if job["status"] not in ("done", "failed"):
            if args.watch:
                _watch_job(client, job["id"])
                job = client.job(job["id"])
            elif args.wait:
                job = client.wait(job["id"], timeout=args.timeout)
    except ServeError as exc:
        if exc.status == 429:
            print(f"rejected: {exc.message}", file=sys.stderr)
            return 75  # EX_TEMPFAIL: back off and retry
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(job, indent=2))
    else:
        _print_job_outcome(job)
    if job["status"] == "failed":
        return 1
    result = job.get("result") or {}
    if args.op == "lint" and not result.get("clean", True):
        return 2
    return 0


def _print_job_outcome(job: Dict[str, object]) -> None:
    result = job.get("result")
    if job["status"] == "failed":
        print(f"job {job['id']} failed: {job.get('error')}",
              file=sys.stderr)
        return
    if not isinstance(result, dict):
        print(f"job {job['id']}: {job['status']}")
        return
    op = result.get("op")
    if op == "atpg":
        print(format_table(f"ATPG report for {result.get('mut')}",
                           [{k: v for k, v in result.items()
                             if k in ("name", "faults", "detected", "cov%",
                                      "eff%", "seu", "seu_detected",
                                      "seu_cov%", "tgen_s", "total_s",
                                      "tests", "vectors")}]))
    elif op in ("testability", "lint", "explain"):
        print(result.get("summary", ""))
    elif op == "analyze":
        print(f"MUT {result.get('mut')} at {result.get('mut_region')}: "
              f"{result.get('total_gates')} gates "
              f"({result.get('mut_gates')} MUT + "
              f"{result.get('surrounding_gates')} S'), "
              f"{result.get('num_pis')} PI, {result.get('num_pos')} PO")
    served = job.get("served_from")
    if served and served != "pipeline":
        print(f"(served from {served})")


def _watch_job(client, job_id: str) -> None:
    """Render a job's event stream as a live one-line progress display.

    Progress lines overwrite each other on stderr (carriage return, no
    newline) so the terminal shows one updating status line; lifecycle
    events print permanently.  Returns when the stream reaches a
    terminal event or the connection drops — the caller re-fetches the
    job either way.
    """
    live = False

    def clear_line() -> None:
        nonlocal live
        if live:
            print("\r\x1b[K", end="", file=sys.stderr)
            live = False

    try:
        for event in client.events(job_id):
            kind = event.get("event")
            if kind in ("keepalive", "heartbeat"):
                continue
            if kind == "progress":
                fields = ", ".join(
                    f"{k}={v}" for k, v in sorted(event.items())
                    if k not in ("event", "phase", "seq", "t"))
                line = f"[{event.get('phase')}] {fields}"
                print(f"\r\x1b[K{line[:120]}", end="",
                      file=sys.stderr, flush=True)
                live = True
                continue
            clear_line()
            if kind == "done":
                wall = event.get("wall_s")
                extra = f" in {wall:.2f}s" if isinstance(
                    wall, (int, float)) else ""
                print(f"job {job_id} done{extra}", file=sys.stderr)
            elif kind == "failed":
                print(f"job {job_id} failed: {event.get('error')}",
                      file=sys.stderr)
            else:
                print(f"job {job_id}: {kind}", file=sys.stderr)
    except (OSError, TimeoutError) as exc:
        clear_line()
        print(f"watch interrupted ({exc}); fetching final state",
              file=sys.stderr)
    finally:
        clear_line()


def _cmd_jobs(args) -> int:
    from repro.serve import ServeClient, ServeError
    from repro.serve.client import jobs_summary_rows

    client = ServeClient(args.server)
    if args.follow:
        try:
            for event in client.events(args.follow, since=args.since):
                if event.get("event") == "keepalive":
                    continue
                print(json.dumps(event, sort_keys=True), flush=True)
                if event.get("event") in ("done", "failed"):
                    return 0 if event["event"] == "done" else 1
        except (OSError, ServeError, TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    try:
        listing = client.jobs(status=args.status)
    except (OSError, ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(listing, indent=2))
        return 0
    rows = jobs_summary_rows(listing)
    if not rows:
        print("no jobs")
    else:
        print(format_table(
            f"Jobs ({listing['queued']} queued, "
            f"{listing['running']} running)", rows))
    return 0


def _default_trace_dir() -> str:
    import os

    from repro.store import default_cache_dir

    return os.path.join(default_cache_dir(), "traces")


def _cmd_trace(args) -> int:
    import os

    from repro.obs.trace import read_trace_jsonl
    from repro.obs.traceview import top_spans, trace_summary, waterfall_rows

    trace_dir = args.trace_dir or _default_trace_dir()
    if args.trace_command == "slow":
        path = os.path.join(trace_dir, "slow_jobs.jsonl")
        entries = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a crashed writer
                    if isinstance(entry, dict):
                        entries.append(entry)
        except OSError:
            pass
        entries = entries[-args.limit:]
        if args.as_json:
            print(json.dumps(entries, indent=2))
            return 0
        if not entries:
            print(f"no slow jobs recorded under {trace_dir}")
            return 0
        rows = []
        for entry in entries:
            phases = entry.get("phases") or {}
            top = max(phases.items(), key=lambda kv: kv[1])[0] \
                if phases else "-"
            rows.append({
                "job": entry.get("id", "?"),
                "op": entry.get("op", "-"),
                "wall_s": f"{entry.get('wall_s', 0.0):.2f}",
                "threshold_s": f"{entry.get('threshold_s', 0.0):.2f}",
                "hottest_phase": top,
                "trace": entry.get("trace") or "-",
            })
        print(format_table(f"Slow jobs (last {len(rows)})", rows))
        return 0

    # trace show: operand is a file path or a bare job id in trace_dir.
    path = args.trace
    if not os.path.exists(path):
        candidate = os.path.join(trace_dir, f"{args.trace}.jsonl")
        if os.path.exists(candidate):
            path = candidate
        else:
            print(f"error: no trace file {args.trace!r} "
                  f"(also tried {candidate})", file=sys.stderr)
            return 1
    spans = read_trace_jsonl(path)
    if not spans:
        print(f"error: no spans in {path}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(spans, indent=2))
        return 0
    summary = trace_summary(spans)
    print(f"trace {', '.join(summary['trace_ids']) or '?'}: "
          f"{summary['spans']} spans across "
          f"{', '.join(summary['processes']) or '?'}; "
          f"{summary['total_wall_s']:.3f}s total")
    print(format_table("Waterfall", waterfall_rows(spans)))
    rows = top_spans(spans, limit=args.top_spans)
    print(format_table("Top spans by wall time", rows))
    return 0


def _human_bytes(num: int) -> str:
    value = float(num)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError  # pragma: no cover


def _parse_size(text: str) -> int:
    """``512M`` / ``2G`` / ``100KiB`` / plain bytes -> byte count."""
    match = re.fullmatch(
        r"\s*(\d+(?:\.\d+)?)\s*([KkMmGg]i?[Bb]?|[Bb]?)\s*", text)
    if not match:
        raise ValueError(f"bad size {text!r}; expected e.g. 512M or 2G")
    value = float(match.group(1))
    unit = match.group(2).lower().rstrip("b").rstrip("i")
    scale = {"": 1, "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}[unit]
    return int(value * scale)


def _cmd_cache(args) -> int:
    from repro.store import get_store, store_disabled

    store = get_store()
    if store_disabled():
        print("artifact store disabled (REPRO_NO_CACHE is set)")
        return 0
    if args.cache_command == "stats":
        stats = store.stats()
        rows = [
            {"stage": stage,
             "entries": bucket["entries"],
             "size": _human_bytes(bucket["bytes"])}
            for stage, bucket in sorted(stats.items())
            if stage != "total"
        ]
        rows.append({"stage": "total",
                     "entries": stats["total"]["entries"],
                     "size": _human_bytes(stats["total"]["bytes"])})
        print(format_table(f"Artifact store: {store.root}", rows,
                           columns=["stage", "entries", "size"]))
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cached artifacts from {store.root}")
        return 0
    if args.cache_command == "gc":
        max_bytes = _parse_size(args.max_size)
        removed, remaining = store.gc(max_bytes)
        print(f"evicted {removed} artifacts; store now "
              f"{_human_bytes(remaining)} (cap {_human_bytes(max_bytes)})")
        return 0
    raise AssertionError  # pragma: no cover - argparse enforces choices


def _cmd_piers(args) -> int:
    factor = _factor_for(args)
    rows = []
    for pier in factor.piers():
        rows.append({
            "module": pier.module,
            "register": pier.signal,
            "loadable": "yes" if pier.loadable else "no",
            "storable": "yes" if pier.storable else "no",
            "PIER": "yes" if pier.is_pier else "no",
        })
    print(format_table("PI/PO-accessible registers", rows))
    return 0


def _campaign_spec_for(name_or_path: str):
    """A spec file path, or a bare campaign name whose ``run`` left a
    resolved ``spec.json`` in the campaign directory."""
    import os

    from repro.campaign import CampaignSpec, campaign_dir

    if os.path.exists(name_or_path):
        return CampaignSpec.load(name_or_path)
    saved = os.path.join(campaign_dir(name_or_path), "spec.json")
    if os.path.exists(saved):
        return CampaignSpec.load(saved)
    raise ValueError(
        f"no spec file {name_or_path!r} and no saved spec at {saved}")


def _print_campaign_report(name: str, report: Dict[str, object]) -> None:
    effects = report.get("effects") or []
    if not effects:
        print("no usable trials yet (no effects to fit)")
        return
    rows = [
        {"factor": e["factor"],
         "coverage_effect": f"{e['coverage_effect']:+.4f}",
         "cost_effect": f"{e['cost_effect']:+.4f}"}
        for e in effects
    ]
    print(format_table(
        f"Factor effects: {name} ({report['trials']} trials, "
        f"ranked by |coverage effect|)", rows,
        columns=["factor", "coverage_effect", "cost_effect"]))
    print(f"model fit: coverage R^2 {report['r2_coverage']:.3f} "
          f"(intercept {report['coverage_intercept']:.2f}), "
          f"cost R^2 {report['r2_cost']:.3f} "
          f"(intercept {report['cost_intercept']:.4f} s)")
    if report.get("recommended") is not None:
        knobs = ", ".join(f"{k}={v}" for k, v in
                          sorted(report["recommended"].items()))
        print(f"recommended config: {knobs} "
              f"(best observed {report['best_fitness']:.2f} "
              f"coverage%/cpu-s)")


def _cmd_campaign(args) -> int:
    import dataclasses
    import os

    from repro.campaign import CampaignRunner, TrialDB, campaign_dir, \
        fit_report

    if args.campaign_command == "run":
        spec = _campaign_spec_for(args.spec)
        runner = CampaignRunner(spec, server=args.server, local=args.local,
                                jobs=args.jobs,
                                trial_timeout=args.timeout)
        summary = runner.run()
        # A resolved copy lets status/report work from the bare name.
        os.makedirs(campaign_dir(spec.name), exist_ok=True)
        atomic_write_text(
            os.path.join(campaign_dir(spec.name), "spec.json"),
            json.dumps(dataclasses.asdict(spec), indent=2) + "\n")
        if args.as_json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        where = summary["server"] or "local"
        print(f"campaign {spec.name} ({spec.mode}, via {where}): "
              f"{summary['trials']} trials -> {summary['db']}")
        if "factorial" in summary:
            f = summary["factorial"]
            print(f"  factorial   : {f['points']} design points, "
                  f"{f['trials']} trials, {f['failed']} failed")
        if "evolutionary" in summary:
            e = summary["evolutionary"]
            history = " -> ".join(f"{h:.2f}" for h in e["history"])
            print(f"  evolutionary: best fitness {e['best_fitness']:.2f} "
                  f"after {e['generations']} generations "
                  f"({e['evaluations']} evaluations); best/gen {history}")
        _print_campaign_report(spec.name, summary["report"])
        return 0

    if args.campaign_command == "status":
        name = args.name
        if os.path.exists(name):
            name = _campaign_spec_for(name).name
        summary = TrialDB.for_campaign(name).summary()
        if args.as_json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        if not summary["trials"]:
            print(f"campaign {name}: no trials recorded "
                  f"(DB {summary['path']})")
            return 0
        phases = ", ".join(f"{k}={v}" for k, v in
                           sorted(summary["phases"].items()))
        print(f"campaign {name}: {summary['trials']} trials ({phases}); "
              f"{summary['coalesced']} deduplicated, "
              f"{summary['failed']} failed")
        print(f"  DB: {summary['path']}")
        return 0

    if args.campaign_command == "report":
        spec = _campaign_spec_for(args.name)
        rows = TrialDB.for_campaign(spec.name).rows()
        report = fit_report(rows, spec.ordered_factors()).as_dict()
        if args.as_json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        _print_campaign_report(spec.name, report)
        return 0

    raise AssertionError  # pragma: no cover - argparse enforces choices


_COMMANDS = {
    "analyze": _cmd_analyze,
    "testability": _cmd_testability,
    "atpg": _cmd_atpg,
    "lint": _cmd_lint,
    "explain": _cmd_explain,
    "profile": _cmd_profile,
    "stats": _cmd_stats,
    "piers": _cmd_piers,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "trace": _cmd_trace,
    "campaign": _cmd_campaign,
}


def _write_observability(args) -> None:
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        get_tracer().write_json(trace_out)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        if metrics_out.endswith(".prom"):
            text = get_registry().to_prometheus()
        else:
            text = json.dumps(get_registry().snapshot(), indent=2) + "\n"
        atomic_write_text(metrics_out, text)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    # SIGTERM becomes an exception so long atpg/bench runs exit cleanly
    # (143) with partial metrics flushed; `repro serve` overrides this
    # with loop-level handlers that drain gracefully instead.
    install_sigterm_handler()
    # Fresh per-invocation state so --trace-out / --metrics-out describe
    # exactly this run even when main() is driven in-process.
    get_tracer().reset()
    get_registry().reset()
    try:
        code = _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        code = 130
    except Terminated:
        print("terminated", file=sys.stderr)
        code = SIGTERM_EXIT_CODE
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        code = 1
    except Exception:
        _log.exception("unhandled_error", command=args.command)
        try:
            _write_observability(args)
        except OSError:
            pass
        raise
    try:
        _write_observability(args)
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
