"""Command-line interface: the FACTOR tool.

Usage (after ``pip install -e .``)::

    python -m repro analyze DESIGN.v --top arm --mut arm_alu \
        --path u_core.u_dp.u_alu. --out constraints/
    python -m repro testability DESIGN.v --top arm --mut arm_alu
    python -m repro atpg DESIGN.v --top arm --mut arm_alu --frames 4
    python -m repro profile DESIGN.v --top arm --mut arm_alu
    python -m repro stats DESIGN.v --top arm
    python -m repro piers DESIGN.v --top arm

Subcommands:

- ``analyze``      extract constraints, build the transformed module and
                   write the constraint netlists out as Verilog,
- ``testability``  Section 4.2 report: hard-coded inputs, empty chains,
- ``atpg``         generate tests for the MUT inside the transformed module,
- ``profile``      full pipeline run with a per-phase time/metric breakdown,
- ``stats``        netlist statistics for the whole design (or one module),
- ``piers``        list PI/PO-accessible registers.

Every subcommand also takes the observability flags ``--log-level``,
``--trace-out FILE`` (span tree as JSON; ``.jsonl`` / ``.chrome.json``
variants by extension) and ``--metrics-out FILE`` (metrics registry
snapshot as JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro import __version__
from repro.atpg.engine import AtpgOptions
from repro.core.extractor import ExtractionMode
from repro.core.factor import Factor
from repro.core.report import format_table
from repro.obs import (
    Span,
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
)
from repro.synth import synthesize
from repro.synth.stats import netlist_stats

_log = get_logger("cli")

# Pipeline phases reported by ``repro profile``, in execution order.
_PROFILE_PHASES = ["parse", "extract", "compose", "synth",
                   "testability", "piers", "atpg"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FACTOR: functional constraint extraction for "
                    "hierarchical test generation (DATE 2002 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, needs_mut=True):
        p.add_argument("files", nargs="+", help="Verilog source files")
        p.add_argument("--top", help="top module (inferred when unique)")
        p.add_argument("--define", "-D", action="append", default=[],
                       metavar="NAME[=VALUE]",
                       help="preprocessor macro (repeatable)")
        p.add_argument("--include", "-I", action="append", default=[],
                       metavar="DIR", help="`include search directory "
                                           "(repeatable)")
        p.add_argument("--log-level", default="warning",
                       choices=["debug", "info", "warning", "error"],
                       help="structured log verbosity (default: warning)")
        p.add_argument("--trace-out", metavar="FILE",
                       help="write the span trace as JSON (.jsonl and "
                            ".chrome.json select other formats)")
        p.add_argument("--metrics-out", metavar="FILE",
                       help="write the metrics registry snapshot as JSON")
        if needs_mut:
            p.add_argument("--mut", required=True,
                           help="module under test (module name)")
            p.add_argument("--path",
                           help="instance path, e.g. u_core.u_dp.u_alu. "
                                "(inferred when the module has one instance)")
            p.add_argument(
                "--mode", choices=["compose", "conventional"],
                default="compose",
                help="extraction mode (default: compose)",
            )

    def add_atpg_options(p):
        p.add_argument("--frames", type=int, default=4,
                       help="maximum time frames (default 4)")
        p.add_argument("--backtrack-limit", type=int, default=300)
        p.add_argument("--no-piers", action="store_true",
                       help="disable PIER pseudo PI/PO")
        p.add_argument("--seed", type=int, default=2002)

    p_analyze = sub.add_parser("analyze", help="extract constraints and "
                                               "build the transformed module")
    add_common(p_analyze)
    p_analyze.add_argument("--out", help="directory for constraint netlists")

    p_test = sub.add_parser("testability", help="Section 4.2 testability "
                                                "report")
    add_common(p_test)

    p_atpg = sub.add_parser("atpg", help="generate tests for the MUT")
    add_common(p_atpg)
    add_atpg_options(p_atpg)

    p_profile = sub.add_parser(
        "profile",
        help="run the full pipeline and print a per-phase "
             "time/metric breakdown",
    )
    add_common(p_profile)
    add_atpg_options(p_profile)

    p_stats = sub.add_parser("stats", help="netlist statistics")
    add_common(p_stats, needs_mut=False)
    p_stats.add_argument("--module", help="synthesize one module stand-alone")

    p_piers = sub.add_parser("piers", help="list PI/PO-accessible registers")
    add_common(p_piers, needs_mut=False)

    return parser


def _factor_for(args) -> Factor:
    mode = ExtractionMode.COMPOSE
    if getattr(args, "mode", "compose") == "conventional":
        mode = ExtractionMode.CONVENTIONAL
    defines = {}
    for item in getattr(args, "define", []):
        name, _, value = item.partition("=")
        defines[name] = value
    return Factor.from_files(args.files, top=args.top, mode=mode,
                             defines=defines or None,
                             include_dirs=getattr(args, "include", []))


def _atpg_options(args) -> AtpgOptions:
    return AtpgOptions(
        max_frames=args.frames,
        backtrack_limit=args.backtrack_limit,
        seed=args.seed,
    )


def _cmd_analyze(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path)
    tr = result.transformed
    print(f"MUT {args.mut} at {tr.mut_region}")
    print(f"  extraction : {tr.extraction_seconds:.3f} s "
          f"({result.extraction.tasks_run} tasks, "
          f"{result.extraction.tasks_reused} reused)")
    print(f"  synthesis  : {tr.synthesis_seconds:.3f} s")
    print(f"  transformed: {tr.total_gates} gates "
          f"({tr.mut_gates} MUT + {tr.surrounding_gates} S'), "
          f"{tr.num_pis} PI, {tr.num_pos} PO")
    print(f"  modules    : {', '.join(result.extraction.kept_modules())}")
    if args.out:
        written = result.write_constraints(args.out)
        print(f"  wrote {len(written)} constraint netlists to {args.out}")
    return 0


def _cmd_testability(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path)
    print(result.testability.summary())
    return 0


def _cmd_atpg(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path,
                            use_piers=not args.no_piers)
    report = factor.generate_tests(result, _atpg_options(args))
    print(format_table(
        f"ATPG report for {args.mut}",
        [report.as_row()],
    ))
    print(f"detected {report.detected}, untestable {report.untestable}, "
          f"aborted {report.aborted} of {report.total_faults} faults")
    return 0


def _phase_of(name: str) -> str:
    return name.split(".", 1)[0]


def _aggregate_phases(root: Span) -> Dict[str, Dict[str, float]]:
    """Per-phase wall/CPU totals over the outermost span of each phase.

    A span counts toward its phase only when its parent belongs to a
    different phase, so nested same-phase spans (``atpg.podem`` under
    ``atpg``) are not double counted.
    """
    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: Span, parent_phase: Optional[str]) -> None:
        phase = _phase_of(node.name)
        if phase in _PROFILE_PHASES and phase != parent_phase:
            bucket = totals.setdefault(phase, {"wall_s": 0.0, "cpu_s": 0.0})
            bucket["wall_s"] += node.wall_seconds
            bucket["cpu_s"] += node.cpu_seconds
        for child in node.children:
            visit(child, phase)

    for child in root.children:
        visit(child, None)
    return totals


def _profile_rows(root: Span) -> List[Dict[str, object]]:
    totals = _aggregate_phases(root)
    total_wall = root.wall_seconds
    total_cpu = root.cpu_seconds
    rows: List[Dict[str, object]] = []
    covered_wall = 0.0
    covered_cpu = 0.0
    for phase in _PROFILE_PHASES:
        bucket = totals.get(phase, {"wall_s": 0.0, "cpu_s": 0.0})
        covered_wall += bucket["wall_s"]
        covered_cpu += bucket["cpu_s"]
        share = 100.0 * bucket["wall_s"] / total_wall if total_wall else 0.0
        rows.append({
            "phase": phase,
            "wall_s": f"{bucket['wall_s']:.4f}",
            "cpu_s": f"{bucket['cpu_s']:.4f}",
            "wall_%": round(share, 1),
        })
    other_wall = max(0.0, total_wall - covered_wall)
    rows.append({
        "phase": "(other)",
        "wall_s": f"{other_wall:.4f}",
        "cpu_s": f"{max(0.0, total_cpu - covered_cpu):.4f}",
        "wall_%": round(
            100.0 * other_wall / total_wall if total_wall else 0.0, 1),
    })
    rows.append({
        "phase": "total",
        "wall_s": f"{total_wall:.4f}",
        "cpu_s": f"{total_cpu:.4f}",
        "wall_%": 100.0,
    })
    return rows


_PROFILE_METRIC_PREFIXES = (
    "verilog.", "extract.", "compose.", "synth.", "atpg.", "fault_sim.",
)


def _profile_metric_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name, snap in get_registry().snapshot().items():
        if not name.startswith(_PROFILE_METRIC_PREFIXES):
            continue
        if snap["type"] == "histogram":
            value = (f"n={snap['count']} mean={snap['mean']:.4g} "
                     f"max={snap['max']:.4g}")
        else:
            value = snap["value"]
        rows.append({"metric": name, "type": snap["type"], "value": value})
    return rows


def _cmd_profile(args) -> int:
    with get_tracer().span("profile", mut=args.mut) as root:
        factor = _factor_for(args)
        result = factor.analyze(args.mut, path=args.path,
                                use_piers=not args.no_piers)
        report = factor.generate_tests(result, _atpg_options(args))

    print(format_table(
        f"Per-phase profile: MUT {args.mut} at {result.mut.path}",
        _profile_rows(root),
        columns=["phase", "wall_s", "cpu_s", "wall_%"],
    ))
    metric_rows = _profile_metric_rows()
    if metric_rows:
        print(format_table("Pipeline metrics", metric_rows,
                           columns=["metric", "type", "value"]))
    print(f"coverage {report.coverage_percent:.2f} %, "
          f"efficiency {report.efficiency_percent:.2f} %, "
          f"{report.num_vectors} vectors "
          f"({report.detected}/{report.total_faults} faults detected)")
    return 0


def _cmd_stats(args) -> int:
    factor = _factor_for(args)
    netlist = synthesize(factor.design, root=args.module)
    stats = netlist_stats(netlist)
    print(format_table(f"Netlist statistics: {netlist.name}",
                       [stats.as_row()]))
    return 0


def _cmd_piers(args) -> int:
    factor = _factor_for(args)
    rows = []
    for pier in factor.piers():
        rows.append({
            "module": pier.module,
            "register": pier.signal,
            "loadable": "yes" if pier.loadable else "no",
            "storable": "yes" if pier.storable else "no",
            "PIER": "yes" if pier.is_pier else "no",
        })
    print(format_table("PI/PO-accessible registers", rows))
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "testability": _cmd_testability,
    "atpg": _cmd_atpg,
    "profile": _cmd_profile,
    "stats": _cmd_stats,
    "piers": _cmd_piers,
}


def _write_observability(args) -> None:
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        get_tracer().write_json(trace_out)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(get_registry().snapshot(), handle, indent=2)
            handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    # Fresh per-invocation state so --trace-out / --metrics-out describe
    # exactly this run even when main() is driven in-process.
    get_tracer().reset()
    get_registry().reset()
    try:
        code = _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        code = 130
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        code = 1
    except Exception:
        _log.exception("unhandled_error", command=args.command)
        try:
            _write_observability(args)
        except OSError:
            pass
        raise
    try:
        _write_observability(args)
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
