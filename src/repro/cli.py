"""Command-line interface: the FACTOR tool.

Usage (after ``pip install -e .``)::

    python -m repro analyze DESIGN.v --top arm --mut arm_alu \
        --path u_core.u_dp.u_alu. --out constraints/
    python -m repro testability DESIGN.v --top arm --mut arm_alu
    python -m repro atpg DESIGN.v --top arm --mut arm_alu --frames 4
    python -m repro stats DESIGN.v --top arm
    python -m repro piers DESIGN.v --top arm

Subcommands:

- ``analyze``      extract constraints, build the transformed module and
                   write the constraint netlists out as Verilog,
- ``testability``  Section 4.2 report: hard-coded inputs, empty chains,
- ``atpg``         generate tests for the MUT inside the transformed module,
- ``stats``        netlist statistics for the whole design (or one module),
- ``piers``        list PI/PO-accessible registers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.atpg.engine import AtpgOptions
from repro.core.extractor import ExtractionMode
from repro.core.factor import Factor
from repro.core.report import format_table
from repro.synth import synthesize
from repro.synth.stats import netlist_stats


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FACTOR: functional constraint extraction for "
                    "hierarchical test generation (DATE 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, needs_mut=True):
        p.add_argument("files", nargs="+", help="Verilog source files")
        p.add_argument("--top", help="top module (inferred when unique)")
        p.add_argument("--define", "-D", action="append", default=[],
                       metavar="NAME[=VALUE]",
                       help="preprocessor macro (repeatable)")
        p.add_argument("--include", "-I", action="append", default=[],
                       metavar="DIR", help="`include search directory "
                                           "(repeatable)")
        if needs_mut:
            p.add_argument("--mut", required=True,
                           help="module under test (module name)")
            p.add_argument("--path",
                           help="instance path, e.g. u_core.u_dp.u_alu. "
                                "(inferred when the module has one instance)")
            p.add_argument(
                "--mode", choices=["compose", "conventional"],
                default="compose",
                help="extraction mode (default: compose)",
            )

    p_analyze = sub.add_parser("analyze", help="extract constraints and "
                                               "build the transformed module")
    add_common(p_analyze)
    p_analyze.add_argument("--out", help="directory for constraint netlists")

    p_test = sub.add_parser("testability", help="Section 4.2 testability "
                                                "report")
    add_common(p_test)

    p_atpg = sub.add_parser("atpg", help="generate tests for the MUT")
    add_common(p_atpg)
    p_atpg.add_argument("--frames", type=int, default=4,
                        help="maximum time frames (default 4)")
    p_atpg.add_argument("--backtrack-limit", type=int, default=300)
    p_atpg.add_argument("--no-piers", action="store_true",
                        help="disable PIER pseudo PI/PO")
    p_atpg.add_argument("--seed", type=int, default=2002)

    p_stats = sub.add_parser("stats", help="netlist statistics")
    add_common(p_stats, needs_mut=False)
    p_stats.add_argument("--module", help="synthesize one module stand-alone")

    p_piers = sub.add_parser("piers", help="list PI/PO-accessible registers")
    add_common(p_piers, needs_mut=False)

    return parser


def _factor_for(args) -> Factor:
    mode = ExtractionMode.COMPOSE
    if getattr(args, "mode", "compose") == "conventional":
        mode = ExtractionMode.CONVENTIONAL
    defines = {}
    for item in getattr(args, "define", []):
        name, _, value = item.partition("=")
        defines[name] = value
    return Factor.from_files(args.files, top=args.top, mode=mode,
                             defines=defines or None,
                             include_dirs=getattr(args, "include", []))


def _cmd_analyze(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path)
    tr = result.transformed
    print(f"MUT {args.mut} at {tr.mut_region}")
    print(f"  extraction : {tr.extraction_seconds:.3f} s "
          f"({result.extraction.tasks_run} tasks, "
          f"{result.extraction.tasks_reused} reused)")
    print(f"  synthesis  : {tr.synthesis_seconds:.3f} s")
    print(f"  transformed: {tr.total_gates} gates "
          f"({tr.mut_gates} MUT + {tr.surrounding_gates} S'), "
          f"{tr.num_pis} PI, {tr.num_pos} PO")
    print(f"  modules    : {', '.join(result.extraction.kept_modules())}")
    if args.out:
        written = result.write_constraints(args.out)
        print(f"  wrote {len(written)} constraint netlists to {args.out}")
    return 0


def _cmd_testability(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path)
    print(result.testability.summary())
    return 0


def _cmd_atpg(args) -> int:
    factor = _factor_for(args)
    result = factor.analyze(args.mut, path=args.path,
                            use_piers=not args.no_piers)
    options = AtpgOptions(
        max_frames=args.frames,
        backtrack_limit=args.backtrack_limit,
        seed=args.seed,
    )
    report = factor.generate_tests(result, options)
    print(format_table(
        f"ATPG report for {args.mut}",
        [report.as_row()],
    ))
    print(f"detected {report.detected}, untestable {report.untestable}, "
          f"aborted {report.aborted} of {report.total_faults} faults")
    return 0


def _cmd_stats(args) -> int:
    factor = _factor_for(args)
    netlist = synthesize(factor.design, root=args.module)
    stats = netlist_stats(netlist)
    print(format_table(f"Netlist statistics: {netlist.name}",
                       [stats.as_row()]))
    return 0


def _cmd_piers(args) -> int:
    factor = _factor_for(args)
    rows = []
    for pier in factor.piers():
        rows.append({
            "module": pier.module,
            "register": pier.signal,
            "loadable": "yes" if pier.loadable else "no",
            "storable": "yes" if pier.storable else "no",
            "PIER": "yes" if pier.is_pier else "no",
        })
    print(format_table("PI/PO-accessible registers", rows))
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "testability": _cmd_testability,
    "atpg": _cmd_atpg,
    "stats": _cmd_stats,
    "piers": _cmd_piers,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
