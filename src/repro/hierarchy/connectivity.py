"""Cross-module connectivity: resolving instance port connections.

The extraction subroutines walk *up* the hierarchy (a MUT input is driven by
whatever the parent connects to that port) and *sideways* (a signal feeding a
sibling instance's input continues inside that sibling).  These helpers
resolve instance connections both ways.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.verilog import ast


def instance_port_map(
    child_module: ast.Module, inst: ast.Instance
) -> Dict[str, Optional[ast.Expr]]:
    """Map each port of ``child_module`` to the parent expression wired to it.

    Handles named and positional connections; unconnected ports map to None.
    """
    result: Dict[str, Optional[ast.Expr]] = {
        name: None for name in child_module.port_order
    }
    positional = all(conn.name is None for conn in inst.connections)
    if positional and inst.connections:
        for idx, conn in enumerate(inst.connections):
            if idx >= len(child_module.port_order):
                raise ValueError(
                    f"instance {inst.inst_name!r} has more connections than "
                    f"module {child_module.name!r} has ports"
                )
            result[child_module.port_order[idx]] = conn.expr
    else:
        for conn in inst.connections:
            if conn.name is None:
                raise ValueError(
                    f"instance {inst.inst_name!r} mixes named and positional "
                    "connections"
                )
            if conn.name not in result:
                raise ValueError(
                    f"instance {inst.inst_name!r} connects unknown port "
                    f"{conn.name!r} of module {child_module.name!r}"
                )
            result[conn.name] = conn.expr
    return result


def port_connection_signals(
    child_module: ast.Module, inst: ast.Instance, port_name: str
) -> Set[str]:
    """Parent-module signals wired to ``port_name`` of an instance."""
    expr = instance_port_map(child_module, inst).get(port_name)
    if expr is None:
        return set()
    return expr.signals()


def signal_instance_sinks(
    parent_module: ast.Module,
    signal: str,
    modules: Dict[str, ast.Module],
) -> List[Tuple[ast.Instance, str]]:
    """Instances (and port names) whose *inputs* consume ``signal``."""
    out: List[Tuple[ast.Instance, str]] = []
    for inst in parent_module.instances:
        child = modules.get(inst.module_name)
        if child is None:
            continue
        pmap = instance_port_map(child, inst)
        for port in child.ports:
            if port.direction not in ("input", "inout"):
                continue
            expr = pmap.get(port.name)
            if expr is not None and signal in expr.signals():
                out.append((inst, port.name))
    return out


def signal_instance_sources(
    parent_module: ast.Module,
    signal: str,
    modules: Dict[str, ast.Module],
) -> List[Tuple[ast.Instance, str]]:
    """Instances (and port names) whose *outputs* drive ``signal``."""
    out: List[Tuple[ast.Instance, str]] = []
    for inst in parent_module.instances:
        child = modules.get(inst.module_name)
        if child is None:
            continue
        pmap = instance_port_map(child, inst)
        for port in child.ports:
            if port.direction not in ("output", "inout"):
                continue
            expr = pmap.get(port.name)
            if expr is not None and signal in ast.lhs_base_names(expr):
                out.append((inst, port.name))
    return out
