"""Design database: the module hierarchy of a parsed Verilog source.

A :class:`Design` owns a :class:`repro.verilog.ast.Source` and answers
structural questions FACTOR needs constantly: which module is the top, how
deep is a module embedded, what are the instance paths reaching it, and which
modules does a given module instantiate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.verilog import ast


class DesignError(Exception):
    """Raised for structural problems: missing modules, cycles, bad ports."""


@dataclass(frozen=True)
class InstancePath:
    """A hierarchical path of instance names from the top module down.

    ``modules[i]`` is the module containing instance ``insts[i]``;
    ``modules[-1]`` is the module the path lands in (the innermost module).
    An empty path denotes the top module itself.
    """

    insts: Tuple[str, ...]
    modules: Tuple[str, ...]  # length = len(insts) + 1

    def __str__(self) -> str:
        if not self.insts:
            return self.modules[0]
        return self.modules[0] + "." + ".".join(self.insts)

    @property
    def leaf_module(self) -> str:
        return self.modules[-1]

    @property
    def depth(self) -> int:
        return len(self.insts)

    def parent(self) -> "InstancePath":
        if not self.insts:
            raise DesignError("top-level path has no parent")
        return InstancePath(insts=self.insts[:-1], modules=self.modules[:-1])


class Design:
    """Hierarchical design database over a parsed source."""

    def __init__(self, source: ast.Source, top: Optional[str] = None):
        self.source = source
        self._modules: Dict[str, ast.Module] = {}
        for module in source.modules:
            if module.name in self._modules:
                raise DesignError(f"duplicate module {module.name!r}")
            self._modules[module.name] = module
        self._check_references()
        self._top = top if top is not None else self._infer_top()
        if self._top not in self._modules:
            raise DesignError(f"top module {self._top!r} not found")
        self._check_acyclic()
        self._chaindb = None
        self._fingerprint: Optional[str] = None

    # -- basic lookups -----------------------------------------------------

    @property
    def top(self) -> str:
        return self._top

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the design (source text + top module).

        When the source was produced by
        :func:`repro.store.parse_verilog_cached` the stamped text hash is
        reused; otherwise (programmatically built ASTs) the canonical
        written-back Verilog is hashed.  Artifact-store keys for every
        per-design stage derive from this value.
        """
        if self._fingerprint is None:
            from repro.store.fingerprint import fingerprint_obj, \
                fingerprint_text

            source_fp = getattr(self.source, "fingerprint", None)
            if source_fp is None:
                from repro.verilog.writer import write_source

                source_fp = fingerprint_text(write_source(self.source))
            self._fingerprint = fingerprint_obj(
                {"source": source_fp, "top": self._top}
            )
        return self._fingerprint

    def chaindb(self):
        """The design-wide def-use/use-def chain database, built once.

        The extractor, the PIER analysis and the lint engine all need the
        same :class:`repro.hierarchy.chains.ChainDB`; memoizing it here
        means e.g. a ``--lint`` pre-flight gate and the extraction that
        follows share a single build instead of two.
        """
        if self._chaindb is None:
            from repro.hierarchy.chains import ChainDB

            self._chaindb = ChainDB(self)
        return self._chaindb

    def module(self, name: str) -> ast.Module:
        try:
            return self._modules[name]
        except KeyError:
            raise DesignError(f"no module named {name!r}") from None

    def has_module(self, name: str) -> bool:
        return name in self._modules

    def module_names(self) -> List[str]:
        return list(self._modules)

    # -- hierarchy queries ---------------------------------------------------

    def children(self, name: str) -> List[Tuple[str, str]]:
        """``(inst_name, child_module_name)`` for each instance in ``name``."""
        return [
            (inst.inst_name, inst.module_name)
            for inst in self.module(name).instances
        ]

    def parents(self, name: str) -> List[Tuple[str, str]]:
        """``(parent_module_name, inst_name)`` pairs instantiating ``name``."""
        out = []
        for parent in self._modules.values():
            for inst in parent.instances:
                if inst.module_name == name:
                    out.append((parent.name, inst.inst_name))
        return out

    def instance_in(self, parent: str, inst_name: str) -> ast.Instance:
        for inst in self.module(parent).instances:
            if inst.inst_name == inst_name:
                return inst
        raise DesignError(f"module {parent!r} has no instance {inst_name!r}")

    def depth(self, name: str) -> int:
        """Minimum number of hierarchy levels between top and ``name``.

        The top module is at depth 0; a module instantiated directly in the
        top module is at depth 1, etc.  This is the "Hierarchy Level" column
        of the paper's Table 1.
        """
        paths = self.paths_to(name)
        if not paths:
            raise DesignError(f"module {name!r} is not reachable from top")
        return min(path.depth for path in paths)

    def paths_to(self, name: str) -> List[InstancePath]:
        """All instance paths from the top module to instances of ``name``."""
        results: List[InstancePath] = []

        def visit(current: str, insts: Tuple[str, ...],
                  modules: Tuple[str, ...]) -> None:
            if current == name:
                results.append(InstancePath(insts=insts, modules=modules))
            for inst_name, child in self.children(current):
                visit(child, insts + (inst_name,), modules + (child,))

        visit(self._top, (), (self._top,))
        return results

    def hierarchy_chain(self, name: str) -> List[str]:
        """Module names from top down to ``name`` along a shortest path."""
        paths = self.paths_to(name)
        if not paths:
            raise DesignError(f"module {name!r} is not reachable from top")
        best = min(paths, key=lambda p: p.depth)
        return list(best.modules)

    def modules_under(self, name: str) -> Set[str]:
        """Transitive closure of modules instantiated under ``name``."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for _, child in self.children(current):
                stack.append(child)
        return seen

    def subsource(self, root: str) -> ast.Source:
        """A new Source containing ``root`` and everything beneath it."""
        keep = self.modules_under(root)
        return ast.Source(
            modules=[m for m in self.source.modules if m.name in keep]
        )

    # -- validation ----------------------------------------------------------

    def _infer_top(self) -> str:
        instantiated: Set[str] = set()
        for module in self._modules.values():
            for inst in module.instances:
                instantiated.add(inst.module_name)
        roots = [name for name in self._modules if name not in instantiated]
        if not roots:
            raise DesignError("no top module: every module is instantiated")
        if len(roots) > 1:
            raise DesignError(
                f"ambiguous top module, candidates: {sorted(roots)}; "
                "pass top= explicitly"
            )
        return roots[0]

    def _check_references(self) -> None:
        for module in self._modules.values():
            for inst in module.instances:
                if inst.module_name not in self._modules:
                    raise DesignError(
                        f"module {module.name!r} instantiates unknown module "
                        f"{inst.module_name!r} (instance {inst.inst_name!r})"
                    )

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, trail: Tuple[str, ...]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                raise DesignError(
                    "instantiation cycle: " + " -> ".join(trail + (name,))
                )
            state[name] = 0
            for _, child in self.children(name):
                visit(child, trail + (name,))
            state[name] = 1

        visit(self._top, ())
