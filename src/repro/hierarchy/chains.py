"""Def-use and use-def chains with enclosing-construct tracking.

This is the heart of the paper's Fig. 2 data structure: for every signal in a
module we record where it is *defined* (assigned) and where it is *used*
(read), and for every such site we keep the stack of enclosing conditional
statements, loops and concurrency constructs — because ``find_source_logic``
must recurse into the signals controlling those constructs (Fig. 3, steps
4–7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.verilog import ast


@dataclass(frozen=True)
class Site:
    """One definition or use of a signal.

    ``kind`` is one of:

    - ``cont_assign``  — continuous ``assign`` statement
    - ``proc_assign``  — procedural assignment inside an always block
    - ``gate``         — built-in primitive instance
    - ``instance``     — child-module instance boundary
    - ``input_port``   — the signal is a module input (defined by the parent)
    - ``output_port``  — the signal is a module output (used by the parent)

    ``enclosures`` lists enclosing If/Case/For AST nodes outermost-first;
    ``always`` is the owning concurrency construct for procedural sites.
    """

    kind: str
    module: str
    node: object
    always: Optional[ast.Always] = None
    enclosures: Tuple[object, ...] = ()
    line: int = 0

    def enclosing_control_signals(self) -> Set[str]:
        """Signals steering the enclosing conditionals/loops/always block.

        These are the ``enc_driving_signal``s of Fig. 3 step 4/5: to justify a
        value through this site, the surrounding control conditions must also
        be justified.
        """
        out: Set[str] = set()
        for enc in self.enclosures:
            if isinstance(enc, ast.If):
                out |= enc.cond.signals()
            elif isinstance(enc, ast.Case):
                out |= enc.selector.signals()
            elif isinstance(enc, ast.For):
                out |= enc.cond.signals() | enc.init.used() | enc.step.used()
        if self.always is not None and self.always.is_sequential:
            out |= {item.signal for item in self.always.sensitivity}
        return out

    def rhs_signals(self) -> Set[str]:
        """Signals read by this site (the ``rhs_driving_signal``s)."""
        node = self.node
        if isinstance(node, (ast.ContAssign, ast.AssignStmt)):
            return node.used()
        if isinstance(node, ast.GateInstance):
            return node.used()
        return set()

    def defined_signals(self) -> Set[str]:
        node = self.node
        if isinstance(node, (ast.ContAssign, ast.AssignStmt)):
            return node.defined()
        if isinstance(node, ast.GateInstance):
            return node.defined()
        if isinstance(node, ast.PortDecl):
            return {node.name}
        return set()


@dataclass
class ModuleChains:
    """All def/use chains for one module."""

    module_name: str
    defs: Dict[str, List[Site]] = field(default_factory=dict)
    uses: Dict[str, List[Site]] = field(default_factory=dict)
    signals: Set[str] = field(default_factory=set)

    def ud_chain(self, signal: str) -> List[Site]:
        """Use-def chain: the sites *defining* ``signal``."""
        return self.defs.get(signal, [])

    def du_chain(self, signal: str) -> List[Site]:
        """Def-use chain: the sites *using* ``signal``."""
        return self.uses.get(signal, [])

    def undriven_signals(self) -> List[str]:
        """Signals that are used but never defined (empty ud chain)."""
        return sorted(
            sig
            for sig in self.signals
            if not self.defs.get(sig) and self.uses.get(sig)
        )

    def unused_signals(self) -> List[str]:
        """Signals that are defined but never used (empty du chain)."""
        return sorted(
            sig
            for sig in self.signals
            if self.defs.get(sig) and not self.uses.get(sig)
        )

    def _add_def(self, signal: str, site: Site) -> None:
        self.defs.setdefault(signal, []).append(site)
        self.signals.add(signal)

    def _add_use(self, signal: str, site: Site) -> None:
        self.uses.setdefault(signal, []).append(site)
        self.signals.add(signal)


def build_module_chains(
    module: ast.Module, port_dir_of: "Dict[str, Dict[str, str]]"
) -> ModuleChains:
    """Construct the chain database for ``module``.

    ``port_dir_of`` maps child module name -> {port name -> direction}; it is
    needed to decide whether a signal connected to a child instance port is
    being used (input port) or defined (output port) at that boundary.
    """
    chains = ModuleChains(module_name=module.name)

    for port in module.ports:
        site = Site(kind=f"{port.direction}_port", module=module.name,
                    node=port, line=port.line)
        if port.direction == "input":
            chains._add_def(port.name, site)
        elif port.direction == "output":
            chains._add_use(port.name, site)
        else:  # inout: both
            chains._add_def(port.name, site)
            chains._add_use(port.name, site)

    for net in module.nets:
        chains.signals.add(net.name)

    for assign in module.assigns:
        site = Site(kind="cont_assign", module=module.name, node=assign,
                    line=assign.line)
        for sig in assign.defined():
            chains._add_def(sig, site)
        for sig in assign.used():
            chains._add_use(sig, site)

    for gate in module.gates:
        site = Site(kind="gate", module=module.name, node=gate, line=gate.line)
        for sig in gate.defined():
            chains._add_def(sig, site)
        for sig in gate.used():
            chains._add_use(sig, site)

    for always in module.always_blocks:
        _collect_proc_sites(module.name, always, always.body, (), chains)
        if always.is_sequential:
            # Clock/reset signals are consumed by the concurrency construct.
            sens_site = Site(kind="proc_assign", module=module.name,
                             node=always, always=always, line=always.line)
            for item in always.sensitivity:
                chains._add_use(item.signal, sens_site)

    for inst in module.instances:
        dirs = port_dir_of.get(inst.module_name, {})
        site = Site(kind="instance", module=module.name, node=inst,
                    line=inst.line)
        for conn, port_name in _iter_connections(inst, dirs):
            if conn.expr is None:
                continue
            direction = dirs.get(port_name)
            if direction == "input":
                for sig in conn.expr.signals():
                    chains._add_use(sig, site)
            elif direction == "output":
                for sig in ast.lhs_base_names(conn.expr):
                    chains._add_def(sig, site)
                for sig in ast.lhs_index_signals(conn.expr):
                    chains._add_use(sig, site)
            else:  # inout or unknown: conservatively both
                for sig in conn.expr.signals():
                    chains._add_use(sig, site)
                    chains._add_def(sig, site)

    return chains


def _iter_connections(inst: ast.Instance, dirs: Dict[str, str]):
    """Yield ``(conn, resolved_port_name)`` pairs for an instance."""
    port_names = list(dirs)
    for idx, conn in enumerate(inst.connections):
        if conn.name is not None:
            yield conn, conn.name
        elif idx < len(port_names):
            yield conn, port_names[idx]
        else:
            yield conn, f"<positional:{idx}>"


def _collect_proc_sites(
    module_name: str,
    always: ast.Always,
    stmt: ast.Stmt,
    enclosures: Tuple[object, ...],
    chains: ModuleChains,
) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.stmts:
            _collect_proc_sites(module_name, always, inner, enclosures, chains)
    elif isinstance(stmt, ast.AssignStmt):
        site = Site(
            kind="proc_assign",
            module=module_name,
            node=stmt,
            always=always,
            enclosures=enclosures,
            line=stmt.line,
        )
        for sig in stmt.defined():
            chains._add_def(sig, site)
        for sig in stmt.used():
            chains._add_use(sig, site)
        for sig in site.enclosing_control_signals():
            chains._add_use(sig, site)
    elif isinstance(stmt, ast.If):
        inner = enclosures + (stmt,)
        _collect_proc_sites(module_name, always, stmt.then_stmt, inner, chains)
        if stmt.else_stmt is not None:
            _collect_proc_sites(module_name, always, stmt.else_stmt, inner,
                                chains)
    elif isinstance(stmt, ast.Case):
        inner = enclosures + (stmt,)
        for item in stmt.items:
            _collect_proc_sites(module_name, always, item.stmt, inner, chains)
    elif isinstance(stmt, ast.For):
        inner = enclosures + (stmt,)
        # The loop header's init/step assignments define the loop variable;
        # without them a loop counter shows an empty ud chain.
        _collect_proc_sites(module_name, always, stmt.init, enclosures,
                            chains)
        _collect_proc_sites(module_name, always, stmt.step, inner, chains)
        _collect_proc_sites(module_name, always, stmt.body, inner, chains)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown statement {stmt!r}")


class ChainDB:
    """Lazy per-module chain database over a whole design."""

    def __init__(self, design) -> None:
        self._design = design
        self._cache: Dict[str, ModuleChains] = {}
        self._port_dirs: Dict[str, Dict[str, str]] = {}
        for name in design.module_names():
            module = design.module(name)
            self._port_dirs[name] = {p.name: p.direction for p in module.ports}

    def port_directions(self, module_name: str) -> Dict[str, str]:
        return self._port_dirs[module_name]

    def chains(self, module_name: str) -> ModuleChains:
        if module_name not in self._cache:
            module = self._design.module(module_name)
            self._cache[module_name] = build_module_chains(
                module, self._port_dirs
            )
        return self._cache[module_name]
