"""Design database: module hierarchy, def-use / use-def chains, connectivity.

This package realises the internal data structure of the paper's Fig. 2: a
module tree whose leaves are Verilog statements or library primitives,
augmented with def-use and use-def chains per signal and, for every
definition/use, the stack of enclosing conditional, loop and concurrency
constructs.
"""

from repro.hierarchy.design import Design, InstancePath, DesignError
from repro.hierarchy.chains import ChainDB, ModuleChains, Site
from repro.hierarchy.connectivity import (
    instance_port_map,
    port_connection_signals,
    signal_instance_sinks,
    signal_instance_sources,
)

__all__ = [
    "Design",
    "InstancePath",
    "DesignError",
    "ChainDB",
    "ModuleChains",
    "Site",
    "instance_port_map",
    "port_connection_signals",
    "signal_instance_sinks",
    "signal_instance_sources",
]
