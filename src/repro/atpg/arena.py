"""Arena-encoded netlist and word-parallel fault simulation.

The object-graph :class:`~repro.synth.netlist.Netlist` is the wrong shape for
the fault-simulation hot path: every evaluation walks ``Gate`` dataclasses,
tuples and dicts.  This module flattens a netlist once into a
:class:`NetlistArena` — a frozen struct-of-arrays encoding (gate opcodes,
outputs and CSR fanin/fanout as ``array('i')`` rows, dense net ids, the
levelized evaluation order baked into the row order, a DFS site-rank map for
cone packing) — and runs fault simulation directly on it.

The arena is plain picklable data: it is cached in the artifact store (stage
``arena``) keyed by the netlist fingerprint, and fork/spawn workers can be
handed the pickled arena instead of re-deriving per-process state from the
netlist.

Simulation model
----------------

Values are 3-valued (0/1/X), encoded as a (ones, zeros) pair of bit masks
packed into plain Python ints — one bit lane per *fault* (the workload is a
single dependent vector sequence, so the parallel axis is faults in wide
machine words, not independent patterns; see ``docs/performance.md`` for why
this differs from textbook PPSFP).  A call proceeds as:

1. **Good-machine pass** — the shared fault-free simulation, one plane per
   cycle, reusing the code-generated chunk functions of
   :mod:`repro.atpg.compiled` (bit-identical by construction).  While
   simulating, a per-net *ever-one* / *ever-zero* byte table is accumulated
   with O(nets) big-int shifts per cycle.
2. **Refinement filter** — a stuck-at-``v`` fault whose site never carries
   the binary value ``1-v`` in the good machine is provably undetectable by
   this sequence, so its lane is never simulated.  Proof sketch: by
   induction over levelized order and cycles, every faulty-machine net value
   *refines* the good value in the Kleene information order (injection
   forces ``v`` where the good machine has ``v`` or ``X``; all gate
   functions and the DFF latch are monotone in that order).  Detection
   requires a binary-vs-binary difference at an observe point, which a
   refinement cannot produce.
3. **Cone-partitioned lane blocks** — surviving faults are sorted in cone
   pack order and partitioned by a cost model; each block simulates only the
   union fanout cone of its sites, with fault injection fused at the sites,
   X-masks preserved end to end, detection against good-plane selector
   masks, and early exit once every injected lane has detected.  Large
   steady-state workloads run through per-block *generated* functions
   (single-use fanouts fused into consumer expressions); small or one-shot
   workloads (ATPG cross-simulation) run an interpreted block program with
   the same semantics, skipping codegen cost.

Detected sets are bit-identical to both the interpreted oracle and the
compiled backend; ``tests/test_arena.py`` holds the differential suite.
"""

from __future__ import annotations

import os
from array import array
from collections import OrderedDict
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence, Set,
                    Tuple)
from weakref import WeakKeyDictionary

from repro.synth.netlist import Gate, GateType, Netlist
from repro.atpg.faults import Fault, TransientFault

Mask = Tuple[int, int]
Vector = Mapping[int, int]

# Integer opcodes for the struct-of-arrays gate rows.  DFFs live in their
# own (dff_q, dff_d) rows, so only combinational types appear here.
OP_AND, OP_OR, OP_NAND, OP_NOR, OP_XOR, OP_XNOR, OP_NOT, OP_BUF = range(8)

_OP_OF = {
    GateType.AND: OP_AND, GateType.OR: OP_OR, GateType.NAND: OP_NAND,
    GateType.NOR: OP_NOR, GateType.XOR: OP_XOR, GateType.XNOR: OP_XNOR,
    GateType.NOT: OP_NOT, GateType.BUF: OP_BUF,
}
_GT_OF = {op: gt for gt, op in _OP_OF.items()}

# Below these workload sizes the ~0.5s/kgate block-codegen cost cannot
# amortize (ATPG cross-simulates 1-2 vectors per generated test), so the
# interpreted block program runs instead.  Env knobs let tests and smoke
# jobs exercise the generated path on tiny designs.
CODEGEN_MIN_FAULTS = 2000
CODEGEN_MIN_VECTORS = 8

# Fused single-use fanout expressions deeper than this are materialized
# anyway, bounding generated expression nesting (CPython's compiler and
# peephole stay fast).
_FUSE_MAX_DEPTH = 12


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


class NetlistArena:
    """Frozen struct-of-arrays encoding of one netlist.

    All rows are ``array('i')`` (or plain ints/strs), so instances pickle
    compactly and cheaply — workers receive the arena instead of re-deriving
    topological orders, levels and adjacency from the object graph.

    Rows:

    - ``gate_op`` / ``gate_out`` — combinational gates in levelized
      topological order (evaluation order is the row order),
    - ``fanin_off`` / ``fanin`` — CSR fanin per gate row,
    - ``dff_q`` / ``dff_d`` — flip-flop Q and D nets,
    - ``pis`` / ``pos`` — primary input / output nets,
    - ``adj_off`` / ``adj`` — CSR *sequential* fanout per net (one step of
      gate fanout, plus every D->Q flip-flop edge),
    - ``site_rank`` — DFS-topological rank per net (-1 for nets that are
      not gate outputs); :meth:`cone_pack_order` sorts fault sites by it so
      neighbouring lanes share fanout cones.
    """

    def __init__(self, name: str, num_nets: int,
                 gate_op: array, gate_out: array,
                 fanin_off: array, fanin: array,
                 dff_q: array, dff_d: array,
                 pis: array, pos: array,
                 adj_off: array, adj: array,
                 site_rank: array,
                 fingerprint: Tuple[int, int, int, int],
                 digest: str):
        self.name = name
        self.num_nets = num_nets
        self.gate_op = gate_op
        self.gate_out = gate_out
        self.fanin_off = fanin_off
        self.fanin = fanin
        self.dff_q = dff_q
        self.dff_d = dff_d
        self.pis = pis
        self.pos = pos
        self.adj_off = adj_off
        self.adj = adj
        self.site_rank = site_rank
        self.fingerprint = fingerprint
        self.digest = digest

    @property
    def num_gates(self) -> int:
        return len(self.gate_out)

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "NetlistArena":
        from repro.store import gates_fingerprint

        topo = netlist.topological_order()
        level = netlist.levels(topo)
        order = sorted(topo, key=lambda g: level[g.output])
        num_nets = netlist.num_nets

        gate_op = array("i", (_OP_OF[g.type] for g in order))
        gate_out = array("i", (g.output for g in order))
        fanin_off = array("i", [0])
        fanin = array("i")
        for g in order:
            fanin.extend(g.inputs)
            fanin_off.append(len(fanin))

        dffs = netlist.dffs()
        dff_q = array("i", (d.output for d in dffs))
        dff_d = array("i", (d.inputs[0] for d in dffs))

        # CSR sequential fanout: two passes (count, fill) keep it allocation
        # free beyond the two arrays.
        counts = array("i", bytes(4 * (num_nets + 1)))
        for g in netlist.gates:
            for inp in g.inputs:
                counts[inp] += 1
        adj_off = array("i", bytes(4 * (num_nets + 1)))
        total = 0
        for n in range(num_nets):
            adj_off[n] = total
            total += counts[n]
        adj_off[num_nets] = total
        cursor = array("i", adj_off)
        adj = array("i", bytes(4 * total))
        for g in netlist.gates:
            out = g.output
            for inp in g.inputs:
                adj[cursor[inp]] = out
                cursor[inp] += 1

        site_rank = array("i", [-1]) * num_nets
        for i, g in enumerate(topo):
            site_rank[g.output] = i

        fingerprint = (num_nets, len(netlist.gates), len(netlist.pis),
                       len(netlist.pos))
        digest = gates_fingerprint(order, num_nets)
        return cls(
            name=netlist.name, num_nets=num_nets,
            gate_op=gate_op, gate_out=gate_out,
            fanin_off=fanin_off, fanin=fanin,
            dff_q=dff_q, dff_d=dff_d,
            pis=array("i", netlist.pis), pos=array("i", netlist.pos),
            adj_off=adj_off, adj=adj, site_rank=site_rank,
            fingerprint=fingerprint, digest=digest,
        )

    # -- derived views ------------------------------------------------------

    def gate_inputs(self, gi: int) -> Tuple[int, ...]:
        return tuple(self.fanin[self.fanin_off[gi]:self.fanin_off[gi + 1]])

    def gates(self) -> List[Gate]:
        """The levelized combinational gate row as ``Gate`` objects.

        Used to share the good-machine codegen (and its marshal cache) with
        :mod:`repro.atpg.compiled` — the reconstructed sequence is
        element-wise identical to ``CompiledNetlist.order``.
        """
        return [
            Gate(type=_GT_OF[self.gate_op[gi]], output=self.gate_out[gi],
                 inputs=self.gate_inputs(gi))
            for gi in range(len(self.gate_out))
        ]

    def cone_of(self, sites: Iterable[int]) -> Set[int]:
        """Union sequential fanout cone of ``sites`` (multi-source BFS
        over the CSR adjacency), including the sites themselves."""
        adj, off = self.adj, self.adj_off
        seen: Set[int] = set(sites)
        stack = list(seen)
        while stack:
            net = stack.pop()
            for k in range(off[net], off[net + 1]):
                down = adj[k]
                if down not in seen:
                    seen.add(down)
                    stack.append(down)
        return seen

    def cone_pack_order(self, faults: Sequence[Fault]) -> List[Fault]:
        """Faults sorted so neighbouring lanes share fanout cones (PIs,
        which have no rank, sort first)."""
        rank = self.site_rank
        nn = self.num_nets
        return sorted(
            faults,
            key=lambda f: (rank[f.net] if f.net < nn else -1, f.net, f.value),
        )


_ARENAS: "WeakKeyDictionary[Netlist, NetlistArena]" = WeakKeyDictionary()


def get_arena(netlist: Netlist) -> NetlistArena:
    """The cached arena encoding of ``netlist``.

    In-process instances are cached per netlist object (rebuilt when the
    netlist grew — append-only mutation is the only kind this codebase
    performs); across processes the pickled arena is memoized in the
    artifact store under the ``arena`` stage, keyed by the netlist
    fingerprint.
    """
    cached = _ARENAS.get(netlist)
    current = (netlist.num_nets, len(netlist.gates), len(netlist.pis),
               len(netlist.pos))
    if cached is not None and cached.fingerprint == current:
        return cached

    from repro.store import get_store, netlist_fingerprint

    store = get_store()
    key = {"netlist": netlist_fingerprint(netlist)}
    payload = store.get("arena", key)
    arena: Optional[NetlistArena] = None
    if (isinstance(payload, NetlistArena)
            and payload.fingerprint == current):
        arena = payload
    if arena is None:
        arena = NetlistArena.from_netlist(netlist)
        store.put("arena", key, arena)
    _ARENAS[netlist] = arena
    return arena


# -- word-parallel fault simulation -------------------------------------------

# Cost model for the greedy block partition: estimated nanoseconds per
# bitwise op at a given lane width (big-int ops grow sub-linearly until the
# operands spill the cache).  Measured on the development host; the exact
# numbers only steer *merging* — correctness never depends on the partition.
_OPCOST = ((512, 105), (1024, 108), (2048, 112), (4096, 133),
           (8192, 162), (16384, 222))


def _opcost(lanes: int) -> int:
    for cap, cost in _OPCOST:
        if lanes <= cap:
            return cost
    return 350


class ArenaFaultSim:
    """Fault simulation over one :class:`NetlistArena`.

    Holds every reusable artifact of repeated simulation against the same
    arena: the good-machine chunk functions, the memoized good-plane pass,
    built lane blocks and their per-good-pass cycle setups.  Get instances
    through :func:`get_arena_sim` so all ``FaultSimulator`` facades over the
    same arena share them.
    """

    def __init__(self, arena: NetlistArena):
        self.arena = arena
        self._chunks = None  # good-machine codegen, built lazily
        # Good-plane memo: one entry, keyed both by object identity (the
        # common case: a bench/ATPG loop re-simulating the same vector list
        # object) and by value.  Strong refs are intentional — callers must
        # not mutate a vector list in place between calls (no caller does;
        # vectors are built fresh per sequence).
        self._good_vectors: Optional[Sequence[Vector]] = None
        self._good_istate: Optional[Mapping[int, int]] = None
        self._good_key = None
        self._good = None
        self._good_token = 0
        # Built codegen blocks keyed by (survivor lanes, observe points).
        self._blocks: "OrderedDict[tuple, list]" = OrderedDict()

    # -- good machine -------------------------------------------------------

    def _ensure_chunks(self):
        if self._chunks is None:
            from repro.atpg.compiled import _codegen_chunks

            # Reconstructing Gate rows and reusing the compiled backend's
            # codegen guarantees a bit-identical good machine *and* shares
            # its marshal cache (same gate fingerprint, same source).
            self._chunks = _codegen_chunks(self.arena.gates(),
                                           self.arena.name,
                                           num_nets=self.arena.num_nets)
        return self._chunks

    def _good_pass(self, vectors: Sequence[Vector],
                   initial_state: Optional[Mapping[int, int]]):
        """Simulate the fault-free machine; returns
        ``(planes, ever_one, ever_zero, token)``.

        ``planes`` holds one flat ``[o0, z0, o1, z1, ...]`` snapshot per
        cycle.  ``ever_one[n]`` / ``ever_zero[n]`` are truthy iff net ``n``
        ever carried binary 1 / 0 — accumulated as one byte per net with two
        big-int shift-ORs per cycle (cycle bits fill each byte in windows of
        8, so ORs never carry across byte boundaries).
        """
        from repro.obs import counter

        if vectors is self._good_vectors and initial_state is self._good_istate:
            counter("fault_sim.arena.good_plane_hits").inc()
            return self._good
        key = (
            tuple(tuple(sorted(vec.items())) for vec in vectors),
            tuple(sorted(initial_state.items())) if initial_state else (),
        )
        if key == self._good_key:
            counter("fault_sim.arena.good_plane_hits").inc()
            self._good_vectors = vectors
            self._good_istate = initial_state
            return self._good

        chunks = self._ensure_chunks()
        arena = self.arena
        nn = arena.num_nets
        pis, dff_q, dff_d = arena.pis, arena.dff_q, arena.dff_d
        state: Dict[int, Mask] = {q: (0, 0) for q in dff_q}
        if initial_state:
            for q, bit in initial_state.items():
                state[q] = (1, 0) if bit else (0, 1)
        values = [0] * (2 * nn)
        values[1] = 1  # const0 zeros plane
        values[2] = 1  # const1 ones plane
        planes: List[List[int]] = []
        ever_o = ever_z = acc_o = acc_z = 0
        window = 0
        for vec in vectors:
            for pi in pis:
                bit = vec.get(pi)
                i = 2 * pi
                if bit is None:
                    values[i] = values[i + 1] = 0
                elif bit:
                    values[i] = 1
                    values[i + 1] = 0
                else:
                    values[i] = 0
                    values[i + 1] = 1
            for k in range(len(dff_q)):
                o, z = state[dff_q[k]]
                i = 2 * dff_q[k]
                values[i] = o
                values[i + 1] = z
            for chunk in chunks:
                chunk(values, 1)
            planes.append(values[:])
            acc_o |= int.from_bytes(bytes(values[0::2]), "little") << window
            acc_z |= int.from_bytes(bytes(values[1::2]), "little") << window
            window += 1
            if window == 8:
                ever_o |= acc_o
                ever_z |= acc_z
                acc_o = acc_z = window = 0
            for k in range(len(dff_q)):
                i = 2 * dff_d[k]
                state[dff_q[k]] = (values[i], values[i + 1])
        ever_o |= acc_o
        ever_z |= acc_z
        self._good_token += 1
        self._good = (
            planes,
            ever_o.to_bytes(nn + 1, "little"),
            ever_z.to_bytes(nn + 1, "little"),
            self._good_token,
        )
        self._good_vectors = vectors
        self._good_istate = initial_state
        self._good_key = key
        return self._good

    # -- block partition ----------------------------------------------------

    def _partition(self, ordered: Sequence[Fault], base: int):
        """Greedily merge cone-packed fault chunks while the cost model
        says a merged block beats the pair (fewer redundant evaluations of
        shared cone gates vs pricier wider-lane ops)."""
        arena = self.arena
        gate_out = arena.gate_out

        def cone_gates(cone: Set[int]) -> int:
            return sum(1 for out in gate_out if out in cone)

        chunks = []
        for i in range(0, len(ordered), base):
            blk = list(ordered[i:i + base])
            cone = arena.cone_of({f.net for f in blk})
            chunks.append([blk, cone, cone_gates(cone)])

        def cost(blk, ng):
            sites = len({f.net for f in blk})
            return (ng * 2.6 + sites * 3.0) * _opcost(len(blk))

        changed = True
        while changed:
            changed = False
            out = []
            i = 0
            while i < len(chunks):
                if i + 1 < len(chunks):
                    b1, c1, n1 = chunks[i]
                    b2, c2, n2 = chunks[i + 1]
                    cu = c1 | c2
                    nu = cone_gates(cu)
                    if cost(b1 + b2, nu) < cost(b1, n1) + cost(b2, n2):
                        out.append([b1 + b2, cu, nu])
                        i += 2
                        changed = True
                        continue
                out.append(chunks[i])
                i += 1
            chunks = out
        return chunks

    # -- shared block shape --------------------------------------------------

    def _block_shape(self, blk: Sequence[Fault], cone: Set[int],
                     obs_set: frozenset):
        """Everything both block executors need about one lane block:
        injection-site lane masks, the cone's gate rows, flip-flops,
        boundary nets (read by the cone but produced outside it — they
        broadcast the shared good value) and observe points."""
        arena = self.arena
        gate_out, fanin, fanin_off = (arena.gate_out, arena.fanin,
                                      arena.fanin_off)
        site_lanes: Dict[int, Mask] = {}
        for li, f in enumerate(blk):
            m1, m0 = site_lanes.get(f.net, (0, 0))
            if f.value == 1:
                m1 |= 1 << li
            else:
                m0 |= 1 << li
            site_lanes[f.net] = (m1, m0)
        cone_gis = [gi for gi in range(len(gate_out)) if gate_out[gi] in cone]
        dff_q, dff_d = arena.dff_q, arena.dff_d
        cone_dks = [k for k in range(len(dff_q)) if dff_q[k] in cone]
        innets: Set[int] = set()
        for gi in cone_gis:
            innets.update(fanin[fanin_off[gi]:fanin_off[gi + 1]])
        for k in cone_dks:
            innets.add(dff_d[k])
        comb_out = {gate_out[gi] for gi in cone_gis}
        qs = [dff_q[k] for k in cone_dks]
        produced = comb_out | set(qs)
        bound = sorted((innets | cone) - produced)
        obs = sorted(obs_set & cone)
        site_order = sorted(site_lanes)
        return dict(
            blk=list(blk), lanes=len(blk), site_lanes=site_lanes,
            site_order=site_order, cone_gis=cone_gis, cone_dks=cone_dks,
            comb_out=comb_out, qs=qs, bound=bound, obs=obs,
        )

    # -- generated block path ------------------------------------------------

    def _build_codegen_block(self, blk: Sequence[Fault], cone: Set[int],
                             obs_set: frozenset):
        """Compile one lane block into a specialized function
        ``_blk(CYCS, M, I, PRESENT) -> det``.

        Every cone net is a local; per-cycle boundary broadcasts and
        good-plane observation selectors arrive as one pre-built tuple per
        cycle; injection masks arrive in ``M`` (three slots per site:
        erase/force1/force0), so the same code serves any requested subset
        of the block's lanes — a lane with empty masks simulates the good
        machine and can never detect.  Gates whose output is used exactly
        once inside the block (and is not a site, observe point, state or
        boundary net, nor an XOR operand) are fused into their consumer's
        expression, eliminating their store/load round trip.
        """
        arena = self.arena
        gate_op, gate_out = arena.gate_op, arena.gate_out
        fanin, fanin_off = arena.fanin, arena.fanin_off
        dff_q, dff_d = arena.dff_q, arena.dff_d
        shape = self._block_shape(blk, cone, obs_set)
        site_lanes = shape["site_lanes"]
        site_order = shape["site_order"]
        sidx = {n: 3 * k for k, n in enumerate(site_order)}
        cone_gis, cone_dks = shape["cone_gis"], shape["cone_dks"]
        comb_out, qs = shape["comb_out"], shape["qs"]
        bound, obs = shape["bound"], shape["obs"]

        # Polarity class per site decides the injection template: sites with
        # a single stuck value need 2 ops instead of 4.  The class reflects
        # the *block's* lane list; per-call subset masks always fit it.
        spol = {}
        for n in site_order:
            m1, m0 = site_lanes[n]
            spol[n] = "both" if (m1 and m0) else ("one" if m1 else "zero")

        def norm(op: int, ins: Tuple[int, ...]):
            # Degenerate single-input n-ary gates reduce to BUF/NOT exactly
            # as in the interpreted fold (identity elements).
            if len(ins) == 1 and op not in (OP_NOT, OP_BUF):
                return (OP_BUF if op in (OP_AND, OP_OR, OP_XOR)
                        else OP_NOT), ins
            return op, ins

        gate_row = {}
        uses: Dict[int, int] = {}
        for gi in cone_gis:
            ins = tuple(fanin[fanin_off[gi]:fanin_off[gi + 1]])
            op, ins = norm(gate_op[gi], ins)
            gate_row[gate_out[gi]] = (op, ins)
            for i in ins:
                uses[i] = uses.get(i, 0) + 1

        keep: Set[int] = set(site_order) | set(obs) | set(qs) | set(bound)
        for k in cone_dks:
            keep.add(dff_d[k])
        for op, ins in gate_row.values():
            if op in (OP_XOR, OP_XNOR):
                # XOR consumes both planes of each operand twice; fusing an
                # operand would evaluate its expression repeatedly.
                keep.update(ins)

        fuse: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        depth: Dict[int, int] = {}
        for gi in cone_gis:
            out = gate_out[gi]
            op, ins = gate_row[out]
            d = 1 + max((depth.get(i, 0) for i in ins), default=0)
            if (out not in keep and uses.get(out, 0) == 1
                    and d <= _FUSE_MAX_DEPTH
                    and not (op in (OP_XOR, OP_XNOR) and len(ins) > 2)):
                fuse[out] = (op, ins)
                depth[out] = d
            else:
                depth[out] = 0

        def ref(n: int, plane: int) -> str:
            fused = fuse.get(n)
            if fused is not None:
                return "(" + expr(fused[0], fused[1], plane) + ")"
            return f"o{n}" if plane == 0 else f"z{n}"

        def expr(op: int, ins: Tuple[int, ...], plane: int) -> str:
            if op == OP_BUF:
                return ref(ins[0], plane)
            if op == OP_NOT:
                return ref(ins[0], 1 - plane)
            if op == OP_AND:
                return (" & " if plane == 0 else " | ").join(
                    ref(i, plane) for i in ins)
            if op == OP_NAND:
                return (" | " if plane == 0 else " & ").join(
                    ref(i, 1 - plane) for i in ins)
            if op == OP_OR:
                return (" | " if plane == 0 else " & ").join(
                    ref(i, plane) for i in ins)
            if op == OP_NOR:
                return (" & " if plane == 0 else " | ").join(
                    ref(i, 1 - plane) for i in ins)
            # 2-input XOR/XNOR (n-ary folds are emitted as statements)
            a, b = ins
            if op == OP_XNOR:
                plane = 1 - plane
            if plane == 0:
                return (f"({ref(a, 0)} & {ref(b, 1)}) | "
                        f"({ref(a, 1)} & {ref(b, 0)})")
            return (f"({ref(a, 0)} & {ref(b, 0)}) | "
                    f"({ref(a, 1)} & {ref(b, 1)})")

        def inject_stmts(out: int, on: str, zn: str) -> List[str]:
            k = sidx[out]
            pol = spol[out]
            if pol == "both":
                return [f"        o{out} = (({on}) & M[{k}]) | M[{k + 1}]",
                        f"        z{out} = (({zn}) & M[{k}]) | M[{k + 2}]"]
            if pol == "one":
                return [f"        o{out} = ({on}) | M[{k + 1}]",
                        f"        z{out} = ({zn}) & M[{k}]"]
            return [f"        o{out} = ({on}) & M[{k}]",
                    f"        z{out} = ({zn}) | M[{k + 2}]"]

        src = ["def _blk(CYCS, M, I, PRESENT):", "    det = 0"]
        for k, q in enumerate(qs):
            src.append(f"    o{q} = I[{2 * k}]; z{q} = I[{2 * k + 1}]")
        src.append("    for CYC in CYCS:")
        names: List[str] = []
        for n in bound:
            names.append(f"o{n}")
            names.append(f"z{n}")
        for p in obs:
            names.append(f"s1_{p}")
            names.append(f"s0_{p}")
        if names:
            src.append(f"        ({', '.join(names)},) = CYC")
        # Fill-level injection: sites that are not cone gate outputs (PIs,
        # flip-flop Qs, boundary nets) get their masks applied after the
        # source values land; gate-output sites inject inline below.
        for n in site_order:
            if n in comb_out:
                continue
            src.extend(inject_stmts(n, f"o{n}", f"z{n}"))
        for gi in cone_gis:
            out = gate_out[gi]
            if out in fuse:
                continue
            op, ins = gate_row[out]
            if op in (OP_XOR, OP_XNOR) and len(ins) > 2:
                src.append(f"        _to = {ref(ins[0], 0)}; "
                           f"_tz = {ref(ins[0], 1)}")
                for i in ins[1:]:
                    src.append(
                        f"        _to, _tz = (_to & {ref(i, 1)}) | "
                        f"(_tz & {ref(i, 0)}), (_to & {ref(i, 0)}) | "
                        f"(_tz & {ref(i, 1)})")
                on, zn = ("_to", "_tz") if op == OP_XOR else ("_tz", "_to")
            else:
                on = expr(op, ins, 0)
                zn = expr(op, ins, 1)
            if out in site_lanes:
                src.extend(inject_stmts(out, on, zn))
            else:
                src.append(f"        o{out} = {on}")
                src.append(f"        z{out} = {zn}")
        # Detection against the good-plane selectors *before* the state
        # latch: observation compares this cycle's settled values.
        for p in obs:
            src.append(f"        det |= (z{p} & s1_{p}) | (o{p} & s0_{p})")
        if cone_dks:
            # One tuple assignment latches every flip-flop simultaneously,
            # so Q->D chains read pre-latch values (synchronous semantics).
            lhs = ", ".join(f"o{dff_q[k]}, z{dff_q[k]}" for k in cone_dks)
            rhs = ", ".join(f"o{dff_d[k]}, z{dff_d[k]}" for k in cone_dks)
            src.append(f"        {lhs} = {rhs}")
        src.append("        if det == PRESENT: break")
        src.append("    return det")

        namespace: Dict[str, object] = {}
        exec(compile("\n".join(src), f"<arena:{arena.name}>", "exec"),
             namespace)
        shape["fn"] = namespace["_blk"]
        shape["setups"] = OrderedDict()
        # The injection mask vector is block-invariant: all of the block's
        # lanes are always present (the block cache is keyed by the exact
        # survivor tuple).
        M: List[int] = []
        for n in site_order:
            m1, m0 = site_lanes[n]
            M.extend((~(m1 | m0), m1, m0))
        shape["M"] = M
        return shape

    def _run_codegen_block(self, b, planes, token: int,
                           initial_state: Optional[Mapping[int, int]]):
        """Execute one built block against the memoized good planes;
        returns ``(det, present)`` lane masks."""
        lanes = b["lanes"]
        full = (1 << lanes) - 1
        # Per-cycle boundary/selector tuples and the initial-state vector
        # depend only on (block, good pass): broadcast masks reference the
        # one shared ``full`` object, so a setup is cheap to hold and free
        # to reuse across repeated simulations of the same sequence.
        setups = b["setups"]
        setup = setups.get(token)
        if setup is None:
            I: List[int] = []
            for q in b["qs"]:
                if initial_state and q in initial_state:
                    I.extend((full, 0) if initial_state[q] else (0, full))
                else:
                    I.extend((0, 0))
            cycs = []
            for plane in planes:
                cyc: List[int] = []
                for n in b["bound"]:
                    i = 2 * n
                    cyc.append(full if plane[i] else 0)
                    cyc.append(full if plane[i + 1] else 0)
                for p in b["obs"]:
                    i = 2 * p
                    cyc.append(full if plane[i] else 0)
                    cyc.append(full if plane[i + 1] else 0)
                cycs.append(tuple(cyc))
            setup = (cycs, I)
            setups[token] = setup
            while len(setups) > 2:
                setups.popitem(last=False)
        else:
            setups.move_to_end(token)
        cycs, I = setup
        return b["fn"](cycs, b["M"], I, full), full

    # -- interpreted block path ----------------------------------------------

    def _run_interp_block(self, blk: Sequence[Fault], planes,
                          initial_state: Optional[Mapping[int, int]],
                          obs_set: frozenset):
        """One-shot lane block without code generation: the same cone
        restriction, injection, detection and early exit as the generated
        path, interpreted over a flat value list.  Used for small or
        unrepeated workloads (ATPG cross-simulation) where per-survivor-set
        codegen could never amortize."""
        arena = self.arena
        cone = arena.cone_of({f.net for f in blk})
        shape = self._block_shape(blk, cone, obs_set)
        lanes = shape["lanes"]
        full = (1 << lanes) - 1
        site_lanes = shape["site_lanes"]
        comb_out = shape["comb_out"]
        fanin, fanin_off = arena.fanin, arena.fanin_off
        gate_op, gate_out = arena.gate_op, arena.gate_out
        dff_q, dff_d = arena.dff_q, arena.dff_d

        fills = []
        for n in shape["site_order"]:
            if n in comb_out:
                continue
            m1, m0 = site_lanes[n]
            fills.append((2 * n, ~(m1 | m0), m1, m0))
        prog = []
        for gi in shape["cone_gis"]:
            out = gate_out[gi]
            ins2 = tuple(2 * i for i in
                         fanin[fanin_off[gi]:fanin_off[gi + 1]])
            m1, m0 = site_lanes.get(out, (0, 0))
            em = ~(m1 | m0) if (m1 or m0) else None
            prog.append((gate_op[gi], 2 * out, ins2, em, m1, m0))
        dffs = [(2 * dff_q[k], 2 * dff_d[k]) for k in shape["cone_dks"]]
        bound2 = [2 * n for n in shape["bound"]]
        obs2 = [2 * p for p in shape["obs"]]

        v = [0] * (2 * arena.num_nets)
        state: Dict[int, Mask] = {}
        for q2, _d2 in dffs:
            if initial_state and q2 // 2 in initial_state:
                state[q2] = (full, 0) if initial_state[q2 // 2] else (0, full)
            else:
                state[q2] = (0, 0)
        det = 0
        for plane in planes:
            for i in bound2:
                v[i] = full if plane[i] else 0
                v[i + 1] = full if plane[i + 1] else 0
            for q2, _d2 in dffs:
                o, z = state[q2]
                v[q2] = o
                v[q2 + 1] = z
            for i, em, m1, m0 in fills:
                v[i] = (v[i] & em) | m1
                v[i + 1] = (v[i + 1] & em) | m0
            for op, o2, ins2, em, m1, m0 in prog:
                if op == OP_AND or op == OP_NAND:
                    o, z = full, 0
                    for i in ins2:
                        o &= v[i]
                        z |= v[i + 1]
                    if op == OP_NAND:
                        o, z = z, o
                elif op == OP_OR or op == OP_NOR:
                    o, z = 0, full
                    for i in ins2:
                        o |= v[i]
                        z &= v[i + 1]
                    if op == OP_NOR:
                        o, z = z, o
                elif op == OP_NOT:
                    o = v[ins2[0] + 1]
                    z = v[ins2[0]]
                elif op == OP_BUF:
                    o = v[ins2[0]]
                    z = v[ins2[0] + 1]
                else:  # XOR / XNOR n-ary fold
                    o, z = 0, full
                    for i in ins2:
                        io, iz = v[i], v[i + 1]
                        o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                    if op == OP_XNOR:
                        o, z = z, o
                if em is not None:
                    o = (o & em) | m1
                    z = (z & em) | m0
                v[o2] = o
                v[o2 + 1] = z
            for i in obs2:
                if plane[i]:
                    det |= v[i + 1]
                elif plane[i + 1]:
                    det |= v[i]
            state = {q2: (v[d2], v[d2 + 1]) for q2, d2 in dffs}
            if det == full:
                break
        return det, full

    # -- public entry --------------------------------------------------------

    def detected_faults(
        self,
        vectors: Sequence[Vector],
        faults: Sequence[Fault],
        initial_state: Optional[Mapping[int, int]] = None,
        extra_observables: Optional[Sequence[int]] = None,
        lanes: int = 512,
    ) -> Tuple[Set[Fault], int]:
        """Detected subset of ``faults`` plus the number of lane blocks run.

        Bit-identical to the interpreted and compiled backends for any mix
        of X inputs, initial flip-flop state and extra observe points.
        """
        from repro.obs import counter

        if not faults:
            return set(), 0
        planes, ever_o, ever_z, token = self._good_pass(vectors,
                                                        initial_state)
        arena = self.arena
        obs_points: Set[int] = set(arena.pos)
        if extra_observables:
            obs_points.update(extra_observables)
        obs_set = frozenset(obs_points)

        surv = [f for f in faults
                if (ever_z[f.net] if f.value == 1 else ever_o[f.net])]
        counter("fault_sim.arena.filtered_undetectable").inc(
            len(faults) - len(surv))
        detected: Set[Fault] = set()
        if not surv:
            return detected, 0
        ordered = arena.cone_pack_order(surv)

        key = (tuple(ordered), tuple(sorted(obs_set)))
        blocks = self._blocks.get(key)
        use_codegen = blocks is not None or (
            len(vectors) >= _env_int("REPRO_ARENA_CODEGEN_MIN_VECTORS",
                                     CODEGEN_MIN_VECTORS)
            and len(ordered) >= _env_int("REPRO_ARENA_CODEGEN_MIN_FAULTS",
                                         CODEGEN_MIN_FAULTS))
        results = []
        if use_codegen:
            if blocks is None:
                counter("fault_sim.arena.codegen_builds").inc()
                parts = self._partition(ordered, base=max(lanes, 64))
                blocks = [
                    self._build_codegen_block(blk, cone, obs_set)
                    for blk, cone, _ng in parts
                ]
                self._blocks[key] = blocks
                while len(self._blocks) > 8:
                    self._blocks.popitem(last=False)
            else:
                counter("fault_sim.arena.block_cache_hits").inc()
                self._blocks.move_to_end(key)
            for b in blocks:
                det, present = self._run_codegen_block(b, planes, token,
                                                       initial_state)
                results.append((b["blk"], det, present))
        else:
            counter("fault_sim.arena.fallback_calls").inc()
            for start in range(0, len(ordered), lanes):
                blk = ordered[start:start + lanes]
                det, present = self._run_interp_block(blk, planes,
                                                      initial_state, obs_set)
                results.append((blk, det, present))

        early = 0
        filled = 0
        for blk, det, present in results:
            filled += bin(present).count("1")
            if det == present:
                early += 1
            while det:
                li = (det & -det).bit_length() - 1
                detected.add(blk[li])
                det &= det - 1
        counter("fault_sim.arena.passes").inc(len(results))
        counter("fault_sim.arena.lanes_filled").inc(filled)
        counter("fault_sim.arena.early_exits").inc(early)
        return detected, len(results)

    # -- transient (SEU) faults ----------------------------------------------

    def detected_transients(
        self,
        vectors: Sequence[Vector],
        faults: Sequence[TransientFault],
        initial_state: Optional[Mapping[int, int]] = None,
        extra_observables: Optional[Sequence[int]] = None,
        lanes: int = 512,
    ) -> Tuple[Set[TransientFault], int]:
        """Detected subset of single-cycle upsets plus lane blocks run.

        Reuses the memoized good planes twice: as the undetectability
        pre-filter (an upset forcing ``v`` at a (site, cycle) where the
        good machine already carries ``v`` is the identity; where it
        carries X the forced binary value is a Kleene refinement — either
        way no binary-vs-binary difference can ever reach an observe
        point, by the same monotonicity argument as the stuck-at filter,
        so only sites whose good value is binary ``1-v`` at the flip
        cycle survive) and as the boundary broadcast inside each lane
        block.  Blocks are sorted flip-cycle first so each block starts
        simulating at its earliest flip, with cone flip-flops seeded from
        the good plane of the preceding cycle (faulty state equals good
        state before the first injection).  Bit-identical to the
        interpreted oracle.
        """
        from repro.obs import counter

        if not faults:
            return set(), 0
        planes, _ever_o, _ever_z, _token = self._good_pass(vectors,
                                                           initial_state)
        arena = self.arena
        obs_points: Set[int] = set(arena.pos)
        if extra_observables:
            obs_points.update(extra_observables)
        obs_set = frozenset(obs_points)

        ncyc = len(planes)
        surv: List[TransientFault] = []
        for f in faults:
            if f.cycle >= ncyc:
                continue
            plane = planes[f.cycle]
            i = 2 * f.net
            if plane[i + 1] if f.value == 1 else plane[i]:
                surv.append(f)
        counter("fault_sim.arena.filtered_undetectable").inc(
            len(faults) - len(surv))
        detected: Set[TransientFault] = set()
        if not surv:
            return detected, 0

        rank = arena.site_rank
        nn = arena.num_nets
        ordered = sorted(
            surv,
            key=lambda f: (f.cycle, rank[f.net] if f.net < nn else -1,
                           f.net, f.value),
        )
        blocks = 0
        filled = 0
        early = 0
        for start in range(0, len(ordered), lanes):
            blk = ordered[start:start + lanes]
            det, present = self._run_interp_transient_block(
                blk, planes, initial_state, obs_set)
            blocks += 1
            filled += bin(present).count("1")
            if det == present:
                early += 1
            while det:
                li = (det & -det).bit_length() - 1
                detected.add(blk[li])
                det &= det - 1
        counter("fault_sim.arena.passes").inc(blocks)
        counter("fault_sim.arena.lanes_filled").inc(filled)
        counter("fault_sim.arena.early_exits").inc(early)
        return detected, blocks

    def _run_interp_transient_block(
        self, blk: Sequence[TransientFault], planes,
        initial_state: Optional[Mapping[int, int]], obs_set: frozenset,
    ):
        """One interpreted lane block of single-cycle upsets.

        Mirrors :meth:`_run_interp_block` with the injection masks gated
        by flip cycle: fills and gate-output overrides are only live
        during a lane's own cycle, so the lane tracks the good machine
        before its flip and free-runs the disturbance afterwards.  Cycles
        before the block's earliest flip are skipped entirely — every
        lane still equals the good machine there, so nothing can detect
        and the state is exactly the good state.
        """
        arena = self.arena
        cone = arena.cone_of({f.net for f in blk})
        shape = self._block_shape(blk, cone, obs_set)
        lanes = shape["lanes"]
        full = (1 << lanes) - 1
        comb_out = shape["comb_out"]
        fanin, fanin_off = arena.fanin, arena.fanin_off
        gate_op, gate_out = arena.gate_op, arena.gate_out
        dff_q, dff_d = arena.dff_q, arena.dff_d

        # cycle -> 2*net -> (force1, force0) lane masks, split by whether
        # the site is produced by a cone gate (inline) or filled (PI, Q,
        # boundary broadcast).
        fill_at: Dict[int, Dict[int, Mask]] = {}
        inj_at: Dict[int, Dict[int, Mask]] = {}
        for li, f in enumerate(blk):
            per = (inj_at if f.net in comb_out else fill_at).setdefault(
                f.cycle, {})
            m1, m0 = per.get(2 * f.net, (0, 0))
            if f.value == 1:
                m1 |= 1 << li
            else:
                m0 |= 1 << li
            per[2 * f.net] = (m1, m0)

        prog = []
        for gi in shape["cone_gis"]:
            ins2 = tuple(2 * i for i in
                         fanin[fanin_off[gi]:fanin_off[gi + 1]])
            prog.append((gate_op[gi], 2 * gate_out[gi], ins2))
        dffs = [(2 * dff_q[k], 2 * dff_d[k]) for k in shape["cone_dks"]]
        bound2 = [2 * n for n in shape["bound"]]
        obs2 = [2 * p for p in shape["obs"]]

        cstart = blk[0].cycle  # blocks are flip-cycle sorted
        v = [0] * (2 * arena.num_nets)
        state: Dict[int, Mask] = {}
        if cstart > 0:
            prev = planes[cstart - 1]
            for q2, d2 in dffs:
                state[q2] = (full if prev[d2] else 0,
                             full if prev[d2 + 1] else 0)
        else:
            for q2, _d2 in dffs:
                if initial_state and q2 // 2 in initial_state:
                    state[q2] = ((full, 0) if initial_state[q2 // 2]
                                 else (0, full))
                else:
                    state[q2] = (0, 0)
        det = 0
        for cycle in range(cstart, len(planes)):
            plane = planes[cycle]
            fills = fill_at.get(cycle)
            injs = inj_at.get(cycle)
            for i in bound2:
                v[i] = full if plane[i] else 0
                v[i + 1] = full if plane[i + 1] else 0
            for q2, _d2 in dffs:
                o, z = state[q2]
                v[q2] = o
                v[q2 + 1] = z
            if fills:
                for i, (m1, m0) in fills.items():
                    em = ~(m1 | m0)
                    v[i] = (v[i] & em) | m1
                    v[i + 1] = (v[i + 1] & em) | m0
            for op, o2, ins2 in prog:
                if op == OP_AND or op == OP_NAND:
                    o, z = full, 0
                    for i in ins2:
                        o &= v[i]
                        z |= v[i + 1]
                    if op == OP_NAND:
                        o, z = z, o
                elif op == OP_OR or op == OP_NOR:
                    o, z = 0, full
                    for i in ins2:
                        o |= v[i]
                        z &= v[i + 1]
                    if op == OP_NOR:
                        o, z = z, o
                elif op == OP_NOT:
                    o = v[ins2[0] + 1]
                    z = v[ins2[0]]
                elif op == OP_BUF:
                    o = v[ins2[0]]
                    z = v[ins2[0] + 1]
                else:  # XOR / XNOR n-ary fold
                    o, z = 0, full
                    for i in ins2:
                        io, iz = v[i], v[i + 1]
                        o, z = (o & iz) | (z & io), (o & io) | (z & iz)
                    if op == OP_XNOR:
                        o, z = z, o
                if injs is not None:
                    m = injs.get(o2)
                    if m is not None:
                        m1, m0 = m
                        em = ~(m1 | m0)
                        o = (o & em) | m1
                        z = (z & em) | m0
                v[o2] = o
                v[o2 + 1] = z
            for i in obs2:
                if plane[i]:
                    det |= v[i + 1]
                elif plane[i + 1]:
                    det |= v[i]
            state = {q2: (v[d2], v[d2 + 1]) for q2, d2 in dffs}
            if det == full:
                break
        return det, full


_SIMS: "WeakKeyDictionary[NetlistArena, ArenaFaultSim]" = WeakKeyDictionary()


def get_arena_sim(arena: NetlistArena) -> ArenaFaultSim:
    """The shared :class:`ArenaFaultSim` for an arena: every facade over
    the same arena object reuses one good-plane memo and block cache."""
    sim = _SIMS.get(arena)
    if sim is None:
        sim = ArenaFaultSim(arena)
        _SIMS[arena] = sim
    return sim
