"""Logic BIST substrate: LFSR pattern generation and MISR compaction.

Complements the deterministic flow with the standard built-in self-test
machinery:

- :class:`Lfsr` — maximal-length Fibonacci LFSR (software model) used as a
  pseudorandom pattern generator,
- :class:`Misr` — multiple-input signature register compacting output
  responses into a signature,
- :class:`BistRun` — drives a netlist with LFSR patterns, computes the
  fault-free signature, measures pseudorandom fault coverage and reports
  the *random-pattern-resistant* faults (the population FACTOR's
  testability analysis and SCOAP predict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.atpg.fault_sim import DEFAULT_LANES, FaultSimulator
from repro.atpg.faults import Fault, build_fault_list
from repro.atpg.simulator import LogicSimulator
from repro.synth.netlist import Netlist

# Primitive-polynomial tap positions (1-indexed from the output bit) giving
# maximal-length sequences; from the standard tables.
_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1), 3: (3, 2), 4: (4, 3), 5: (5, 3), 6: (6, 5), 7: (7, 6),
    8: (8, 6, 5, 4), 9: (9, 5), 10: (10, 7), 11: (11, 9),
    12: (12, 11, 10, 4), 13: (13, 12, 11, 8), 14: (14, 13, 12, 2),
    15: (15, 14), 16: (16, 15, 13, 4), 17: (17, 14), 18: (18, 11),
    19: (19, 18, 17, 14), 20: (20, 17), 21: (21, 19), 22: (22, 21),
    23: (23, 18), 24: (24, 23, 22, 17), 28: (28, 25), 31: (31, 28),
    32: (32, 22, 2, 1),
}


def _taps_for(width: int) -> Tuple[int, ...]:
    if width in _TAPS:
        return _TAPS[width]
    best = max(w for w in _TAPS if w <= width) if width > 2 else 2
    return _TAPS[best]


class Lfsr:
    """Fibonacci LFSR over ``width`` bits (state 0 is excluded)."""

    def __init__(self, width: int, seed: int = 1):
        if width < 2:
            raise ValueError("LFSR width must be >= 2")
        self.width = width
        self.taps = _taps_for(width)
        self.state = seed & ((1 << width) - 1)
        if self.state == 0:
            self.state = 1

    def step(self) -> int:
        fb = 0
        for tap in self.taps:
            fb ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | fb) & ((1 << self.width) - 1)
        if self.state == 0:  # pragma: no cover - cannot happen for max-len
            self.state = 1
        return self.state

    def bits(self) -> List[int]:
        """Current state as a bit list, LSB first."""
        return [(self.state >> i) & 1 for i in range(self.width)]

    def period(self, limit: int = 1 << 20) -> int:
        """Sequence period (for validation; bounded)."""
        start = self.state
        count = 0
        while count < limit:
            self.step()
            count += 1
            if self.state == start:
                return count
        return count


class Misr:
    """Multiple-input signature register (XOR-fed LFSR compactor)."""

    def __init__(self, width: int, seed: int = 0):
        if width < 2:
            raise ValueError("MISR width must be >= 2")
        self.width = width
        self.taps = _taps_for(width)
        self.signature = seed & ((1 << width) - 1)

    def absorb(self, word: int) -> None:
        fb = 0
        for tap in self.taps:
            fb ^= (self.signature >> (tap - 1)) & 1
        self.signature = (
            ((self.signature << 1) | fb) ^ word
        ) & ((1 << self.width) - 1)


@dataclass
class BistReport:
    patterns: int
    signature: int
    coverage_percent: float
    total_faults: int
    detected: int
    resistant: List[Fault] = field(default_factory=list)

    def resistant_names(self, netlist: Netlist,
                        count: int = 10) -> List[str]:
        return [f.describe(netlist) for f in self.resistant[:count]]


class BistRun:
    """Pseudorandom self-test of a netlist.

    The LFSR feeds every primary input each cycle; the fault-free MISR
    signature is the pass/fail reference a hardware BIST controller would
    compare against.
    """

    def __init__(self, netlist: Netlist, seed: int = 0x5EED,
                 reset_input: Optional[str] = None,
                 lanes: int = DEFAULT_LANES,
                 backend: Optional[str] = None):
        self.netlist = netlist
        width = max(2, len(netlist.pis))
        self.lfsr = Lfsr(width, seed=seed)
        self.reset_input = reset_input
        self.lanes = lanes
        self.backend = backend

    def generate_vectors(self, patterns: int) -> List[Dict[int, int]]:
        vectors: List[Dict[int, int]] = []
        reset_net = None
        if self.reset_input is not None:
            for pi in self.netlist.pis:
                if self.netlist.net_name(pi) == self.reset_input:
                    reset_net = pi
        for index in range(patterns):
            self.lfsr.step()
            bits = self.lfsr.bits()
            vec = {pi: bits[i % len(bits)]
                   for i, pi in enumerate(self.netlist.pis)}
            if reset_net is not None:
                vec[reset_net] = 1 if index == 0 else 0
            vectors.append(vec)
        return vectors

    def run(self, patterns: int = 256,
            region: Optional[str] = None) -> BistReport:
        vectors = self.generate_vectors(patterns)

        # Fault-free signature over all POs.
        sim = LogicSimulator(self.netlist, backend=self.backend)
        misr = Misr(max(2, len(self.netlist.pos)))
        for vec in vectors:
            values = sim.step({
                pi: ((1, 0) if bit else (0, 1)) for pi, bit in vec.items()
            })
            word = 0
            for i, po in enumerate(self.netlist.pos):
                ones, _zeros = values.get(po, (0, 0))
                if ones:
                    word |= 1 << i
            misr.absorb(word)

        faults = build_fault_list(self.netlist, region=region)
        fsim = FaultSimulator(self.netlist, lanes=self.lanes,
                              backend=self.backend)
        detected = fsim.detected_faults(vectors, faults)
        resistant = sorted(set(faults) - detected)
        coverage = (100.0 * len(detected) / len(faults)) if faults else 100.0
        return BistReport(
            patterns=patterns,
            signature=misr.signature,
            coverage_percent=coverage,
            total_faults=len(faults),
            detected=len(detected),
            resistant=resistant,
        )
