"""Three-valued (0/1/X) good-machine logic simulation.

Values are bit-parallel across patterns: a net's value over ``width``
patterns is a pair of Python-int masks ``(ones, zeros)`` where bit *i* of
``ones`` means pattern *i* sees logic 1 and bit *i* of ``zeros`` logic 0.
A bit set in neither mask is X.  This single representation serves both
plain multi-pattern simulation and the parallel-fault simulator built on top.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.atpg.compiled import NetValues, get_compiled, resolve_backend

Mask = Tuple[int, int]  # (ones, zeros)


def eval_gate(gtype: GateType, inputs: Sequence[Mask], full: int) -> Mask:
    """Evaluate one gate over bit-parallel three-valued operands."""
    if gtype is GateType.BUF or gtype is GateType.DFF:
        return inputs[0]
    if gtype is GateType.NOT:
        ones, zeros = inputs[0]
        return zeros, ones
    if gtype is GateType.AND or gtype is GateType.NAND:
        ones, zeros = full, 0
        for i1, i0 in inputs:
            ones &= i1
            zeros |= i0
        if gtype is GateType.NAND:
            return zeros, ones
        return ones, zeros
    if gtype is GateType.OR or gtype is GateType.NOR:
        ones, zeros = 0, full
        for i1, i0 in inputs:
            ones |= i1
            zeros &= i0
        if gtype is GateType.NOR:
            return zeros, ones
        return ones, zeros
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        ones, zeros = 0, full
        for i1, i0 in inputs:
            new_ones = (ones & i0) | (zeros & i1)
            new_zeros = (ones & i1) | (zeros & i0)
            ones, zeros = new_ones, new_zeros
        if gtype is GateType.XNOR:
            return zeros, ones
        return ones, zeros
    raise ValueError(f"cannot simulate gate type {gtype}")


class LogicSimulator:
    """Cycle-accurate three-valued simulator for a gate netlist.

    State (DFF outputs) starts all-X, matching a real power-on; a reset
    sequence must be applied to initialise it, exactly the situation a
    sequential ATPG tool faces.

    ``backend`` selects the evaluation strategy: ``"arena"`` (default) and
    ``"compiled"`` both run code generated per netlist by
    :mod:`repro.atpg.compiled` (the arena's good machine *is* that code),
    ``"interpreted"`` walks the gate list — all produce identical values.
    """

    def __init__(self, netlist: Netlist, width: int = 1,
                 backend: Optional[str] = None):
        self.netlist = netlist
        self.width = width
        self.full = (1 << width) - 1
        self.backend = resolve_backend(backend)
        self._dffs = netlist.dffs()
        if self.backend in ("arena", "compiled"):
            self._compiled = get_compiled(netlist)
            self._order = self._compiled.order
        else:
            self._compiled = None
            self._order = netlist.topological_order()
        self.reset_state()

    def reset_state(self) -> None:
        """Set all flip-flops (and nets) to X."""
        self.state: Dict[int, Mask] = {
            dff.output: (0, 0) for dff in self._dffs
        }
        self.values: Mapping[int, Mask] = {}

    def load_state(self, state: Mapping[int, Mask]) -> None:
        self.state = dict(state)

    def step(self, pi_values: Mapping[int, Mask]) -> Mapping[int, Mask]:
        """Simulate one clock cycle.

        ``pi_values`` maps PI net -> (ones, zeros) masks.  Unlisted PIs are X.
        Returns the full net-value map for the cycle (also kept in
        ``self.values``); flip-flop state advances to the new D values.
        """
        if self._compiled is not None:
            return self._step_compiled(pi_values)
        full = self.full
        values: Dict[int, Mask] = {CONST0: (0, full), CONST1: (full, 0)}
        for pi in self.netlist.pis:
            values[pi] = pi_values.get(pi, (0, 0))
        for dff in self._dffs:
            values[dff.output] = self.state.get(dff.output, (0, 0))
        for gate in self._order:
            operands = [values.get(i, (0, 0)) for i in gate.inputs]
            values[gate.output] = eval_gate(gate.type, operands, full)
        self.values = values
        self.state = {
            dff.output: values.get(dff.inputs[0], (0, 0))
            for dff in self._dffs
        }
        return values

    def _step_compiled(self, pi_values: Mapping[int, Mask]
                       ) -> Mapping[int, Mask]:
        cn = self._compiled
        full = self.full
        flat = cn.fresh_values(full)
        for pi in cn.pis:
            ones, zeros = pi_values.get(pi, (0, 0))
            i = 2 * pi
            flat[i] = ones
            flat[i + 1] = zeros
        state = self.state
        for dff in self._dffs:
            ones, zeros = state.get(dff.output, (0, 0))
            i = 2 * dff.output
            flat[i] = ones
            flat[i + 1] = zeros
        cn.eval_into(flat, full)
        values = NetValues(flat, cn.num_nets)
        self.values = values
        self.state = {
            dff.output: (flat[2 * dff.inputs[0]],
                         flat[2 * dff.inputs[0] + 1])
            for dff in self._dffs
        }
        return values

    def run(self, vectors: Iterable[Mapping[int, Mask]]
            ) -> List[Dict[int, Mask]]:
        """Simulate a sequence of input vectors; returns per-cycle PO maps."""
        outputs = []
        for vec in vectors:
            values = self.step(vec)
            outputs.append({po: values.get(po, (0, 0))
                            for po in self.netlist.pos})
        return outputs

    # -- scalar conveniences --------------------------------------------------

    def step_scalar(self, pi_bits: Mapping[str, int]) -> Dict[str, Optional[int]]:
        """Single-pattern convenience: PI names -> 0/1, returns PO name -> bit.

        ``None`` in the result marks an X output.
        """
        by_name = {self.netlist.net_name(pi): pi for pi in self.netlist.pis}
        vec: Dict[int, Mask] = {}
        for name, bit in pi_bits.items():
            net = by_name.get(name)
            if net is None:
                raise KeyError(f"no primary input named {name!r}")
            vec[net] = (self.full, 0) if bit else (0, self.full)
        values = self.step(vec)
        out: Dict[str, Optional[int]] = {}
        for po, name in self.netlist.po_pairs:
            ones, zeros = values.get(po, (0, 0))
            if ones & 1:
                out[name] = 1
            elif zeros & 1:
                out[name] = 0
            else:
                out[name] = None
        return out
