"""Time-frame expansion for sequential test generation.

An :class:`UnrolledModel` presents ``k`` copies of the combinational logic of
a sequential netlist as one combinational circuit: the flip-flop D values of
frame *t* feed the flip-flop Q nets of frame *t+1*.  Frame-0 Q nets are
unknown (X) sources — unless the flop is a PIER, in which case frame-0 Q is
assignable (the register can be loaded from the chip pins) and its last-frame
D is observable (it can be stored back out).

Keys are ``(frame, net)`` pairs over the base netlist's net ids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.synth.netlist import CONST0, CONST1, Gate, GateType, Netlist

Key = Tuple[int, int]  # (frame, net)


class UnrolledModel:
    """Combinational view of ``frames`` copies of a sequential netlist."""

    def __init__(self, netlist: Netlist, frames: int,
                 pier_qs: Optional[Set[int]] = None,
                 exclude_pis: Optional[Set[int]] = None):
        if frames < 1:
            raise ValueError("need at least one time frame")
        self.netlist = netlist
        self.frames = frames
        self.pier_qs: Set[int] = set(pier_qs or ())
        excluded = set(exclude_pis or ())

        self.order: List[Gate] = netlist.topological_order()
        self.driver: Dict[int, Gate] = {g.output: g for g in netlist.gates
                                        if g.type is not GateType.DFF}
        self.dffs: List[Gate] = netlist.dffs()
        self.dff_of_q: Dict[int, Gate] = {g.output: g for g in self.dffs}

        # Fanout within a frame (combinational gates reading each net).
        self.fanout: Dict[int, List[Gate]] = {}
        for gate in self.order:
            for inp in gate.inputs:
                self.fanout.setdefault(inp, []).append(gate)
        # Nets that are D inputs of flops (cross-frame edges).
        self.d_to_qs: Dict[int, List[int]] = {}
        for dff in self.dffs:
            self.d_to_qs.setdefault(dff.inputs[0], []).append(dff.output)

        self.base_pis: List[int] = [p for p in netlist.pis
                                    if p not in excluded]
        self.assignable: List[Key] = []
        for frame in range(frames):
            for pi in self.base_pis:
                self.assignable.append((frame, pi))
        for q in sorted(self.pier_qs):
            self.assignable.append((0, q))

        self.observable: List[Key] = []
        for frame in range(frames):
            for po in netlist.pos:
                self.observable.append((frame, po))
        for q in sorted(self.pier_qs):
            dff = self.dff_of_q[q]
            self.observable.append((frames - 1, dff.inputs[0]))

        # Combinational level of each net within a frame (PIs/Qs at 0).
        self._levels = netlist.levels(self.order)
        self._controllable = self._compute_controllable()

    # -- static analyses --------------------------------------------------------

    def _compute_controllable(self) -> Set[int]:
        """Base nets whose value can (possibly) be influenced by assignable
        inputs within a frame chain.  Nets fed only by constants are not
        controllable; frame-0 Q nets are handled frame-sensitively in
        :meth:`is_controllable`."""
        controllable: Set[int] = set(self.base_pis) | set(self.pier_qs)
        for dff in self.dffs:
            controllable.add(dff.output)  # later frames: via previous frame
        changed = True
        while changed:
            changed = False
            for gate in self.order:
                if gate.output in controllable:
                    continue
                if any(i in controllable for i in gate.inputs):
                    controllable.add(gate.output)
                    changed = True
        return controllable

    def level(self, key: Key) -> int:
        frame, net = key
        base = len(self._levels)
        return frame * base + self._levels.get(net, 0)

    def is_assignable(self, key: Key) -> bool:
        frame, net = key
        if net in self.pier_qs:
            return frame == 0
        return net in self.base_pis

    def is_x_source(self, key: Key) -> bool:
        """True when the key is a frame-0 flop output that cannot be set."""
        frame, net = key
        return frame == 0 and net in self.dff_of_q and net not in self.pier_qs

    def is_controllable(self, key: Key) -> bool:
        frame, net = key
        if self.is_x_source(key):
            return False
        return net in self._controllable

    def driver_of(self, key: Key) -> Optional[Tuple[str, object, List[Key]]]:
        """Driving structure of a key.

        Returns ``("gate", Gate, input_keys)`` for combinational gates,
        ``("dff", Gate, [d_key])`` for cross-frame flop edges, or ``None``
        for sources (PIs, frame-0 Qs, constants, floating nets).
        """
        frame, net = key
        gate = self.driver.get(net)
        if gate is not None:
            return ("gate", gate, [(frame, i) for i in gate.inputs])
        dff = self.dff_of_q.get(net)
        if dff is not None and frame > 0:
            return ("dff", dff, [(frame - 1, dff.inputs[0])])
        return None

    def fanout_keys(self, key: Key) -> List[Key]:
        """Keys whose value depends directly on ``key``."""
        frame, net = key
        out = [(frame, g.output) for g in self.fanout.get(net, [])]
        if frame + 1 < self.frames:
            for q in self.d_to_qs.get(net, []):
                out.append((frame + 1, q))
        return out

    def fault_site_keys(self, net: int) -> List[Key]:
        """All frame copies of a fault site."""
        return [(frame, net) for frame in range(self.frames)]

    def base_values(self) -> Dict[Key, int]:
        """Fault-free five-valued values with all inputs unassigned.

        Computed once per model and shared by every PODEM run: a fresh fault
        search copies this map and injects only the fault's own disturbance,
        instead of re-evaluating every gate in every frame.
        """
        if getattr(self, "_base_values", None) is None:
            from repro.atpg.values import V0, V1, VX
            from repro.atpg.podem import eval_gate_values

            val: Dict[Key, int] = {}
            for frame in range(self.frames):
                val[(frame, CONST0)] = V0
                val[(frame, CONST1)] = V1
                for gate in self.order:
                    input_keys = [(frame, i) for i in gate.inputs]
                    val[(frame, gate.output)] = eval_gate_values(
                        gate.type, input_keys, val
                    )
                if frame + 1 < self.frames:
                    for dff in self.dffs:
                        val[(frame + 1, dff.output)] = val.get(
                            (frame, dff.inputs[0]), VX
                        )
            self._base_values = val
        return self._base_values
