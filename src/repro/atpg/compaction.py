"""Static test-set compaction.

The ATPG flow accumulates one test per targeted fault plus the random-phase
sequences; many are redundant by the time the set is complete.  Classic
reverse-order fault simulation keeps only tests that detect at least one
fault not covered by the tests already kept — typically shrinking functional
test sets by 2-5x without losing coverage, which matters when the vectors
are applied through expensive at-speed functional testers (the paper's
target environment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.atpg.fault_sim import DEFAULT_LANES, FaultSimulator
from repro.atpg.faults import Fault, build_fault_list
from repro.atpg.vectors import Test, TestSet
from repro.synth.netlist import Netlist


@dataclass
class CompactionResult:
    original_tests: int
    kept_tests: int
    original_vectors: int
    kept_vectors: int
    coverage_percent: float
    testset: TestSet

    @property
    def test_reduction_percent(self) -> float:
        if not self.original_tests:
            return 0.0
        return 100.0 * (1 - self.kept_tests / self.original_tests)


def compact(testset: TestSet, netlist: Netlist,
            region: Optional[str] = None,
            extra_observables: Optional[Sequence[int]] = None,
            reverse: bool = True,
            lanes: Optional[int] = None,
            backend: Optional[str] = None) -> CompactionResult:
    """Reverse-order static compaction of ``testset`` against ``netlist``.

    Tests are re-simulated (newest first by default — deterministic tests
    tend to be more specific than the early random sequences, so visiting
    them first drops the broad random sequences whenever the targeted tests
    subsume them) and kept only when they detect a yet-undetected fault.
    """
    pi_by_name = {netlist.net_name(pi): pi for pi in netlist.pis}
    q_by_name = {netlist.net_name(d.output): d.output
                 for d in netlist.dffs()}
    faults = build_fault_list(netlist, region=region)
    fsim = FaultSimulator(netlist, lanes=lanes or DEFAULT_LANES,
                          backend=backend)

    remaining: Set[Fault] = set(faults)
    kept: List[Test] = []
    order = list(reversed(testset.tests)) if reverse else list(testset.tests)
    for test in order:
        if not remaining:
            break
        vectors = [
            {pi_by_name[n]: bit for n, bit in vec.items()
             if n in pi_by_name}
            for vec in test.vectors
        ]
        init = {
            q_by_name[n]: bit
            for n, bit in test.initial_state.items() if n in q_by_name
        }
        detected = fsim.detected_faults(
            vectors, sorted(remaining), initial_state=init or None,
            extra_observables=extra_observables,
        )
        if detected:
            remaining -= detected
            kept.append(test)

    kept.reverse()
    compacted = TestSet(testset.name + "@compact", testset.pi_names)
    for test in kept:
        compacted.add(test)
    coverage = (
        100.0 * (len(faults) - len(remaining)) / len(faults)
        if faults else 100.0
    )
    return CompactionResult(
        original_tests=len(testset.tests),
        kept_tests=len(kept),
        original_vectors=testset.num_vectors,
        kept_vectors=compacted.num_vectors,
        coverage_percent=coverage,
        testset=compacted,
    )
