"""Single stuck-at fault model with structural equivalence collapsing.

Fault sites are nets (gate outputs and primary inputs).  Collapsing applies
the classical structural equivalences along fanout-free connections:

- ``BUF``/``NOT``: input faults are equivalent to (possibly inverted) output
  faults — the input-side fault is dropped when the input net has a single
  fanout,
- ``AND``/``NAND``: an input stuck-at-0 is equivalent to the output
  stuck-at-0 (stuck-at-1 for NAND),
- ``OR``/``NOR``: dually for input stuck-at-1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.synth.netlist import CONST1, GateType, Netlist

#: Fault-model selector values accepted by the engine, the job protocol
#: and the campaign layer: permanent stuck-at faults, transient SEU
#: bit-flips, or the union of both populations.
FAULT_MODELS = ("stuck", "transient", "both")


@dataclass(frozen=True, order=True)
class Fault:
    """Net ``net`` stuck at ``value`` (0 or 1)."""

    net: int
    value: int

    def describe(self, netlist: Netlist) -> str:
        return f"{netlist.net_name(self.net)} stuck-at-{self.value}"


@dataclass(frozen=True, order=True)
class TransientFault:
    """SEU model: net ``net`` forced to ``value`` during cycle ``cycle``.

    Unlike a stuck-at fault the upset is active for exactly one clock
    cycle; before and after it the machine follows the good circuit, so
    the fault is only observable if the one-cycle disturbance propagates
    to an observe point (possibly through state) before it dies out.
    """

    net: int
    value: int
    cycle: int

    def describe(self, netlist: Netlist) -> str:
        return (f"{netlist.net_name(self.net)} flipped-to-{self.value} "
                f"@cycle {self.cycle}")


def all_fault_sites(netlist: Netlist) -> List[int]:
    """Nets that carry signal: PIs, gate outputs and flop outputs."""
    sites = list(netlist.pis)
    sites.extend(g.output for g in netlist.gates)
    return sites


def build_fault_list(netlist: Netlist, region: Optional[str] = None,
                     collapse: bool = True) -> List[Fault]:
    """Collapsed stuck-at fault list.

    ``region`` restricts faults to nets whose hierarchical creation region
    starts with the given instance prefix — this is how faults "in the MUT"
    are targeted while the surrounding logic stays fault-free, mirroring the
    paper's flow of giving the whole design to the ATPG tool but targeting
    only the embedded module's faults.
    """
    sites = all_fault_sites(netlist)
    if region is not None:
        regions = getattr(netlist, "regions", {})
        sites = [n for n in sites if regions.get(n, "").startswith(region)]

    faults: Set[Fault] = set()
    for net in sites:
        faults.add(Fault(net, 0))
        faults.add(Fault(net, 1))

    if collapse:
        fanout_count: Dict[int, int] = {}
        for gate in netlist.gates:
            for inp in gate.inputs:
                fanout_count[inp] = fanout_count.get(inp, 0) + 1
        for po in netlist.pos:
            fanout_count[po] = fanout_count.get(po, 0) + 1

        net_regions = getattr(netlist, "regions", {})
        for gate in netlist.gates:
            gtype = gate.type
            if gtype is GateType.DFF:
                continue
            out_region = net_regions.get(gate.output, "")
            for inp in gate.inputs:
                if inp <= CONST1 or fanout_count.get(inp, 0) != 1:
                    continue
                if net_regions.get(inp, "") != out_region:
                    # Never collapse across hierarchical region boundaries:
                    # the representative must stay inside its module so that
                    # per-MUT fault targeting keeps the right population.
                    continue
                if gtype in (GateType.BUF, GateType.NOT):
                    faults.discard(Fault(inp, 0))
                    faults.discard(Fault(inp, 1))
                elif gtype in (GateType.AND, GateType.NAND):
                    faults.discard(Fault(inp, 0))
                elif gtype in (GateType.OR, GateType.NOR):
                    faults.discard(Fault(inp, 1))

    return sorted(faults)


def build_transient_fault_list(netlist: Netlist, num_cycles: int,
                               region: Optional[str] = None,
                               sample: Optional[int] = None,
                               seed: int = 2002) -> List[TransientFault]:
    """Deterministic SEU fault population over a ``num_cycles`` window.

    The full universe is ``sites x {0,1} x cycles``; when ``sample`` is
    given, a seeded uniform sample (without replacement) of that many
    upsets is drawn so campaign trials with the same seed always inject
    the exact same flips.  The returned list is sorted, which together
    with the seeded draw makes the schedule reproducible byte-for-byte.
    """
    if num_cycles <= 0:
        return []
    sites = all_fault_sites(netlist)
    if region is not None:
        regions = getattr(netlist, "regions", {})
        sites = [n for n in sites if regions.get(n, "").startswith(region)]

    universe = len(sites) * 2 * num_cycles
    if sample is None or sample >= universe:
        return sorted(TransientFault(net, value, cycle)
                      for net in sites
                      for value in (0, 1)
                      for cycle in range(num_cycles))

    # Index the universe as site-major/value/cycle and sample indices so
    # huge universes never materialize: index = (site_i * 2 + value) *
    # num_cycles + cycle.
    rng = random.Random(seed)
    picked = rng.sample(range(universe), sample)
    out = []
    for idx in picked:
        cycle = idx % num_cycles
        rest = idx // num_cycles
        value = rest % 2
        out.append(TransientFault(sites[rest // 2], value, cycle))
    return sorted(out)


def fault_universe_size(netlist: Netlist,
                        region: Optional[str] = None) -> int:
    """Uncollapsed fault count (2 faults per site)."""
    sites = all_fault_sites(netlist)
    if region is not None:
        regions = getattr(netlist, "regions", {})
        sites = [n for n in sites if regions.get(n, "").startswith(region)]
    return 2 * len(sites)
