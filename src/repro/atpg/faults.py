"""Single stuck-at fault model with structural equivalence collapsing.

Fault sites are nets (gate outputs and primary inputs).  Collapsing applies
the classical structural equivalences along fanout-free connections:

- ``BUF``/``NOT``: input faults are equivalent to (possibly inverted) output
  faults — the input-side fault is dropped when the input net has a single
  fanout,
- ``AND``/``NAND``: an input stuck-at-0 is equivalent to the output
  stuck-at-0 (stuck-at-1 for NAND),
- ``OR``/``NOR``: dually for input stuck-at-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.synth.netlist import CONST1, GateType, Netlist


@dataclass(frozen=True, order=True)
class Fault:
    """Net ``net`` stuck at ``value`` (0 or 1)."""

    net: int
    value: int

    def describe(self, netlist: Netlist) -> str:
        return f"{netlist.net_name(self.net)} stuck-at-{self.value}"


def all_fault_sites(netlist: Netlist) -> List[int]:
    """Nets that carry signal: PIs, gate outputs and flop outputs."""
    sites = list(netlist.pis)
    sites.extend(g.output for g in netlist.gates)
    return sites


def build_fault_list(netlist: Netlist, region: Optional[str] = None,
                     collapse: bool = True) -> List[Fault]:
    """Collapsed stuck-at fault list.

    ``region`` restricts faults to nets whose hierarchical creation region
    starts with the given instance prefix — this is how faults "in the MUT"
    are targeted while the surrounding logic stays fault-free, mirroring the
    paper's flow of giving the whole design to the ATPG tool but targeting
    only the embedded module's faults.
    """
    sites = all_fault_sites(netlist)
    if region is not None:
        regions = getattr(netlist, "regions", {})
        sites = [n for n in sites if regions.get(n, "").startswith(region)]

    faults: Set[Fault] = set()
    for net in sites:
        faults.add(Fault(net, 0))
        faults.add(Fault(net, 1))

    if collapse:
        fanout_count: Dict[int, int] = {}
        for gate in netlist.gates:
            for inp in gate.inputs:
                fanout_count[inp] = fanout_count.get(inp, 0) + 1
        for po in netlist.pos:
            fanout_count[po] = fanout_count.get(po, 0) + 1

        net_regions = getattr(netlist, "regions", {})
        for gate in netlist.gates:
            gtype = gate.type
            if gtype is GateType.DFF:
                continue
            out_region = net_regions.get(gate.output, "")
            for inp in gate.inputs:
                if inp <= CONST1 or fanout_count.get(inp, 0) != 1:
                    continue
                if net_regions.get(inp, "") != out_region:
                    # Never collapse across hierarchical region boundaries:
                    # the representative must stay inside its module so that
                    # per-MUT fault targeting keeps the right population.
                    continue
                if gtype in (GateType.BUF, GateType.NOT):
                    faults.discard(Fault(inp, 0))
                    faults.discard(Fault(inp, 1))
                elif gtype in (GateType.AND, GateType.NAND):
                    faults.discard(Fault(inp, 0))
                elif gtype in (GateType.OR, GateType.NOR):
                    faults.discard(Fault(inp, 1))

    return sorted(faults)


def fault_universe_size(netlist: Netlist,
                        region: Optional[str] = None) -> int:
    """Uncollapsed fault count (2 faults per site)."""
    sites = all_fault_sites(netlist)
    if region is not None:
        regions = getattr(netlist, "regions", {})
        sites = [n for n in sites if regions.get(n, "").startswith(region)]
    return 2 * len(sites)
