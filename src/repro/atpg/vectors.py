"""Test-set containers, persistence and replay.

The ATPG engine produces tests as per-frame PI assignments plus an optional
PIER pre-load state.  This module gives them a stable, name-keyed form that
survives netlist rebuilds, a simple text format for saving/loading, and a
replay helper that re-measures fault coverage on any structurally compatible
netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.synth.netlist import Netlist


@dataclass
class Test:
    """One test: a vector sequence plus an optional register pre-load."""

    __test__ = False  # not a pytest class

    vectors: List[Dict[str, int]]            # PI name -> bit, per frame
    initial_state: Dict[str, int] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return len(self.vectors)


class TestSet:
    """A named collection of tests over a fixed input interface."""

    __test__ = False  # not a pytest class

    def __init__(self, name: str, pi_names: Sequence[str]):
        self.name = name
        self.pi_names = list(pi_names)
        self.tests: List[Test] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def from_engine(cls, engine, netlist: Netlist,
                    name: Optional[str] = None) -> "TestSet":
        """Capture the tests recorded by an :class:`AtpgEngine` run."""
        out = cls(name or netlist.name,
                  [netlist.net_name(pi) for pi in netlist.pis])
        for vectors, init in engine.tests:
            named_vectors = [
                {netlist.net_name(pi): bit for pi, bit in vec.items()}
                for vec in vectors
            ]
            named_init = {
                netlist.net_name(q): bit for q, bit in init.items()
            }
            out.tests.append(Test(vectors=named_vectors,
                                  initial_state=named_init))
        return out

    def add(self, test: Test) -> None:
        self.tests.append(test)

    @property
    def num_vectors(self) -> int:
        return sum(t.length for t in self.tests)

    # -- persistence ----------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the test set in a line-oriented text format."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"testset {self.name}\n")
            handle.write("inputs " + " ".join(self.pi_names) + "\n")
            for test in self.tests:
                handle.write("test\n")
                for sig, bit in sorted(test.initial_state.items()):
                    handle.write(f"state {sig} {bit}\n")
                for vec in test.vectors:
                    bits = "".join(
                        str(vec[n]) if n in vec else "-"
                        for n in self.pi_names
                    )
                    handle.write(f"vec {bits}\n")
                handle.write("end\n")

    @classmethod
    def load(cls, path: str) -> "TestSet":
        with open(path, "r", encoding="utf-8") as handle:
            lines = [ln.rstrip("\n") for ln in handle]
        if not lines or not lines[0].startswith("testset "):
            raise ValueError(f"{path}: not a test-set file")
        name = lines[0].split(" ", 1)[1]
        if not lines[1].startswith("inputs "):
            raise ValueError(f"{path}: missing inputs line")
        pi_names = lines[1].split()[1:]
        out = cls(name, pi_names)
        current: Optional[Test] = None
        for lineno, line in enumerate(lines[2:], start=3):
            if not line.strip():
                continue
            if line == "test":
                current = Test(vectors=[])
            elif line == "end":
                if current is None:
                    raise ValueError(f"{path}:{lineno}: stray 'end'")
                out.tests.append(current)
                current = None
            elif line.startswith("state "):
                if current is None:
                    raise ValueError(f"{path}:{lineno}: state outside test")
                _, sig, bit = line.split()
                current.initial_state[sig] = int(bit)
            elif line.startswith("vec "):
                if current is None:
                    raise ValueError(f"{path}:{lineno}: vec outside test")
                bits = line.split(" ", 1)[1]
                if len(bits) != len(pi_names):
                    raise ValueError(
                        f"{path}:{lineno}: vector width {len(bits)} != "
                        f"{len(pi_names)} inputs"
                    )
                vec = {
                    n: int(b) for n, b in zip(pi_names, bits) if b != "-"
                }
                current.vectors.append(vec)
            else:
                raise ValueError(f"{path}:{lineno}: bad line {line!r}")
        if current is not None:
            raise ValueError(f"{path}: unterminated test")
        return out

    # -- replay ------------------------------------------------------------------

    def measure_coverage(self, netlist: Netlist,
                         region: Optional[str] = None,
                         extra_observables: Optional[Sequence[int]] = None,
                         lanes: Optional[int] = None,
                         backend: Optional[str] = None) -> float:
        """Fault-simulate every test against ``netlist``; returns coverage %
        over the (region-filtered) collapsed fault list."""
        from repro.atpg.fault_sim import DEFAULT_LANES, FaultSimulator
        from repro.atpg.faults import build_fault_list

        pi_by_name = {netlist.net_name(pi): pi for pi in netlist.pis}
        q_by_name = {netlist.net_name(d.output): d.output
                     for d in netlist.dffs()}
        faults = build_fault_list(netlist, region=region)
        if not faults:
            return 100.0
        fsim = FaultSimulator(netlist, lanes=lanes or DEFAULT_LANES,
                              backend=backend)
        remaining = set(faults)
        for test in self.tests:
            if not remaining:
                break
            vectors = [
                {pi_by_name[n]: bit for n, bit in vec.items()
                 if n in pi_by_name}
                for vec in test.vectors
            ]
            init = {
                q_by_name[n]: bit
                for n, bit in test.initial_state.items() if n in q_by_name
            }
            remaining -= fsim.detected_faults(
                vectors, sorted(remaining), initial_state=init or None,
                extra_observables=extra_observables,
            )
        return 100.0 * (len(faults) - len(remaining)) / len(faults)
