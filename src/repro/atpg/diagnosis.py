"""Fault diagnosis: locating a defect from observed tester failures.

Complements test generation with the classic dictionary-free effect-cause
approach: given the test set and the per-vector pass/fail syndrome observed
on a failing device, every modelled stuck-at fault is simulated and scored
by how well its prediction matches the observation.

Scoring follows the standard match/mismatch counts:

- ``tau`` (intersection) — failing vectors the candidate explains,
- ``iota`` (prediction misses) — vectors the candidate predicts to fail but
  the device passed,
- ``upsilon`` (observation misses) — failing vectors the candidate cannot
  explain.

A perfect candidate has ``iota == upsilon == 0``; ranking is lexicographic
(maximise tau, minimise iota + upsilon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.fault_sim import DEFAULT_LANES, FaultSimulator
from repro.atpg.faults import Fault, build_fault_list
from repro.atpg.vectors import TestSet
from repro.synth.netlist import Netlist


@dataclass
class Candidate:
    fault: Fault
    tau: int       # explained failures
    iota: int      # predicted-but-not-observed failures
    upsilon: int   # observed-but-not-predicted failures

    @property
    def perfect(self) -> bool:
        return self.iota == 0 and self.upsilon == 0

    def score(self) -> Tuple[int, int]:
        return (-self.tau, self.iota + self.upsilon)


class Diagnoser:
    """Effect-cause diagnosis over a test set."""

    def __init__(self, netlist: Netlist, testset: TestSet,
                 region: Optional[str] = None,
                 lanes: int = DEFAULT_LANES,
                 backend: Optional[str] = None):
        self.netlist = netlist
        self.testset = testset
        self.lanes = lanes
        self.backend = backend
        self.faults = build_fault_list(netlist, region=region)
        self._syndromes: Optional[Dict[Fault, Tuple[bool, ...]]] = None

    # -- forward direction: what would each fault do on the tester? ----------

    def fault_syndromes(self) -> Dict[Fault, Tuple[bool, ...]]:
        """Per-fault tuple: does test *i* fail under this fault?"""
        if self._syndromes is None:
            per_test: List[Set[Fault]] = []
            fsim = FaultSimulator(self.netlist, lanes=self.lanes,
                                  backend=self.backend)
            pi_by_name = {self.netlist.net_name(pi): pi
                          for pi in self.netlist.pis}
            q_by_name = {self.netlist.net_name(d.output): d.output
                         for d in self.netlist.dffs()}
            for test in self.testset.tests:
                vectors = [
                    {pi_by_name[n]: b for n, b in vec.items()
                     if n in pi_by_name}
                    for vec in test.vectors
                ]
                init = {
                    q_by_name[n]: b
                    for n, b in test.initial_state.items()
                    if n in q_by_name
                }
                per_test.append(fsim.detected_faults(
                    vectors, self.faults, initial_state=init or None,
                ))
            self._syndromes = {
                fault: tuple(fault in det for det in per_test)
                for fault in self.faults
            }
        return self._syndromes

    def observe(self, fault: Fault) -> Tuple[bool, ...]:
        """Simulate the tester response of a device carrying ``fault``
        (used to fabricate observations in tests and demos)."""
        return self.fault_syndromes().get(
            fault,
            tuple(False for _ in self.testset.tests),
        )

    # -- backward direction: rank candidates against an observation -----------

    def diagnose(self, observed_failures: Sequence[bool],
                 max_candidates: int = 10) -> List[Candidate]:
        """Rank fault candidates against a pass/fail syndrome."""
        if len(observed_failures) != len(self.testset.tests):
            raise ValueError(
                f"syndrome length {len(observed_failures)} != "
                f"{len(self.testset.tests)} tests"
            )
        observed = tuple(bool(b) for b in observed_failures)
        candidates: List[Candidate] = []
        for fault, predicted in self.fault_syndromes().items():
            tau = sum(1 for o, p in zip(observed, predicted) if o and p)
            iota = sum(1 for o, p in zip(observed, predicted)
                       if p and not o)
            upsilon = sum(1 for o, p in zip(observed, predicted)
                          if o and not p)
            if tau == 0 and not any(observed):
                continue
            candidates.append(Candidate(fault=fault, tau=tau, iota=iota,
                                        upsilon=upsilon))
        candidates.sort(key=Candidate.score)
        return candidates[:max_candidates]

    def resolution(self, fault: Fault) -> int:
        """How many candidates tie with the true fault's syndrome —
        the diagnostic resolution of the test set for this fault."""
        target = self.observe(fault)
        return sum(
            1 for predicted in self.fault_syndromes().values()
            if predicted == target
        )
