"""ATPG substrate: stuck-at fault model, fault simulation and test generation.

Stands in for the commercial sequential ATPG tool of the paper.  Provides:

- a five-valued (0, 1, X, D, D') D-algebra (:mod:`repro.atpg.values`),
- three-valued good-machine simulation (:mod:`repro.atpg.simulator`),
- a collapsed single-stuck-at fault list (:mod:`repro.atpg.faults`),
- parallel-fault sequential fault simulation (:mod:`repro.atpg.fault_sim`),
- PODEM with backtrack limits (:mod:`repro.atpg.podem`),
- time-frame-expansion sequential ATPG (:mod:`repro.atpg.sequential`),
- a driver producing coverage / efficiency / CPU-time reports
  (:mod:`repro.atpg.engine`),
- SCOAP testability measures (:mod:`repro.atpg.scoap`).
"""

from repro.atpg.values import V0, V1, VX, VD, VDBAR
from repro.atpg.faults import Fault, build_fault_list
from repro.atpg.simulator import LogicSimulator
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.podem import Podem, PodemResult
from repro.atpg.sequential import UnrolledModel
from repro.atpg.engine import AtpgEngine, AtpgOptions, AtpgReport, SequentialAtpg
from repro.atpg.scoap import scoap_measures, ScoapMeasures
from repro.atpg.vectors import Test, TestSet
from repro.atpg.compaction import compact, CompactionResult
from repro.atpg.diagnosis import Candidate, Diagnoser
from repro.atpg.bist import BistReport, BistRun, Lfsr, Misr
from repro.atpg.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    build_transition_fault_list,
    transition_coverage,
)

__all__ = [
    "V0",
    "V1",
    "VX",
    "VD",
    "VDBAR",
    "Fault",
    "build_fault_list",
    "LogicSimulator",
    "FaultSimulator",
    "Podem",
    "PodemResult",
    "UnrolledModel",
    "SequentialAtpg",
    "AtpgEngine",
    "AtpgOptions",
    "AtpgReport",
    "scoap_measures",
    "ScoapMeasures",
    "Test",
    "TestSet",
    "compact",
    "CompactionResult",
    "Candidate",
    "Diagnoser",
    "BistReport",
    "BistRun",
    "Lfsr",
    "Misr",
    "TransitionFault",
    "TransitionFaultSimulator",
    "build_transition_fault_list",
    "transition_coverage",
]
