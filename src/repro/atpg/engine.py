"""ATPG driver: random phase + deterministic PODEM phase + fault dropping.

Produces the numbers the paper's Tables 4-6 report per module: fault
coverage %, ATPG efficiency % (detected + proven-untestable over total),
test generation CPU time and total CPU time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import CpuTimer, Deadline, counter, gauge, histogram, \
    progress, span
from repro.obs.record import RunRecord
from repro.synth.netlist import Netlist
from repro.atpg.faults import (Fault, TransientFault, build_fault_list,
                               build_transient_fault_list)
from repro.atpg.fault_sim import DEFAULT_LANES, FaultSimulator
from repro.atpg.podem import Podem, PodemResult
from repro.atpg.sequential import UnrolledModel


@dataclass
class AtpgOptions:
    """Knobs for a test-generation run.

    The limits are what make an embedded module hard: with the whole design
    around it, the same backtrack/time budget that easily covers the
    stand-alone module aborts on most faults — exactly the effect of the
    paper's Table 4.
    """

    max_frames: int = 8
    frame_schedule: Optional[Sequence[int]] = None
    backtrack_limit: int = 200
    fault_time_limit: float = 1.0  # CPU seconds per fault per depth
    total_time_limit: Optional[float] = None  # CPU budget for the whole run
    random_sequences: int = 16
    random_sequence_length: int = 32
    seed: int = 2002
    pier_qs: frozenset = frozenset()
    fault_region: Optional[str] = None
    fault_sample: Optional[int] = None
    # Which fault populations the run targets/grades.  "stuck" is the
    # classic flow.  "both" additionally grades the generated test set
    # against a seeded SEU population (single-cycle bit flips).  In
    # "transient" mode the deterministic PODEM phase is skipped — only the
    # random phase generates sequences, which are then graded against the
    # SEU population; that is the cheap robustness-screening trial shape
    # campaigns sweep against the full flow.
    fault_model: str = "stuck"
    # Seeded sample size of the SEU population (sites x values x cycles);
    # None grades the full universe.
    transient_sample: Optional[int] = 256
    fault_sim_lanes: int = DEFAULT_LANES
    # None defers to the session default (compiled unless REPRO_SIM_BACKEND
    # says otherwise); set "interpreted" to run against the reference oracle.
    fault_sim_backend: Optional[str] = None
    # PODEM worker processes for the deterministic phase: 1 = serial,
    # 0 = all cores, N = N forked workers.  Results are bit-identical at
    # any value (docs/performance.md, "intra-job fault parallelism"), so
    # the store fingerprint deliberately excludes this knob.  Small runs
    # stay serial regardless (see fault_sim.should_parallelize), as do
    # runs under a total_time_limit — which fault the budget cuts off
    # depends on one process's CPU clock and cannot be replicated across
    # workers.
    jobs: int = 1

    def schedule(self) -> List[int]:
        if self.frame_schedule is not None:
            sched = [f for f in self.frame_schedule if f <= self.max_frames]
        else:
            sched = [f for f in (1, 2, 3, 4, 6, 8, 12, 16)
                     if f <= self.max_frames]
        if not sched or sched[-1] != self.max_frames:
            sched.append(self.max_frames)
        return sched


@dataclass
class AtpgReport:
    name: str
    total_faults: int
    detected: int
    untestable: int
    aborted: int
    unattempted: int
    random_detected: int
    coverage_percent: float
    efficiency_percent: float
    test_gen_seconds: float
    fault_sim_seconds: float
    total_seconds: float
    num_tests: int
    num_vectors: int
    # SEU grading phase (fault_model "transient"/"both"); all-zero when
    # the run only targeted stuck-at faults.
    transient_total: int = 0
    transient_detected: int = 0
    transient_coverage_percent: float = 0.0
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    record: Optional[RunRecord] = field(default=None, repr=False)

    def as_row(self) -> Dict[str, object]:
        row = {
            "name": self.name,
            "faults": self.total_faults,
            "detected": self.detected,
            "cov%": round(self.coverage_percent, 2),
            "eff%": round(self.efficiency_percent, 2),
            "tgen_s": round(self.test_gen_seconds, 2),
            "total_s": round(self.total_seconds, 2),
            "tests": self.num_tests,
            "vectors": self.num_vectors,
        }
        if self.transient_total:
            row["seu"] = self.transient_total
            row["seu_detected"] = self.transient_detected
            row["seu_cov%"] = round(self.transient_coverage_percent, 2)
        return row


class SequentialAtpg:
    """Deterministic PODEM over an escalating time-frame schedule."""

    def __init__(self, netlist: Netlist, options: AtpgOptions):
        self.netlist = netlist
        self.options = options
        self._models: Dict[int, UnrolledModel] = {}

    def model(self, frames: int) -> UnrolledModel:
        if frames not in self._models:
            self._models[frames] = UnrolledModel(
                self.netlist, frames, pier_qs=set(self.options.pier_qs)
            )
        return self._models[frames]

    def generate(self, fault: Fault) -> PodemResult:
        """Try the fault at increasing sequential depths."""
        last: Optional[PodemResult] = None
        aborted_any = False
        for frames in self.options.schedule():
            podem = Podem(
                self.model(frames),
                fault,
                backtrack_limit=self.options.backtrack_limit,
                time_limit=self.options.fault_time_limit,
            )
            result = podem.run()
            if last is not None:
                result.cpu_seconds += last.cpu_seconds
                result.backtracks += last.backtracks
                result.decisions += last.decisions
                result.implications += last.implications
            if result.detected:
                return result
            if result.status == "aborted":
                aborted_any = True
            last = result
        assert last is not None
        if aborted_any:
            last.status = "aborted"
        # else: search exhausted at every depth -> untestable up to max_frames.
        return last


class PodemCommitState:
    """Per-fault classification, shared by the serial and parallel paths.

    :meth:`commit` is the exact body of the serial PODEM loop: book the
    result, and on detection append the test and cross-fault-simulate its
    vectors against every remaining fault.  The parallel coordinator
    feeds it worker-computed results *in serial fault order*, so the
    detected/untestable/aborted sets, the dropped-fault cascade, the
    tests list and the coverage are bit-identical to a serial run by
    construction — workers only ever speculate, they never classify.
    """

    def __init__(self, engine: "AtpgEngine", faults: List[Fault],
                 remaining: Set[Fault], detected: Set[Fault],
                 fsim: FaultSimulator, fault_sim_timer: CpuTimer,
                 observe: Optional[List[int]]):
        self.engine = engine
        self.faults = faults
        self.total = len(faults)
        self.remaining = remaining
        self.detected = detected
        self.untestable: Set[Fault] = set()
        self.aborted: Set[Fault] = set()
        self.abort_reasons: Dict[str, int] = {}
        self.fsim = fsim
        self.fault_sim_timer = fault_sim_timer
        self.observe = observe
        self.test_gen_seconds = 0.0
        self.total_backtracks = 0
        self.cross_sim_drops = 0
        self.unattempted = 0

    @property
    def coverage_percent(self) -> float:
        return (100.0 * len(self.detected) / self.total
                if self.total else 100.0)

    def commit(self, fault: Fault, result: PodemResult) -> None:
        self.test_gen_seconds += result.cpu_seconds
        self.total_backtracks += result.backtracks
        counter("atpg.backtracks").inc(result.backtracks)
        counter("atpg.decisions").inc(result.decisions)
        counter("atpg.implications").inc(result.implications)
        histogram("atpg.fault_seconds").observe(result.cpu_seconds)
        if result.detected:
            self.detected.add(fault)
            self.remaining.discard(fault)
            self.engine.tests.append((result.vectors, result.initial_state))
            if self.remaining:
                with self.fault_sim_timer:
                    extra = self.fsim.detected_faults(
                        result.vectors,
                        [f for f in self.faults if f in self.remaining],
                        initial_state=result.initial_state or None,
                        extra_observables=self.observe,
                    )
                self.detected |= extra
                self.remaining -= extra
                self.cross_sim_drops += len(extra)
        elif result.status == "untestable":
            self.untestable.add(fault)
            self.remaining.discard(fault)
        else:
            self.aborted.add(fault)
            self.remaining.discard(fault)
            reason = result.abort_reason or "unknown"
            self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1

    def mark_unattempted(self, fault: Fault) -> None:
        """Serial-only: the run's total CPU budget expired first."""
        self.unattempted += 1
        self.remaining.discard(fault)
        self.aborted.add(fault)
        self.abort_reasons["total_time_limit"] = (
            self.abort_reasons.get("total_time_limit", 0) + 1
        )

    def emit_progress(self, **extra) -> None:
        progress("atpg.podem", detected=len(self.detected),
                 remaining=len(self.remaining),
                 untestable=len(self.untestable),
                 aborted=len(self.aborted),
                 backtracks=self.total_backtracks,
                 coverage=round(self.coverage_percent, 2),
                 vectors=sum(len(v) for v, _ in self.engine.tests),
                 **extra)


class AtpgEngine:
    """Full flow: fault list -> random phase -> PODEM phase -> report."""

    def __init__(self, netlist: Netlist,
                 options: Optional[AtpgOptions] = None):
        self.netlist = netlist
        self.options = options or AtpgOptions()
        self.tests: List[Tuple[List[Dict[int, int]], Dict[int, int]]] = []
        # Populated by run(): the final classification sets (equivalence
        # tests compare these across worker counts) and how many PODEM
        # workers the run actually used (0 = stayed serial).
        self.detected_faults: Set[Fault] = set()
        self.untestable_faults: Set[Fault] = set()
        self.aborted_faults: Set[Fault] = set()
        self.parallel_workers = 0
        # Worker CPU seconds are invisible to this process's CPU clock;
        # run() adds them back so total_seconds stays comparable with a
        # serial run.
        self._offloaded_cpu_seconds = 0.0

    def run(self) -> AtpgReport:
        with span("atpg", netlist=self.netlist.name) as sp:
            report = self._run(sp)
            # Every reported time derives from one CPU clock: the span for
            # the total, CpuTimer accumulation for the phases inside it.
            # Forked PODEM workers burn CPU on their own clocks; their
            # committed generation time is added back so serial and
            # parallel totals measure the same work.
            report.total_seconds = sp.cpu_seconds + self._offloaded_cpu_seconds
            sp.set("faults", report.total_faults)
            sp.set("detected", report.detected)
            sp.set("coverage_percent", round(report.coverage_percent, 2))
        report.record = RunRecord.capture(
            f"atpg:{self.netlist.name}", spans=[sp]
        )
        if report.total_seconds > 0:
            gauge("atpg.faults_per_second").set(
                round(report.total_faults / report.total_seconds, 2)
            )
        return report

    def _run(self, sp) -> AtpgReport:
        opts = self.options
        rng = random.Random(opts.seed)
        budget = Deadline(opts.total_time_limit)

        # ``faults`` stays the one sorted list for the whole run; the hot
        # loops below filter it by membership in ``remaining`` instead of
        # re-sorting the shrinking set after every detection.
        faults = build_fault_list(self.netlist, region=opts.fault_region)
        if opts.fault_sample is not None and len(faults) > opts.fault_sample:
            faults = sorted(rng.sample(faults, opts.fault_sample))
        total = len(faults)
        remaining: Set[Fault] = set(faults)
        detected: Set[Fault] = set()

        fsim = FaultSimulator(self.netlist, lanes=opts.fault_sim_lanes,
                              backend=opts.fault_sim_backend)
        fault_sim_timer = CpuTimer()
        observe = sorted(
            dff.inputs[0]
            for dff in self.netlist.dffs()
            if dff.output in opts.pier_qs
        ) if opts.pier_qs else None

        progress("atpg.setup", force=True, faults=total,
                 netlist=self.netlist.name)

        # -- phase 1: random vectors -------------------------------------
        with span("atpg.random") as sp_random:
            for _ in range(opts.random_sequences):
                if not remaining:
                    break
                vectors = [
                    {pi: rng.randint(0, 1) for pi in self.netlist.pis}
                    for _ in range(opts.random_sequence_length)
                ]
                with fault_sim_timer:
                    found = fsim.detected_faults(
                        vectors, [f for f in faults if f in remaining]
                    )
                if found:
                    self.tests.append((vectors, {}))
                detected |= found
                remaining -= found
                progress("atpg.random", detected=len(detected),
                         remaining=len(remaining),
                         coverage=round(
                             100.0 * len(detected) / total, 2
                         ) if total else 100.0,
                         vectors=sum(len(v) for v, _ in self.tests))
            random_detected = len(detected)
            sp_random.set("detected", random_detected)

        # -- phase 2: deterministic PODEM ---------------------------------
        seq = SequentialAtpg(self.netlist, opts)
        commit = PodemCommitState(self, faults, remaining, detected,
                                  fsim, fault_sim_timer, observe)
        if opts.fault_model != "transient":
            jobs = self._podem_jobs(opts, total)
            self.parallel_workers = jobs if jobs > 1 else 0
            with span("atpg.podem", workers=jobs) as sp_podem:
                if jobs > 1:
                    from repro.atpg.parallel import run_parallel_podem

                    run_parallel_podem(seq, commit, jobs, sp_podem)
                    self._offloaded_cpu_seconds = commit.test_gen_seconds
                else:
                    for fault in faults:
                        if fault not in remaining:
                            continue
                        if budget.expired():
                            commit.mark_unattempted(fault)
                            continue
                        commit.commit(fault, seq.generate(fault))
                        commit.emit_progress()
                sp_podem.set("backtracks", commit.total_backtracks)
                sp_podem.set("test_gen_seconds",
                             round(commit.test_gen_seconds, 6))

        # -- phase 3: SEU grading of the generated test set ---------------
        transient_total = transient_detected = 0
        if opts.fault_model in ("transient", "both"):
            with span("atpg.transient") as sp_tr:
                horizon = max((len(v) for v, _ in self.tests),
                              default=opts.random_sequence_length)
                tfaults = build_transient_fault_list(
                    self.netlist, horizon, region=opts.fault_region,
                    sample=opts.transient_sample, seed=opts.seed)
                transient_total = len(tfaults)
                rem_t: Set[TransientFault] = set(tfaults)
                for vectors, istate in self.tests:
                    if not rem_t:
                        break
                    with fault_sim_timer:
                        found = fsim.detected_faults(
                            vectors, [f for f in tfaults if f in rem_t],
                            initial_state=istate or None,
                            extra_observables=observe,
                        )
                    rem_t -= found
                transient_detected = transient_total - len(rem_t)
                sp_tr.set("injections", transient_total)
                sp_tr.set("detected", transient_detected)
            counter("atpg.transient.injections").inc(transient_total)
            counter("atpg.transient.detected").inc(transient_detected)
            progress("atpg.transient", force=True,
                     injections=transient_total,
                     detected=transient_detected)

        untestable, aborted = commit.untestable, commit.aborted
        abort_reasons = commit.abort_reasons
        for reason, count in abort_reasons.items():
            counter(f"atpg.aborts.{reason}").inc(count)
        sp.set("fault_sim_seconds", round(fault_sim_timer.elapsed, 6))
        progress("atpg.done", force=True, detected=len(detected),
                 remaining=len(remaining), untestable=len(untestable),
                 aborted=len(aborted), backtracks=commit.total_backtracks,
                 coverage=round(commit.coverage_percent, 2),
                 vectors=sum(len(v) for v, _ in self.tests))

        self.detected_faults = set(detected)
        self.untestable_faults = set(untestable)
        self.aborted_faults = set(aborted)
        coverage = 100.0 * len(detected) / total if total else 100.0
        efficiency = (
            100.0 * (len(detected) + len(untestable)) / total
            if total else 100.0
        )
        return AtpgReport(
            name=self.netlist.name,
            total_faults=total,
            detected=len(detected),
            untestable=len(untestable),
            aborted=len(aborted),
            unattempted=commit.unattempted,
            random_detected=random_detected,
            coverage_percent=coverage,
            efficiency_percent=efficiency,
            test_gen_seconds=commit.test_gen_seconds,
            fault_sim_seconds=fault_sim_timer.elapsed,
            total_seconds=0.0,  # patched from the "atpg" span by run()
            num_tests=len(self.tests),
            num_vectors=sum(len(v) for v, _ in self.tests),
            transient_total=transient_total,
            transient_detected=transient_detected,
            transient_coverage_percent=(
                100.0 * transient_detected / transient_total
                if transient_total
                else (100.0 if opts.fault_model != "stuck" else 0.0)
            ),
            abort_reasons=abort_reasons,
        )

    def _podem_jobs(self, opts: AtpgOptions, total_faults: int) -> int:
        """PODEM worker count after the serial-fallback gates."""
        if opts.jobs == 1:
            return 1
        if opts.total_time_limit is not None:
            # Which fault a run-wide CPU budget cuts off is a property of
            # one process's clock; no parallel schedule reproduces it.
            return 1
        from repro.atpg.fault_sim import should_parallelize
        from repro.jobs import resolve_jobs

        resolved = resolve_jobs(opts.jobs)
        if not should_parallelize(resolved, total_faults,
                                  len(self.netlist.gates)):
            return 1
        return max(1, min(resolved, total_faults))
