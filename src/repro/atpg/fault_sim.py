"""Parallel-fault sequential fault simulation.

Faults are packed into bit lanes of Python integers: lane 0 carries the good
machine, lanes 1..k one faulty machine each, all simulating the same input
sequence.  Fault injection forces the faulty value on the fault site's net in
that fault's lane only.  A fault is detected when some primary output
differs (binary vs binary) between its lane and the good lane at any cycle.
Flip-flops start at X, so every fault must be excited through a genuine
initialisation sequence — the same discipline a commercial sequential fault
simulator enforces.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.atpg.compiled import (compiled_detected_faults, cone_pack_order,
                                 get_compiled, resolve_backend,
                                 site_rank_map)
from repro.atpg.faults import Fault, TransientFault

Vector = Mapping[int, int]  # PI net -> 0 or 1 (missing = X)

# Default lane width (one good machine + 511 faulty machines per block);
# call sites that want a different width take a ``lanes`` parameter rather
# than hard-coding their own number.
DEFAULT_LANES = 512

# Below these sizes a fork pool costs more than it saves (arm_alu's 1440
# faults run parallel(j=4) at 0.61x serial): pool spin-up, per-worker
# codegen warm-up and result pickling dominate the tiny simulation.  Both
# the fault simulator and the ATPG engine consult :func:`should_parallelize`
# so small designs silently stay serial; the ``REPRO_PARALLEL_MIN_*``
# environment knobs let tests and smoke jobs lower the floor.
MIN_PARALLEL_FAULTS = 2000
MIN_PARALLEL_GATES = 1000

# Forked workers only help when they can run on *different* cores.  On a
# single-core host (or a cgroup pinned to one CPU) the pool timeshares one
# core: every speculated fault still costs its full CPU time, plus fork,
# context-switch and pickling overhead — strictly slower than serial.
MIN_PARALLEL_CORES = 2


def _env_threshold(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


def available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def parallelize_decision(jobs: int, num_faults: int,
                         num_gates: int) -> Tuple[bool, Optional[str]]:
    """Is a fork worker pool worth it for this workload, and if not, why?

    Returns ``(False, reason)`` when only one worker is available, when
    the platform cannot fork (workers inherit netlists and compiled code
    by address-space copy, not pickling), when the host has only one
    usable core (a pool would timeshare it and lose), or when the
    workload sits below the small-design thresholds where pool overhead
    exceeds the work.  The reason string is what bench rows and telemetry
    record so a serial fallback is never mistaken for a parallel run.
    """
    if jobs <= 1:
        return False, "jobs<=1"
    if not hasattr(os, "fork"):
        return False, "platform-cannot-fork"
    min_cores = _env_threshold("REPRO_PARALLEL_MIN_CORES",
                               MIN_PARALLEL_CORES)
    cores = available_cores()
    if cores < min_cores:
        return False, f"cores={cores}<min_cores={min_cores}"
    min_faults = _env_threshold("REPRO_PARALLEL_MIN_FAULTS",
                                MIN_PARALLEL_FAULTS)
    if num_faults < min_faults:
        return False, f"faults={num_faults}<min_faults={min_faults}"
    min_gates = _env_threshold("REPRO_PARALLEL_MIN_GATES",
                               MIN_PARALLEL_GATES)
    if num_gates < min_gates:
        return False, f"gates={num_gates}<min_gates={min_gates}"
    return True, None


def should_parallelize(jobs: int, num_faults: int, num_gates: int) -> bool:
    """Boolean form of :func:`parallelize_decision`."""
    return parallelize_decision(jobs, num_faults, num_gates)[0]


class FaultSimulator:
    """Simulates vector sequences against a fault list, lane-parallel.

    ``backend="arena"`` (default) runs the struct-of-arrays word-parallel
    simulation of :mod:`repro.atpg.arena`: one memoized good-machine pass,
    a provably-exact undetectability filter, and cone-partitioned lane
    blocks (generated or interpreted depending on workload size).
    ``backend="compiled"`` runs the cone-partitioned simulation of
    :mod:`repro.atpg.compiled`; ``backend="interpreted"`` walks the full
    flat gate list per block — slowest, kept as the reference oracle.
    Detected-fault sets are bit-identical across all three.

    ``arena`` optionally supplies a pre-built (possibly unpickled)
    :class:`~repro.atpg.arena.NetlistArena` so workers skip re-deriving
    topology from the netlist object graph.
    """

    def __init__(self, netlist: Netlist, lanes: int = DEFAULT_LANES,
                 backend: Optional[str] = None, arena=None):
        if lanes < 2:
            raise ValueError("need at least two lanes (good + one fault)")
        self.netlist = netlist
        self.lanes = lanes
        self.backend = resolve_backend(backend)
        self._dffs = netlist.dffs()
        self._compiled = None
        self._arena_sim = None
        self._flat = []
        if self.backend == "arena":
            from repro.atpg.arena import get_arena, get_arena_sim

            self._arena_sim = get_arena_sim(
                arena if arena is not None else get_arena(netlist))
        elif self.backend == "compiled":
            self._compiled = get_compiled(netlist)
        else:
            # Pre-extract (type, output, inputs) for the hot loop.
            self._flat = [(g.type, g.output, g.inputs)
                          for g in netlist.topological_order()]

    def detected_faults(
        self,
        vectors: Sequence[Vector],
        faults: Sequence[Fault],
        initial_state: Optional[Mapping[int, int]] = None,
        extra_observables: Optional[Sequence[int]] = None,
    ) -> Set[Fault]:
        """Return the subset of ``faults`` detected by the vector sequence.

        ``initial_state`` pre-loads flip-flop Q nets with known bits (the
        PIER load-instruction model: registers reachable from the chip pins
        can be initialised before the test body runs).  ``extra_observables``
        adds nets compared against the good machine every cycle (the PIER
        store-instruction model: those registers can be read out).
        """
        from repro.obs import counter, progress

        stuck = [f for f in faults if not isinstance(f, TransientFault)]
        transients = [f for f in faults if isinstance(f, TransientFault)]

        blocks = 0
        detected: Set[Fault] = set()
        if stuck:
            if self._arena_sim is not None:
                found, nblk = self._arena_sim.detected_faults(
                    vectors, stuck, initial_state=initial_state,
                    extra_observables=extra_observables, lanes=self.lanes,
                )
            elif self._compiled is not None:
                found, nblk = compiled_detected_faults(
                    self._compiled, vectors, stuck, initial_state,
                    extra_observables, self.lanes,
                )
            else:
                found = set()
                block_size = self.lanes - 1
                nblk = 0
                for start in range(0, len(stuck), block_size):
                    block = stuck[start : start + block_size]
                    nblk += 1
                    found |= self._simulate_block(vectors, block,
                                                 initial_state,
                                                 extra_observables)
            detected |= found
            blocks += nblk

        if transients:
            found, nblk = self._detect_transients(vectors, transients,
                                                  initial_state,
                                                  extra_observables)
            detected |= found
            blocks += nblk
            counter("fault_sim.seu_injections").inc(len(transients))
        counter(f"fault_sim.backend.{self.backend}").inc()
        counter("fault_sim.calls").inc()
        counter("fault_sim.blocks").inc(blocks)
        counter("fault_sim.vectors").inc(len(vectors) * blocks)
        counter("fault_sim.faults_simulated").inc(len(faults))
        counter("fault_sim.faults_detected").inc(len(detected))
        progress("fault_sim", simulated=len(faults),
                 found=len(detected), vectors=len(vectors))
        return detected

    # -- internals -------------------------------------------------------------

    def _simulate_block(self, vectors: Sequence[Vector],
                        block: Sequence[Fault],
                        initial_state: Optional[Mapping[int, int]] = None,
                        extra_observables: Optional[Sequence[int]] = None
                        ) -> Set[Fault]:
        width = len(block) + 1  # lane 0 = good machine
        full = (1 << width) - 1

        force1: Dict[int, int] = {}
        force0: Dict[int, int] = {}
        for lane, fault in enumerate(block, start=1):
            if fault.value == 1:
                force1[fault.net] = force1.get(fault.net, 0) | (1 << lane)
            else:
                force0[fault.net] = force0.get(fault.net, 0) | (1 << lane)

        def inject(net: int, ones: int, zeros: int) -> Tuple[int, int]:
            f1 = force1.get(net)
            if f1:
                ones |= f1
                zeros &= ~f1
            f0 = force0.get(net)
            if f0:
                zeros |= f0
                ones &= ~f0
            return ones, zeros

        has_injection = bool(force1 or force0)
        state: Dict[int, Tuple[int, int]] = {
            dff.output: (0, 0) for dff in self._dffs
        }
        if initial_state:
            for q, bit in initial_state.items():
                state[q] = (full, 0) if bit else (0, full)
        observe_points = list(self.netlist.pos)
        if extra_observables:
            observe_points.extend(extra_observables)
        detected_mask = 0

        AND, OR, NOT, BUF = GateType.AND, GateType.OR, GateType.NOT, GateType.BUF
        NAND, NOR, XOR, XNOR = (GateType.NAND, GateType.NOR, GateType.XOR,
                                GateType.XNOR)

        for vec in vectors:
            values: Dict[int, Tuple[int, int]] = {
                CONST0: (0, full), CONST1: (full, 0)
            }
            for pi in self.netlist.pis:
                bit = vec.get(pi)
                if bit is None:
                    pair = (0, 0)
                elif bit:
                    pair = (full, 0)
                else:
                    pair = (0, full)
                values[pi] = inject(pi, *pair) if has_injection else pair
            for dff in self._dffs:
                q = dff.output
                pair = state.get(q, (0, 0))
                values[q] = inject(q, *pair) if has_injection else pair

            get = values.get
            for gtype, out, inputs in self._flat:
                if gtype is BUF:
                    ones, zeros = get(inputs[0], (0, 0))
                elif gtype is NOT:
                    i1, i0 = get(inputs[0], (0, 0))
                    ones, zeros = i0, i1
                elif gtype is AND or gtype is NAND:
                    ones, zeros = full, 0
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones &= i1
                        zeros |= i0
                    if gtype is NAND:
                        ones, zeros = zeros, ones
                elif gtype is OR or gtype is NOR:
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones |= i1
                        zeros &= i0
                    if gtype is NOR:
                        ones, zeros = zeros, ones
                else:  # XOR / XNOR
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones, zeros = (ones & i0) | (zeros & i1), \
                                      (ones & i1) | (zeros & i0)
                    if gtype is XNOR:
                        ones, zeros = zeros, ones
                if has_injection:
                    ones, zeros = inject(out, ones, zeros)
                values[out] = (ones, zeros)

            for po in observe_points:
                ones, zeros = values.get(po, (0, 0))
                if ones & 1:  # good machine observes 1
                    detected_mask |= zeros & ~1
                elif zeros & 1:  # good machine observes 0
                    detected_mask |= ones & ~1

            state = {
                dff.output: values.get(dff.inputs[0], (0, 0))
                for dff in self._dffs
            }

        out: Set[Fault] = set()
        for lane, fault in enumerate(block, start=1):
            if detected_mask & (1 << lane):
                out.add(fault)
        return out

    # -- transient (SEU) faults --------------------------------------------

    def _detect_transients(self, vectors: Sequence[Vector],
                           transients: Sequence[TransientFault],
                           initial_state: Optional[Mapping[int, int]],
                           extra_observables: Optional[Sequence[int]]
                           ) -> Tuple[Set[TransientFault], int]:
        """Dispatch transient faults to the backend-appropriate path.

        The arena backend gets its own word-parallel implementation with
        the good-plane pre-filter; compiled and interpreted both run the
        flat cycle-gated lane loop below (the compiled cone partitioning
        gains nothing on one-shot transient populations), which keeps the
        interpreted oracle and the compiled backend trivially identical.
        """
        if self._arena_sim is not None:
            return self._arena_sim.detected_transients(
                vectors, transients, initial_state=initial_state,
                extra_observables=extra_observables, lanes=self.lanes,
            )
        self._ensure_flat()
        detected: Set[TransientFault] = set()
        block_size = self.lanes - 1
        blocks = 0
        for start in range(0, len(transients), block_size):
            block = transients[start : start + block_size]
            blocks += 1
            detected |= self._simulate_transient_block(
                vectors, block, initial_state, extra_observables)
        return detected, blocks

    def _ensure_flat(self) -> None:
        if not self._flat:
            self._flat = [(g.type, g.output, g.inputs)
                          for g in self.netlist.topological_order()]

    def _simulate_transient_block(
        self, vectors: Sequence[Vector],
        block: Sequence[TransientFault],
        initial_state: Optional[Mapping[int, int]] = None,
        extra_observables: Optional[Sequence[int]] = None,
    ) -> Set[TransientFault]:
        """Lane-parallel simulation of one block of single-cycle upsets.

        Identical to :meth:`_simulate_block` except the injection masks
        are gated by cycle: a lane's force is only live during its
        fault's flip cycle, so before the flip the lane tracks the good
        machine exactly and after it the disturbance propagates (or dies)
        on its own.
        """
        width = len(block) + 1  # lane 0 = good machine
        full = (1 << width) - 1

        # cycle -> net -> lane mask, split by forced value
        cyc1: Dict[int, Dict[int, int]] = {}
        cyc0: Dict[int, Dict[int, int]] = {}
        for lane, fault in enumerate(block, start=1):
            per = (cyc1 if fault.value == 1 else cyc0).setdefault(
                fault.cycle, {})
            per[fault.net] = per.get(fault.net, 0) | (1 << lane)

        state: Dict[int, Tuple[int, int]] = {
            dff.output: (0, 0) for dff in self._dffs
        }
        if initial_state:
            for q, bit in initial_state.items():
                state[q] = (full, 0) if bit else (0, full)
        observe_points = list(self.netlist.pos)
        if extra_observables:
            observe_points.extend(extra_observables)
        detected_mask = 0

        AND, OR, NOT, BUF = GateType.AND, GateType.OR, GateType.NOT, GateType.BUF
        NAND, NOR, XOR, XNOR = (GateType.NAND, GateType.NOR, GateType.XOR,
                                GateType.XNOR)

        for cycle, vec in enumerate(vectors):
            force1 = cyc1.get(cycle) or {}
            force0 = cyc0.get(cycle) or {}
            has_injection = bool(force1 or force0)

            def inject(net: int, ones: int, zeros: int) -> Tuple[int, int]:
                f1 = force1.get(net)
                if f1:
                    ones |= f1
                    zeros &= ~f1
                f0 = force0.get(net)
                if f0:
                    zeros |= f0
                    ones &= ~f0
                return ones, zeros

            values: Dict[int, Tuple[int, int]] = {
                CONST0: (0, full), CONST1: (full, 0)
            }
            for pi in self.netlist.pis:
                bit = vec.get(pi)
                if bit is None:
                    pair = (0, 0)
                elif bit:
                    pair = (full, 0)
                else:
                    pair = (0, full)
                values[pi] = inject(pi, *pair) if has_injection else pair
            for dff in self._dffs:
                q = dff.output
                pair = state.get(q, (0, 0))
                values[q] = inject(q, *pair) if has_injection else pair

            get = values.get
            for gtype, out, inputs in self._flat:
                if gtype is BUF:
                    ones, zeros = get(inputs[0], (0, 0))
                elif gtype is NOT:
                    i1, i0 = get(inputs[0], (0, 0))
                    ones, zeros = i0, i1
                elif gtype is AND or gtype is NAND:
                    ones, zeros = full, 0
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones &= i1
                        zeros |= i0
                    if gtype is NAND:
                        ones, zeros = zeros, ones
                elif gtype is OR or gtype is NOR:
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones |= i1
                        zeros &= i0
                    if gtype is NOR:
                        ones, zeros = zeros, ones
                else:  # XOR / XNOR
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones, zeros = (ones & i0) | (zeros & i1), \
                                      (ones & i1) | (zeros & i0)
                    if gtype is XNOR:
                        ones, zeros = zeros, ones
                if has_injection:
                    ones, zeros = inject(out, ones, zeros)
                values[out] = (ones, zeros)

            for po in observe_points:
                ones, zeros = values.get(po, (0, 0))
                if ones & 1:  # good machine observes 1
                    detected_mask |= zeros & ~1
                elif zeros & 1:  # good machine observes 0
                    detected_mask |= ones & ~1

            state = {
                dff.output: values.get(dff.inputs[0], (0, 0))
                for dff in self._dffs
            }

        out: Set[TransientFault] = set()
        for lane, fault in enumerate(block, start=1):
            if detected_mask & (1 << lane):
                out.add(fault)
        return out


# -- fork-parallel fault simulation -------------------------------------------
#
# One netlist, one vector sequence, a fault list too big for one core:
# chunk the cone-packed fault list across a fork pool of FaultSimulators.
# Lanes never interact, so the union of the chunk detections is exactly the
# serial detected set.  Workers inherit the netlist (and any compiled code
# already built in the parent) through fork's address-space copy — nothing
# is pickled on the way in, only the detected Fault lists on the way out.

_POOL_STATE: Dict[str, object] = {}


def _pool_init(netlist: Netlist, vectors: Sequence[Vector],
               initial_state: Optional[Mapping[int, int]],
               extra_observables: Optional[Sequence[int]],
               lanes: int, backend: Optional[str], arena=None) -> None:
    _POOL_STATE.update(
        netlist=netlist, vectors=vectors, initial_state=initial_state,
        extra_observables=extra_observables, lanes=lanes, backend=backend,
        arena=arena,
    )


def _pool_detect(chunk: Sequence[Fault]) -> List[Fault]:
    from repro.obs import set_reporter

    set_reporter(None)  # a forked reporter would write the parent's pipe
    sim = FaultSimulator(_POOL_STATE["netlist"],
                         lanes=_POOL_STATE["lanes"],
                         backend=_POOL_STATE["backend"],
                         arena=_POOL_STATE.get("arena"))
    return sorted(sim.detected_faults(
        _POOL_STATE["vectors"], chunk,
        initial_state=_POOL_STATE["initial_state"],
        extra_observables=_POOL_STATE["extra_observables"],
    ))


def parallel_detected_faults(
    netlist: Netlist,
    vectors: Sequence[Vector],
    faults: Sequence[Fault],
    jobs: Optional[int] = None,
    lanes: int = DEFAULT_LANES,
    initial_state: Optional[Mapping[int, int]] = None,
    extra_observables: Optional[Sequence[int]] = None,
    backend: Optional[str] = None,
) -> Set[Fault]:
    """Detected set for ``faults``, fanned out over a fork pool.

    Bit-identical to ``FaultSimulator.detected_faults`` at any worker
    count.  Small workloads (see :func:`should_parallelize`) run serial
    in-process — callers never pay the pool tax on arm_alu-sized designs.
    """
    from repro.jobs import resolve_jobs
    from repro.obs import counter, span

    workers = resolve_jobs(jobs)
    go, reason = parallelize_decision(workers, len(faults),
                                      len(netlist.gates))
    if not go:
        counter("fault_sim.parallel.serial_fallbacks").inc()
        return FaultSimulator(netlist, lanes=lanes,
                              backend=backend).detected_faults(
            vectors, faults, initial_state=initial_state,
            extra_observables=extra_observables)

    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    # Build the arena once, pre-fork: every worker inherits the flat
    # picklable encoding by address-space copy instead of re-deriving
    # topological orders and adjacency from the netlist object graph.
    arena = None
    if resolve_backend(backend) == "arena":
        from repro.atpg.arena import get_arena

        arena = get_arena(netlist)

    ordered = cone_pack_order(faults, site_rank_map(netlist))
    chunk = (len(ordered) + workers - 1) // workers
    chunks = [ordered[lo:lo + chunk] for lo in range(0, len(ordered), chunk)]
    _pool_init(netlist, vectors, initial_state, extra_observables, lanes,
               backend, arena)
    counter("fault_sim.parallel.runs").inc()
    counter("fault_sim.parallel.workers").inc(len(chunks))
    detected: Set[Fault] = set()
    try:
        context = multiprocessing.get_context("fork")
        with span("fault_sim.parallel", workers=len(chunks),
                  faults=len(faults)):
            with ProcessPoolExecutor(max_workers=len(chunks),
                                     mp_context=context) as pool:
                for part in pool.map(_pool_detect, chunks):
                    detected.update(part)
    finally:
        _POOL_STATE.clear()
    return detected
