"""Parallel-fault sequential fault simulation.

Faults are packed into bit lanes of Python integers: lane 0 carries the good
machine, lanes 1..k one faulty machine each, all simulating the same input
sequence.  Fault injection forces the faulty value on the fault site's net in
that fault's lane only.  A fault is detected when some primary output
differs (binary vs binary) between its lane and the good lane at any cycle.
Flip-flops start at X, so every fault must be excited through a genuine
initialisation sequence — the same discipline a commercial sequential fault
simulator enforces.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Set, Tuple

from repro.synth.netlist import CONST0, CONST1, GateType, Netlist
from repro.atpg.compiled import (compiled_detected_faults, get_compiled,
                                 resolve_backend)
from repro.atpg.faults import Fault

Vector = Mapping[int, int]  # PI net -> 0 or 1 (missing = X)

# Default lane width (one good machine + 511 faulty machines per block);
# call sites that want a different width take a ``lanes`` parameter rather
# than hard-coding their own number.
DEFAULT_LANES = 512


class FaultSimulator:
    """Simulates vector sequences against a fault list, lane-parallel.

    ``backend="compiled"`` (default) runs the cone-partitioned simulation of
    :mod:`repro.atpg.compiled`: one shared good-machine pass per cycle, each
    fault block evaluating only the union of its faults' fanout cones, with
    early exit once every lane has detected.  ``backend="interpreted"``
    walks the full flat gate list per block — slower, kept as the reference
    oracle.  Detected-fault sets are identical between the two.
    """

    def __init__(self, netlist: Netlist, lanes: int = DEFAULT_LANES,
                 backend: Optional[str] = None):
        if lanes < 2:
            raise ValueError("need at least two lanes (good + one fault)")
        self.netlist = netlist
        self.lanes = lanes
        self.backend = resolve_backend(backend)
        self._dffs = netlist.dffs()
        if self.backend == "compiled":
            self._compiled = get_compiled(netlist)
            self._flat = []
        else:
            self._compiled = None
            # Pre-extract (type, output, inputs) for the hot loop.
            self._flat = [(g.type, g.output, g.inputs)
                          for g in netlist.topological_order()]

    def detected_faults(
        self,
        vectors: Sequence[Vector],
        faults: Sequence[Fault],
        initial_state: Optional[Mapping[int, int]] = None,
        extra_observables: Optional[Sequence[int]] = None,
    ) -> Set[Fault]:
        """Return the subset of ``faults`` detected by the vector sequence.

        ``initial_state`` pre-loads flip-flop Q nets with known bits (the
        PIER load-instruction model: registers reachable from the chip pins
        can be initialised before the test body runs).  ``extra_observables``
        adds nets compared against the good machine every cycle (the PIER
        store-instruction model: those registers can be read out).
        """
        from repro.obs import counter, progress

        if self._compiled is not None:
            detected, blocks = compiled_detected_faults(
                self._compiled, vectors, faults, initial_state,
                extra_observables, self.lanes,
            )
        else:
            detected = set()
            block_size = self.lanes - 1
            blocks = 0
            for start in range(0, len(faults), block_size):
                block = faults[start : start + block_size]
                blocks += 1
                detected |= self._simulate_block(vectors, block,
                                                 initial_state,
                                                 extra_observables)
        counter(f"fault_sim.backend.{self.backend}").inc()
        counter("fault_sim.calls").inc()
        counter("fault_sim.blocks").inc(blocks)
        counter("fault_sim.vectors").inc(len(vectors) * blocks)
        counter("fault_sim.faults_simulated").inc(len(faults))
        counter("fault_sim.faults_detected").inc(len(detected))
        progress("fault_sim", simulated=len(faults),
                 found=len(detected), vectors=len(vectors))
        return detected

    # -- internals -------------------------------------------------------------

    def _simulate_block(self, vectors: Sequence[Vector],
                        block: Sequence[Fault],
                        initial_state: Optional[Mapping[int, int]] = None,
                        extra_observables: Optional[Sequence[int]] = None
                        ) -> Set[Fault]:
        width = len(block) + 1  # lane 0 = good machine
        full = (1 << width) - 1

        force1: Dict[int, int] = {}
        force0: Dict[int, int] = {}
        for lane, fault in enumerate(block, start=1):
            if fault.value == 1:
                force1[fault.net] = force1.get(fault.net, 0) | (1 << lane)
            else:
                force0[fault.net] = force0.get(fault.net, 0) | (1 << lane)

        def inject(net: int, ones: int, zeros: int) -> Tuple[int, int]:
            f1 = force1.get(net)
            if f1:
                ones |= f1
                zeros &= ~f1
            f0 = force0.get(net)
            if f0:
                zeros |= f0
                ones &= ~f0
            return ones, zeros

        has_injection = bool(force1 or force0)
        state: Dict[int, Tuple[int, int]] = {
            dff.output: (0, 0) for dff in self._dffs
        }
        if initial_state:
            for q, bit in initial_state.items():
                state[q] = (full, 0) if bit else (0, full)
        observe_points = list(self.netlist.pos)
        if extra_observables:
            observe_points.extend(extra_observables)
        detected_mask = 0

        AND, OR, NOT, BUF = GateType.AND, GateType.OR, GateType.NOT, GateType.BUF
        NAND, NOR, XOR, XNOR = (GateType.NAND, GateType.NOR, GateType.XOR,
                                GateType.XNOR)

        for vec in vectors:
            values: Dict[int, Tuple[int, int]] = {
                CONST0: (0, full), CONST1: (full, 0)
            }
            for pi in self.netlist.pis:
                bit = vec.get(pi)
                if bit is None:
                    pair = (0, 0)
                elif bit:
                    pair = (full, 0)
                else:
                    pair = (0, full)
                values[pi] = inject(pi, *pair) if has_injection else pair
            for dff in self._dffs:
                q = dff.output
                pair = state.get(q, (0, 0))
                values[q] = inject(q, *pair) if has_injection else pair

            get = values.get
            for gtype, out, inputs in self._flat:
                if gtype is BUF:
                    ones, zeros = get(inputs[0], (0, 0))
                elif gtype is NOT:
                    i1, i0 = get(inputs[0], (0, 0))
                    ones, zeros = i0, i1
                elif gtype is AND or gtype is NAND:
                    ones, zeros = full, 0
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones &= i1
                        zeros |= i0
                    if gtype is NAND:
                        ones, zeros = zeros, ones
                elif gtype is OR or gtype is NOR:
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones |= i1
                        zeros &= i0
                    if gtype is NOR:
                        ones, zeros = zeros, ones
                else:  # XOR / XNOR
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones, zeros = (ones & i0) | (zeros & i1), \
                                      (ones & i1) | (zeros & i0)
                    if gtype is XNOR:
                        ones, zeros = zeros, ones
                if has_injection:
                    ones, zeros = inject(out, ones, zeros)
                values[out] = (ones, zeros)

            for po in observe_points:
                ones, zeros = values.get(po, (0, 0))
                if ones & 1:  # good machine observes 1
                    detected_mask |= zeros & ~1
                elif zeros & 1:  # good machine observes 0
                    detected_mask |= ones & ~1

            state = {
                dff.output: values.get(dff.inputs[0], (0, 0))
                for dff in self._dffs
            }

        out: Set[Fault] = set()
        for lane, fault in enumerate(block, start=1):
            if detected_mask & (1 << lane):
                out.add(fault)
        return out
