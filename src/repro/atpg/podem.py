"""PODEM test generation over a time-frame-expanded model.

Implements the classic objective / backtrace / imply loop with:

- five-valued D-algebra simulation (event-driven, with undo logs),
- fault injection in every time frame,
- X-path pruning,
- a backtrack limit and a per-fault CPU budget (aborts are reported, which
  is exactly what produces the "ATPG Eff. %" column of the paper's tables).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import CpuTimer, Deadline, progress
from repro.synth.netlist import GateType
from repro.atpg.faults import Fault
from repro.atpg.sequential import Key, UnrolledModel
from repro.atpg.values import (
    V0,
    V1,
    VX,
    from_components,
    good_bit,
    is_d_value,
    v_and,
    v_not,
    v_or,
    v_xor,
)

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}
_INVERTING = {GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR}


def eval_gate_values(gtype: GateType, input_keys: Sequence[Key],
                     val: Dict[Key, int]) -> int:
    """Five-valued evaluation of one gate over a value map."""
    get = val.get
    if gtype is GateType.BUF:
        return get(input_keys[0], VX)
    if gtype is GateType.NOT:
        return v_not(get(input_keys[0], VX))
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = V1
        for k in input_keys:
            acc = v_and(acc, get(k, VX))
            if acc == V0:
                break
        return v_not(acc) if gtype is GateType.NAND else acc
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = V0
        for k in input_keys:
            acc = v_or(acc, get(k, VX))
            if acc == V1:
                break
        return v_not(acc) if gtype is GateType.NOR else acc
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = V0
        for k in input_keys:
            acc = v_xor(acc, get(k, VX))
        return v_not(acc) if gtype is GateType.XNOR else acc
    raise ValueError(f"cannot evaluate gate type {gtype}")


@dataclass
class PodemResult:
    status: str  # "detected" | "untestable" | "aborted"
    fault: Fault
    frames: int
    vectors: List[Dict[int, int]] = field(default_factory=list)
    initial_state: Dict[int, int] = field(default_factory=dict)
    backtracks: int = 0
    decisions: int = 0
    implications: int = 0
    cpu_seconds: float = 0.0
    abort_reason: Optional[str] = None  # "time_limit" | "backtrack_limit"

    @property
    def detected(self) -> bool:
        return self.status == "detected"


class Podem:
    """One PODEM search for one fault on one unrolled model."""

    def __init__(self, model: UnrolledModel, fault: Fault,
                 backtrack_limit: int = 100,
                 time_limit: Optional[float] = None):
        self.model = model
        self.fault = fault
        self.backtrack_limit = backtrack_limit
        self.time_limit = time_limit
        self.val: Dict[Key, int] = {}
        self._observable_set: Set[Key] = set(model.observable)
        self._d_nets: Set[Key] = set()       # keys currently carrying D/D'
        self._frontier: Set[Key] = set()     # gate-output keys on D-frontier
        self.backtracks = 0
        self.decisions = 0
        self.implications = 0

    # -- public ------------------------------------------------------------

    def run(self) -> PodemResult:
        timer = CpuTimer().start()
        deadline = Deadline(self.time_limit)
        model = self.model
        self._init_values()

        stack: List[List] = []  # [key, value, tried_other, undo_log]
        status = "untestable"
        abort_reason: Optional[str] = None

        while True:
            if deadline.expired():
                status = "aborted"
                abort_reason = "time_limit"
                break
            if self._detected():
                status = "detected"
                break

            objective = self._objective()
            target = self._backtrace(objective) if objective else None
            if target is not None:
                key, value = target
                self.decisions += 1
                undo = self._assign(key, value)
                stack.append([key, value, False, undo])
                continue

            # Dead end: chronological backtracking.
            backtracked = False
            while stack:
                key, value, tried, undo = stack.pop()
                self._revert(undo)
                self.backtracks += 1
                if self.backtracks % 256 == 0:
                    progress("podem.search", backtracks=self.backtracks,
                             decisions=self.decisions,
                             frames=model.frames)
                if self.backtracks > self.backtrack_limit:
                    status = "aborted"
                    abort_reason = "backtrack_limit"
                    break
                if not tried:
                    undo2 = self._assign(key, 1 - value)
                    stack.append([key, 1 - value, True, undo2])
                    backtracked = True
                    break
            if not backtracked:
                # Search space exhausted (untestable at this depth) or the
                # backtrack limit fired (aborted).
                break

        result = PodemResult(
            status=status,
            fault=self.fault,
            frames=model.frames,
            backtracks=self.backtracks,
            decisions=self.decisions,
            implications=self.implications,
            cpu_seconds=timer.stop(),
            abort_reason=abort_reason if status == "aborted" else None,
        )
        if status == "detected":
            vectors, init_state = self._extract_vectors()
            result.vectors = vectors
            result.initial_state = init_state
        return result

    # -- value maintenance ---------------------------------------------------

    def _init_values(self) -> None:
        """Initial implication pass: copy the model's fault-free base values
        and propagate the fault injection from its site copies only."""
        model = self.model
        self.val = dict(model.base_values())
        self._d_nets = set()
        self._frontier = set()
        changed: List[Key] = []
        for key in model.fault_site_keys(self.fault.net):
            old = self.val.get(key, VX)
            new = self._faultize(old)
            if new != old:
                self.val[key] = new
                changed.append(key)
        if changed:
            undo = self._propagate(changed)
            changed.extend(k for k, _ in undo)
        self._after_changes(changed)

    def _propagate(self, seeds: Sequence[Key]) -> List[Tuple[Key, int]]:
        """Event-driven forward propagation from the given keys."""
        undo: List[Tuple[Key, int]] = []
        queue = deque()
        seen_in_queue = set()
        for seed in seeds:
            for nxt in self.model.fanout_keys(seed):
                if nxt not in seen_in_queue:
                    queue.append(nxt)
                    seen_in_queue.add(nxt)
        while queue:
            current = queue.popleft()
            seen_in_queue.discard(current)
            old_val = self.val.get(current, VX)
            new_val = self._eval_key(current)
            if new_val == old_val:
                continue
            undo.append((current, old_val))
            self.implications += 1
            self.val[current] = new_val
            for nxt in self.model.fanout_keys(current):
                if nxt not in seen_in_queue:
                    queue.append(nxt)
                    seen_in_queue.add(nxt)
        return undo

    def _after_changes(self, changed: Sequence[Key]) -> None:
        """Incrementally update D-net and D-frontier sets."""
        model = self.model
        val = self.val
        affected: Set[Key] = set()
        for key in changed:
            value = val.get(key, VX)
            if is_d_value(value):
                self._d_nets.add(key)
            else:
                self._d_nets.discard(key)
            frame, net = key
            if net in model.driver:
                affected.add(key)
            for gate in model.fanout.get(net, []):
                affected.add((frame, gate.output))
        for out_key in affected:
            frame, net = out_key
            gate = model.driver.get(net)
            if gate is None:
                continue
            if val.get(out_key, VX) == VX and any(
                is_d_value(val.get((frame, i), VX)) for i in gate.inputs
            ):
                self._frontier.add(out_key)
            else:
                self._frontier.discard(out_key)

    def _faultize(self, value: int) -> int:
        return from_components(good_bit(value), self.fault.value)

    def _eval_key(self, key: Key) -> int:
        model = self.model
        drv = model.driver_of(key)
        if drv is None:
            value = self.val.get(key, VX)
        else:
            kind, gate, input_keys = drv
            if kind == "dff":
                value = self.val.get(input_keys[0], VX)
            else:
                value = eval_gate_values(gate.type, input_keys, self.val)
        if key[1] == self.fault.net:
            value = self._faultize(value)
        return value

    def _assign(self, key: Key, bit: int) -> List[Tuple[Key, int]]:
        """Assign a PI/PIER key and propagate; returns the undo log."""
        undo: List[Tuple[Key, int]] = []
        old = self.val.get(key, VX)
        new = V1 if bit else V0
        if key[1] == self.fault.net:
            new = self._faultize(new)
        if new == old:
            return undo
        undo.append((key, old))
        self.val[key] = new
        queue = deque(self.model.fanout_keys(key))
        seen_in_queue = set(queue)
        while queue:
            current = queue.popleft()
            seen_in_queue.discard(current)
            old_val = self.val.get(current, VX)
            new_val = self._eval_key(current)
            if new_val == old_val:
                continue
            undo.append((current, old_val))
            self.implications += 1
            self.val[current] = new_val
            for nxt in self.model.fanout_keys(current):
                if nxt not in seen_in_queue:
                    queue.append(nxt)
                    seen_in_queue.add(nxt)
        self._after_changes([k for k, _ in undo])
        return undo

    def _revert(self, undo: List[Tuple[Key, int]]) -> None:
        for key, old in reversed(undo):
            if old == VX:
                self.val.pop(key, None)
            else:
                self.val[key] = old
        self._after_changes([k for k, _ in undo])

    # -- search guidance -------------------------------------------------------

    def _detected(self) -> bool:
        if len(self._d_nets) < len(self._observable_set):
            return any(k in self._observable_set for k in self._d_nets)
        return any(k in self._d_nets for k in self._observable_set)

    def _fault_activated(self) -> bool:
        val = self.val
        for key in self.model.fault_site_keys(self.fault.net):
            if is_d_value(val.get(key, VX)):
                return True
        return False

    def _objective(self) -> Optional[Tuple[Key, int]]:
        model = self.model
        val = self.val

        if not self._fault_activated():
            desired = 1 - self.fault.value
            for key in reversed(model.fault_site_keys(self.fault.net)):
                if val.get(key, VX) == VX and model.is_controllable(key):
                    return (key, desired)
            return None

        if not self._x_path_exists():
            return None

        # Propagate: pick the D-frontier gate closest to the outputs.
        frontier = self._d_frontier()
        if not frontier:
            return None
        frontier.sort(key=lambda item: -model.level(item[0]))
        for out_key, gtype, input_keys in frontier:
            ctrl = _CONTROLLING.get(gtype)
            noncontrolling = 1 - ctrl if ctrl is not None else 0
            for in_key in input_keys:
                if val.get(in_key, VX) == VX and model.is_controllable(in_key):
                    return (in_key, noncontrolling)
        return None

    def _d_frontier(self) -> List[Tuple[Key, GateType, List[Key]]]:
        """Gates with a D input and an X output, in all frames."""
        model = self.model
        out: List[Tuple[Key, GateType, List[Key]]] = []
        for out_key in self._frontier:
            frame, net = out_key
            gate = model.driver[net]
            out.append((out_key, gate.type, [(frame, i) for i in gate.inputs]))
        return out

    def _x_path_exists(self) -> bool:
        """Some D value can still reach an observable key through X nets."""
        model = self.model
        val = self.val
        sources = list(self._d_nets)
        seen: Set[Key] = set()
        stack = list(sources)
        while stack:
            key = stack.pop()
            if key in self._observable_set:
                return True
            for nxt in model.fanout_keys(key):
                if nxt in seen:
                    continue
                value = val.get(nxt, VX)
                if value == VX or is_d_value(value):
                    seen.add(nxt)
                    if nxt in self._observable_set:
                        return True
                    stack.append(nxt)
        # Direct observation of a D at an observable key is "detected",
        # handled elsewhere; reaching here means no path remains.
        return False

    def _backtrace(self, objective: Tuple[Key, int]
                   ) -> Optional[Tuple[Key, int]]:
        """Map an objective to an unassigned assignable input."""
        model = self.model
        val = self.val
        key, value = objective
        guard = 0
        while True:
            guard += 1
            if guard > 100000:
                return None
            if model.is_assignable(key) and val.get(key, VX) == VX:
                return (key, value)
            drv = model.driver_of(key)
            if drv is None:
                return None
            kind, gate, input_keys = drv
            if kind == "dff":
                key = input_keys[0]
                continue
            gtype = gate.type
            if gtype is GateType.BUF:
                key = input_keys[0]
                continue
            if gtype is GateType.NOT:
                key = input_keys[0]
                value = 1 - value
                continue
            if gtype in (GateType.AND, GateType.NAND, GateType.OR,
                         GateType.NOR):
                if gtype in _INVERTING:
                    value = 1 - value
                ctrl = _CONTROLLING[gtype]
                candidates = [
                    k for k in input_keys
                    if val.get(k, VX) == VX and model.is_controllable(k)
                ]
                if not candidates:
                    return None
                if value == ctrl:
                    # One controlling input suffices: pick the easiest.
                    key = min(candidates, key=model.level)
                else:
                    # All inputs must be non-controlling: pick the hardest.
                    key = max(candidates, key=model.level)
                continue
            if gtype in (GateType.XOR, GateType.XNOR):
                if gtype is GateType.XNOR:
                    value = 1 - value
                parity = 0
                candidates = []
                for k in input_keys:
                    bit = good_bit(val.get(k, VX))
                    if bit is None:
                        if model.is_controllable(k):
                            candidates.append(k)
                    else:
                        parity ^= bit
                if not candidates:
                    return None
                key = min(candidates, key=model.level)
                value = value ^ parity
                continue
            return None

    # -- vector extraction -------------------------------------------------------

    def _extract_vectors(self) -> Tuple[List[Dict[int, int]], Dict[int, int]]:
        model = self.model
        val = self.val
        vectors: List[Dict[int, int]] = []
        for frame in range(model.frames):
            vec: Dict[int, int] = {}
            for pi in model.base_pis:
                bit = good_bit(val.get((frame, pi), VX))
                vec[pi] = bit if bit is not None else 0
            vectors.append(vec)
        init_state: Dict[int, int] = {}
        for q in model.pier_qs:
            bit = good_bit(val.get((0, q), VX))
            if bit is not None:
                init_state[q] = bit
        return vectors, init_state
