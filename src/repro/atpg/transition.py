"""Transition (gross-delay) fault model — an at-speed extension.

The paper's motivation is that at-speed *functional* tests catch the defects
that matter (crosstalk, opens, delays); this module extends the fault
substrate accordingly with the standard transition fault model:

- a **slow-to-rise** fault on a net behaves as stuck-at-0 in any cycle whose
  *previous* faulty-machine value of the net was 0 (the rising edge does not
  complete within the cycle) — and dually for **slow-to-fall**,
- detection therefore needs a two-vector pattern: initialise the net to the
  off value, then launch the transition and propagate the resulting
  stuck-at effect to an output.

Sequential functional test sets exercise launch/capture pairs naturally
(consecutive at-speed cycles), so transition coverage of a stuck-at test set
is a meaningful at-speed quality metric — exactly the argument of the
Maxwell/Aitken reference the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.atpg.faults import all_fault_sites
from repro.synth.netlist import CONST0, CONST1, GateType, Netlist

Vector = Mapping[int, int]

# Transition simulation tracks per-site previous values, so it runs narrower
# blocks than the stuck-at simulator's DEFAULT_LANES.
DEFAULT_TRANSITION_LANES = 256


@dataclass(frozen=True, order=True)
class TransitionFault:
    """Net ``net`` slow-to-rise (``rising=True``) or slow-to-fall."""

    net: int
    rising: bool

    def describe(self, netlist: Netlist) -> str:
        kind = "slow-to-rise" if self.rising else "slow-to-fall"
        return f"{netlist.net_name(self.net)} {kind}"


def build_transition_fault_list(netlist: Netlist,
                                region: Optional[str] = None
                                ) -> List[TransitionFault]:
    """Both transition polarities on every signal-carrying net."""
    sites = all_fault_sites(netlist)
    if region is not None:
        regions = getattr(netlist, "regions", {})
        sites = [n for n in sites if regions.get(n, "").startswith(region)]
    out: List[TransitionFault] = []
    for net in sites:
        out.append(TransitionFault(net, True))
        out.append(TransitionFault(net, False))
    return sorted(out)


class TransitionFaultSimulator:
    """Lane-parallel gross-delay transition fault simulation.

    Lane 0 is the good machine.  Each faulty lane tracks its own previous
    value of the fault site; when the site would transition in the slow
    direction, the lane holds the old value instead (the gross-delay
    assumption: the transition takes longer than one at-speed cycle).
    A fault is detected when a primary output differs binary-vs-binary
    from the good machine.
    """

    def __init__(self, netlist: Netlist,
                 lanes: int = DEFAULT_TRANSITION_LANES):
        if lanes < 2:
            raise ValueError("need at least two lanes")
        self.netlist = netlist
        self.lanes = lanes
        self._order = netlist.topological_order()
        self._dffs = netlist.dffs()
        self._flat = [(g.type, g.output, g.inputs) for g in self._order]

    def detected_faults(self, vectors: Sequence[Vector],
                        faults: Sequence[TransitionFault],
                        initial_state: Optional[Mapping[int, int]] = None,
                        extra_observables: Optional[Sequence[int]] = None,
                        ) -> Set[TransitionFault]:
        detected: Set[TransitionFault] = set()
        block = self.lanes - 1
        for start in range(0, len(faults), block):
            chunk = faults[start:start + block]
            detected |= self._simulate_block(vectors, chunk, initial_state,
                                             extra_observables)
        return detected

    # -- internals --------------------------------------------------------

    def _simulate_block(self, vectors, chunk, initial_state,
                        extra_observables) -> Set[TransitionFault]:
        width = len(chunk) + 1
        full = (1 << width) - 1

        # Lanes grouped by fault site for the dynamic injection step.
        lanes_at: Dict[int, List[Tuple[int, TransitionFault]]] = {}
        for lane, fault in enumerate(chunk, start=1):
            lanes_at.setdefault(fault.net, []).append((lane, fault))

        # Previous faulty value per fault site: (ones, zeros) masks over the
        # site's own lanes.  Starts X (no transition can be inferred yet).
        prev: Dict[int, Tuple[int, int]] = {
            net: (0, 0) for net in lanes_at
        }

        state: Dict[int, Tuple[int, int]] = {
            dff.output: (0, 0) for dff in self._dffs
        }
        if initial_state:
            for q, bit in initial_state.items():
                state[q] = (full, 0) if bit else (0, full)

        observe = list(self.netlist.pos)
        if extra_observables:
            observe.extend(extra_observables)

        def inject(net: int, ones: int, zeros: int) -> Tuple[int, int]:
            """Hold the previous value on lanes whose slow edge fires."""
            entry = lanes_at.get(net)
            if entry is None:
                return ones, zeros
            p1, p0 = prev[net]
            for lane, fault in entry:
                bit = 1 << lane
                if fault.rising:
                    # Slow-to-rise: a 0->1 change is held at 0.
                    if (p0 & bit) and (ones & bit):
                        ones &= ~bit
                        zeros |= bit
                else:
                    if (p1 & bit) and (zeros & bit):
                        zeros &= ~bit
                        ones |= bit
            # Record this cycle's (post-injection) faulty value: the next
            # cycle's transition check compares against what the faulty
            # machine actually carried.
            prev[net] = (ones, zeros)
            return ones, zeros

        detected_mask = 0
        AND, OR, NOT, BUF = (GateType.AND, GateType.OR, GateType.NOT,
                             GateType.BUF)
        NAND, NOR, XNOR = GateType.NAND, GateType.NOR, GateType.XNOR

        for vec in vectors:
            values: Dict[int, Tuple[int, int]] = {
                CONST0: (0, full), CONST1: (full, 0)
            }
            for pi in self.netlist.pis:
                bit = vec.get(pi)
                pair = (full, 0) if bit else ((0, full) if bit == 0
                                              else (0, 0))
                values[pi] = inject(pi, *pair) if pi in lanes_at else pair
            for dff in self._dffs:
                q = dff.output
                pair = state.get(q, (0, 0))
                values[q] = inject(q, *pair) if q in lanes_at else pair

            get = values.get
            for gtype, out, inputs in self._flat:
                if gtype is BUF:
                    ones, zeros = get(inputs[0], (0, 0))
                elif gtype is NOT:
                    i1, i0 = get(inputs[0], (0, 0))
                    ones, zeros = i0, i1
                elif gtype is AND or gtype is NAND:
                    ones, zeros = full, 0
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones &= i1
                        zeros |= i0
                    if gtype is NAND:
                        ones, zeros = zeros, ones
                elif gtype is OR or gtype is NOR:
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones |= i1
                        zeros &= i0
                    if gtype is NOR:
                        ones, zeros = zeros, ones
                else:  # XOR / XNOR
                    ones, zeros = 0, full
                    for inp in inputs:
                        i1, i0 = get(inp, (0, 0))
                        ones, zeros = (ones & i0) | (zeros & i1), \
                                      (ones & i1) | (zeros & i0)
                    if gtype is XNOR:
                        ones, zeros = zeros, ones
                if out in lanes_at:
                    ones, zeros = inject(out, ones, zeros)
                values[out] = (ones, zeros)

            for po in observe:
                ones, zeros = values.get(po, (0, 0))
                if ones & 1:
                    detected_mask |= zeros & ~1
                elif zeros & 1:
                    detected_mask |= ones & ~1

            state = {
                dff.output: values.get(dff.inputs[0], (0, 0))
                for dff in self._dffs
            }

        out: Set[TransitionFault] = set()
        for lane, fault in enumerate(chunk, start=1):
            if detected_mask & (1 << lane):
                out.add(fault)
        return out


def transition_coverage(netlist: Netlist,
                        vector_sequences: Sequence[Sequence[Vector]],
                        region: Optional[str] = None,
                        initial_states: Optional[Sequence[Optional[
                            Mapping[int, int]]]] = None,
                        lanes: int = DEFAULT_TRANSITION_LANES,
                        ) -> Tuple[float, List[TransitionFault]]:
    """Transition coverage of a collection of vector sequences.

    Returns ``(coverage_percent, undetected_faults)``.
    """
    faults = build_transition_fault_list(netlist, region=region)
    if not faults:
        return 100.0, []
    sim = TransitionFaultSimulator(netlist, lanes=lanes)
    remaining: Set[TransitionFault] = set(faults)
    inits = initial_states or [None] * len(vector_sequences)
    for vectors, init in zip(vector_sequences, inits):
        if not remaining:
            break
        remaining -= sim.detected_faults(vectors, sorted(remaining),
                                         initial_state=init)
    coverage = 100.0 * (len(faults) - len(remaining)) / len(faults)
    return coverage, sorted(remaining)
