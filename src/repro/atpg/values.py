"""Five-valued D-algebra for test generation.

Values are encoded as ``(good, faulty)`` machine bit pairs where each
component is 0, 1 or X::

    V0    = (0, 0)
    V1    = (1, 1)
    VD    = (1, 0)   # "D"  — good machine 1, faulty machine 0
    VDBAR = (0, 1)   # "D'" — good machine 0, faulty machine 1
    VX    = (X, X)

Operation tables for AND/OR/XOR/NOT are precomputed over the five values by
evaluating the three-valued operation on each machine component.
"""

from __future__ import annotations

from typing import List

V0 = 0
V1 = 1
VD = 2
VDBAR = 3
VX = 4

ALL_VALUES = (V0, V1, VD, VDBAR, VX)

_NAMES = {V0: "0", V1: "1", VD: "D", VDBAR: "D'", VX: "X"}

# Per-machine components: 0, 1 or None (= X).
_COMPONENTS = {
    V0: (0, 0),
    V1: (1, 1),
    VD: (1, 0),
    VDBAR: (0, 1),
    VX: (None, None),
}


def value_name(value: int) -> str:
    return _NAMES[value]


def good_bit(value: int):
    """Good-machine component: 0, 1 or None for unknown."""
    return _COMPONENTS[value][0]


def faulty_bit(value: int):
    """Faulty-machine component: 0, 1 or None for unknown."""
    return _COMPONENTS[value][1]


def from_components(good, faulty) -> int:
    """Build a five-valued value from machine components (None = X).

    Pairs with exactly one unknown component collapse to X (the five-valued
    algebra cannot represent them).
    """
    if good is None or faulty is None:
        return VX
    if good == 1 and faulty == 1:
        return V1
    if good == 0 and faulty == 0:
        return V0
    if good == 1 and faulty == 0:
        return VD
    return VDBAR


def _and3(a, b):
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return 1


def _or3(a, b):
    if a == 1 or b == 1:
        return 1
    if a is None or b is None:
        return None
    return 0


def _xor3(a, b):
    if a is None or b is None:
        return None
    return a ^ b


def _not3(a):
    if a is None:
        return None
    return 1 - a


def _build_table(op3) -> List[List[int]]:
    table = [[VX] * 5 for _ in range(5)]
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            ag, af = _COMPONENTS[a]
            bg, bf = _COMPONENTS[b]
            table[a][b] = from_components(op3(ag, bg), op3(af, bf))
    return table


AND_TABLE = _build_table(_and3)
OR_TABLE = _build_table(_or3)
XOR_TABLE = _build_table(_xor3)
NOT_TABLE = [
    from_components(_not3(_COMPONENTS[v][0]), _not3(_COMPONENTS[v][1]))
    for v in ALL_VALUES
]


def v_and(a: int, b: int) -> int:
    return AND_TABLE[a][b]


def v_or(a: int, b: int) -> int:
    return OR_TABLE[a][b]


def v_xor(a: int, b: int) -> int:
    return XOR_TABLE[a][b]


def v_not(a: int) -> int:
    return NOT_TABLE[a]


def is_d_value(value: int) -> bool:
    """True for D or D' — a fault effect."""
    return value == VD or value == VDBAR


def invert_polarity(value: int) -> int:
    return v_not(value)
