"""SCOAP testability measures (Goldstein's controllability/observability).

FACTOR's testability analysis flags structural problems before ATPG runs;
SCOAP supplies the quantitative counterpart: per-net combinational 0/1
controllability (CC0/CC1) and observability (CO).  Sequential elements are
treated scan-style (flop outputs cost one extra unit), which is the standard
approximation for a quick pre-ATPG screen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.synth.netlist import CONST0, CONST1, Gate, GateType, Netlist

_INFINITY = 10 ** 9


@dataclass
class ScoapMeasures:
    cc0: Dict[int, int]
    cc1: Dict[int, int]
    co: Dict[int, int]

    def hardest_to_control(self, netlist: Netlist,
                           count: int = 10) -> List[Tuple[str, int]]:
        worst = sorted(
            ((max(self.cc0.get(n, 0), self.cc1.get(n, 0)), n)
             for n in self.cc0 if n > CONST1),
            reverse=True,
        )[:count]
        return [(netlist.net_name(n), cost) for cost, n in worst]

    def hardest_to_observe(self, netlist: Netlist,
                           count: int = 10) -> List[Tuple[str, int]]:
        worst = sorted(
            ((cost, n) for n, cost in self.co.items()), reverse=True
        )[:count]
        return [(netlist.net_name(n), cost) for cost, n in worst]


def scoap_measures(netlist: Netlist) -> ScoapMeasures:
    """Compute CC0/CC1/CO for every net."""
    cc0: Dict[int, int] = {CONST0: 0, CONST1: _INFINITY}
    cc1: Dict[int, int] = {CONST0: _INFINITY, CONST1: 0}
    for pi in netlist.pis:
        cc0[pi] = 1
        cc1[pi] = 1
    for dff in netlist.dffs():
        # Scan-style: controlling a flop costs one unit more than its D cone;
        # initialised lazily below via iteration.
        cc0.setdefault(dff.output, _INFINITY)
        cc1.setdefault(dff.output, _INFINITY)

    order = netlist.topological_order()
    # Iterate to a fixpoint so flop feedback paths settle.
    for _ in range(max(2, len(netlist.dffs()) + 1)):
        changed = False
        for gate in order:
            z0, z1 = _gate_controllability(gate, cc0, cc1)
            if z0 < cc0.get(gate.output, _INFINITY):
                cc0[gate.output] = z0
                changed = True
            if z1 < cc1.get(gate.output, _INFINITY):
                cc1[gate.output] = z1
                changed = True
        for dff in netlist.dffs():
            d = dff.inputs[0]
            d0 = cc0.get(d, _INFINITY) + 1
            d1 = cc1.get(d, _INFINITY) + 1
            if d0 < cc0[dff.output]:
                cc0[dff.output] = d0
                changed = True
            if d1 < cc1[dff.output]:
                cc1[dff.output] = d1
                changed = True
        if not changed:
            break

    co: Dict[int, int] = {}
    for po in netlist.pos:
        co[po] = 0
    for _ in range(max(2, len(netlist.dffs()) + 1)):
        changed = False
        for gate in reversed(order):
            out_co = co.get(gate.output, _INFINITY)
            if out_co >= _INFINITY:
                continue
            for idx, inp in enumerate(gate.inputs):
                cost = _input_observability(gate, idx, out_co, cc0, cc1)
                if cost < co.get(inp, _INFINITY):
                    co[inp] = cost
                    changed = True
        for dff in netlist.dffs():
            q_co = co.get(dff.output, _INFINITY)
            if q_co < _INFINITY:
                cost = q_co + 1
                if cost < co.get(dff.inputs[0], _INFINITY):
                    co[dff.inputs[0]] = cost
                    changed = True
        if not changed:
            break

    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co)


def _gate_controllability(gate: Gate, cc0: Dict[int, int],
                          cc1: Dict[int, int]) -> Tuple[int, int]:
    gtype = gate.type
    in0 = [cc0.get(i, _INFINITY) for i in gate.inputs]
    in1 = [cc1.get(i, _INFINITY) for i in gate.inputs]

    def cap(x: int) -> int:
        return min(x, _INFINITY)

    if gtype is GateType.BUF or gtype is GateType.DFF:
        return cap(in0[0] + 1), cap(in1[0] + 1)
    if gtype is GateType.NOT:
        return cap(in1[0] + 1), cap(in0[0] + 1)
    if gtype in (GateType.AND, GateType.NAND):
        z1 = cap(sum(in1) + 1)          # all inputs 1
        z0 = cap(min(in0) + 1)          # any input 0
        if gtype is GateType.NAND:
            return z1, z0
        return z0, z1
    if gtype in (GateType.OR, GateType.NOR):
        z0 = cap(sum(in0) + 1)          # all inputs 0
        z1 = cap(min(in1) + 1)          # any input 1
        if gtype is GateType.NOR:
            return z1, z0
        return z0, z1
    # XOR / XNOR: enumerate parity combinations (two-input common case;
    # n-input approximated by pairwise folding).
    z0, z1 = in0[0], in1[0]
    for b0, b1 in zip(in0[1:], in1[1:]):
        even = min(z0 + b0, z1 + b1)
        odd = min(z0 + b1, z1 + b0)
        z0, z1 = even, odd
    if gtype is GateType.XNOR:
        return cap(z1 + 1), cap(z0 + 1)
    return cap(z0 + 1), cap(z1 + 1)


def _input_observability(gate: Gate, idx: int, out_co: int,
                         cc0: Dict[int, int], cc1: Dict[int, int]) -> int:
    gtype = gate.type
    others = [i for k, i in enumerate(gate.inputs) if k != idx]
    if gtype in (GateType.BUF, GateType.NOT, GateType.DFF):
        return min(out_co + 1, _INFINITY)
    if gtype in (GateType.AND, GateType.NAND):
        side = sum(cc1.get(i, _INFINITY) for i in others)
    elif gtype in (GateType.OR, GateType.NOR):
        side = sum(cc0.get(i, _INFINITY) for i in others)
    else:  # XOR / XNOR: need others at known values, take the cheaper
        side = sum(
            min(cc0.get(i, _INFINITY), cc1.get(i, _INFINITY)) for i in others
        )
    return min(out_co + side + 1, _INFINITY)
