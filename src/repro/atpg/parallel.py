"""Fault-parallel PODEM: speculative workers, serial-order commits.

The deterministic phase of an ATPG run spends ~95% of its CPU inside
``SequentialAtpg.generate``, which is a pure function of (netlist,
options, fault) — it never reads the shrinking fault set.  That purity is
the whole design: forked workers *speculate* PODEM results for shards of
the cone-packed fault list, while the parent replays the exact serial
fault loop, committing buffered worker results in serial order through
:class:`~repro.atpg.engine.PodemCommitState`.  All classification — test
acceptance, cross-fault-simulation drops, untestable/aborted bookkeeping
— happens in the parent, so detected/untestable/aborted sets, coverage
and the tests list are bit-identical to a serial run at any worker
count.  The only cost is speculation: a worker may finish a fault the
parent's cross-sim has already dropped (~25% of attempts on arm2, partly
recovered by pruning dropped faults from shards at dispatch time).

Topology: one ``fork`` Process per worker, a per-worker ``Pipe`` for
shard dispatch and shutdown, one shared result queue back to the parent.
Shards are contiguous runs of the cone-packed fault order (neighbours
share fanout cones, so a detected fault's cross-sim tends to drop
neighbours *in the same shard*, maximising prune value), pre-assigned
round-robin; a worker that drains its own queue steals from the longest
one.  A worker that dies mid-shard has its unfinished faults re-queued;
faults that keep dying are generated directly in the parent, as is
everything else if every worker is lost — the run degrades to serial,
never wrong, never hung.

Telemetry crosses back on worker exit: each worker runs a private
``MetricsRegistry`` and an ``atpg.worker`` span (parented under the
coordinator's span context), and the parent folds the snapshots into the
process registry and adopts the span trees, so ``repro profile`` and the
stitched trace see per-worker wall/CPU.  Progress streams from the
*parent only*: per-commit ``atpg.podem`` events carry a live ``coverage``
percentage, per-shard ``atpg.shard`` events mark dispatch milestones.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.obs import MetricsRegistry, Span, counter, gauge, get_registry, \
    histogram, progress, set_reporter, wall_clock
from repro.obs.trace import TraceContext
from repro.atpg.compiled import (cone_pack_order, resolve_backend,
                                 site_rank_map)
from repro.atpg.engine import PodemCommitState, SequentialAtpg
from repro.atpg.faults import Fault

#: Test hook: called with the list of worker Process objects right after
#: they start (crash-injection tests SIGKILL one here).
_TEST_ON_WORKERS_STARTED: Optional[Callable[[List[Any]], None]] = None

#: Faults re-queued from dead workers more times than this are generated
#: directly in the parent — a fault that reliably kills workers must not
#: be able to live-lock the run.
_MAX_REQUEUES = 2

#: Result-queue poll interval; also the worker-liveness check cadence.
_POLL_S = 0.5


def shard_faults(faults: List[Fault], rank: Dict[int, int],
                 jobs: int) -> List[List[Fault]]:
    """Cone-packed fault list chopped into work-stealing shards.

    Shard size balances two pressures: small shards steal and prune
    well (a dropped fault costs nothing if its shard was never
    dispatched), large shards amortize dispatch.  ~16 shards per worker
    keeps the tail short without flooding the pipes.
    """
    ordered = cone_pack_order(faults, rank)
    size = max(4, min(64, len(ordered) // max(1, jobs * 16)))
    return [ordered[i:i + size] for i in range(0, len(ordered), size)]


def _worker_main(worker_id: int, seq: SequentialAtpg, conn: Any,
                 results: Any, ctx: Optional[TraceContext]) -> None:
    """Worker loop: recv shard, generate per fault, stream results back.

    Runs in a forked child.  The inherited progress reporter is dropped
    (its pipe belongs to the parent); metrics go to a private registry
    and spans under a hand-built ``atpg.worker`` node, both shipped back
    in the final ``finished`` message.  Between faults the control pipe
    is polled so a parent shutdown (``None``) aborts the shard promptly.
    """
    set_reporter(None)
    registry = MetricsRegistry()
    sp = Span("atpg.worker", {"worker": worker_id}, context=ctx)
    attempted = 0
    shards_done = 0
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            shard_id, shard = msg
            abandoned = False
            for fault in shard:
                if conn.poll() and conn.recv() is None:
                    abandoned = True
                    break
                result = seq.generate(fault)
                attempted += 1
                registry.histogram(
                    "atpg.parallel.worker_fault_seconds"
                ).observe(result.cpu_seconds)
                results.put(("result", worker_id, shard_id, fault, result))
            if abandoned:
                break
            shards_done += 1
            results.put(("shard_done", worker_id, shard_id))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        sp.set("faults", attempted)
        sp.set("shards", shards_done)
        sp.finish()
        registry.counter("atpg.parallel.worker_faults").inc(attempted)
        try:
            results.put(("finished", worker_id, registry.snapshot(),
                         sp.to_dict(), sp.wall_seconds))
        except Exception:
            pass


class _Coordinator:
    """Parent-side state machine for one parallel PODEM phase."""

    def __init__(self, seq: SequentialAtpg, commit: PodemCommitState,
                 jobs: int, parent_span: Span):
        self.seq = seq
        self.commit = commit
        self.jobs = jobs
        self.parent_span = parent_span
        pending = [f for f in commit.faults if f in commit.remaining]
        rank = site_rank_map(seq.netlist)
        self.shards: List[List[Fault]] = shard_faults(pending, rank, jobs)
        self.initial_shards = len(self.shards)
        self.assigned: List[deque] = [deque() for _ in range(jobs)]
        for sid in range(len(self.shards)):
            self.assigned[sid % jobs].append(sid)
        # fault -> buffered speculative result, awaiting its serial turn.
        self.buffered: Dict[Fault, Any] = {}
        # worker -> (shard_id, set of faults still expected from it).
        self.inflight: Dict[int, Optional[Tuple[int, Set[Fault]]]] = {}
        self.requeues: Dict[Fault, int] = {}
        self.ptr = 0  # serial commit cursor into commit.faults
        self.stolen = 0
        self.requeued_shards = 0
        self.wasted_results = 0
        self.shards_done = 0
        self.workers_terminated = 0
        self.alive: Set[int] = set()
        self.finished: Set[int] = set()
        self.retired: Set[int] = set()
        self.procs: List[Any] = []
        self.conns: List[Any] = []
        self.mp = multiprocessing.get_context("fork")
        self.results = self.mp.Queue()

    # -- lifecycle ---------------------------------------------------------

    def start_workers(self) -> None:
        ctx = self.parent_span.context
        for wid in range(self.jobs):
            parent_conn, child_conn = self.mp.Pipe()
            proc = self.mp.Process(
                target=_worker_main,
                args=(wid, self.seq, child_conn, self.results, ctx),
                daemon=True, name=f"atpg-podem-{wid}")
            proc.start()
            child_conn.close()
            self.procs.append(proc)
            self.conns.append(parent_conn)
            self.alive.add(wid)
            self.inflight[wid] = None
        if _TEST_ON_WORKERS_STARTED is not None:
            _TEST_ON_WORKERS_STARTED(self.procs)
        for wid in range(self.jobs):
            self._dispatch(wid)

    def run(self) -> None:
        total = len(self.commit.faults)
        self._advance()
        while self.ptr < total:
            if not self.alive - self.finished:
                self._drain_in_parent()
                break
            try:
                msg = self.results.get(timeout=_POLL_S)
            except queue_mod.Empty:
                self._reap_dead_workers()
                continue
            self._handle(msg)
        self._shutdown()
        self._book_metrics()

    # -- dispatch ----------------------------------------------------------

    def _next_shard(self, wid: int) -> Optional[Tuple[int, List[Fault]]]:
        """Pop the next non-empty shard for a worker, stealing if dry.

        Dropped faults are pruned here — dispatch time — which is how one
        worker's detection shrinks every other worker's future work.
        """
        while True:
            if self.assigned[wid]:
                sid = self.assigned[wid].popleft()
            else:
                donor = max(
                    (w for w in self.alive - self.finished
                     if w != wid and self.assigned[w]),
                    key=lambda w: len(self.assigned[w]), default=None)
                if donor is None:
                    return None
                sid = self.assigned[donor].popleft()
                self.stolen += 1
            live = [f for f in self.shards[sid]
                    if f in self.commit.remaining and f not in self.buffered]
            if live:
                return sid, live

    def _dispatch(self, wid: int) -> None:
        if wid in self.retired:
            # A retired worker has already been told to exit; sending it
            # work would race the shutdown sentinel and strand the shard.
            return
        nxt = self._next_shard(wid)
        if nxt is None:
            self.inflight[wid] = None
            self._retire(wid)
            return
        sid, live = nxt
        try:
            self.conns[wid].send((sid, live))
        except (OSError, ValueError):
            self._fail_worker(wid, carry=(sid, set(live)))
            return
        self.inflight[wid] = (sid, set(live))

    def _retire(self, wid: int) -> None:
        """No work left for this worker: ask it to exit."""
        if wid in self.retired:
            return
        self.retired.add(wid)
        try:
            self.conns[wid].send(None)
        except (OSError, ValueError):
            pass

    # -- message handling --------------------------------------------------

    def _handle(self, msg: Tuple) -> None:
        kind = msg[0]
        if kind == "result":
            _, wid, sid, fault, result = msg
            entry = self.inflight.get(wid)
            if entry is not None and entry[0] == sid:
                entry[1].discard(fault)
            if fault in self.commit.remaining:
                self.buffered[fault] = result
                self._advance()
            else:
                self.wasted_results += 1
        elif kind == "shard_done":
            _, wid, sid = msg
            self.shards_done += 1
            entry = self.inflight.get(wid)
            if entry is not None and entry[0] == sid:
                self.inflight[wid] = None
            progress("atpg.shard", force=True, shard=sid, worker=wid,
                     shards_done=self.shards_done,
                     shards_total=len(self.shards),
                     stolen=self.stolen,
                     detected=len(self.commit.detected),
                     coverage=round(self.commit.coverage_percent, 2))
            if wid in self.alive and wid not in self.finished:
                self._dispatch(wid)
        elif kind == "finished":
            _, wid, snapshot, span_dict, wall_s = msg
            self.finished.add(wid)
            get_registry().merge_snapshot(snapshot)
            self.parent_span.adopt(span_dict)
            histogram("atpg.parallel.worker_wall_seconds").observe(wall_s)

    def _advance(self) -> None:
        """Commit buffered results in serial fault order."""
        faults = self.commit.faults
        while self.ptr < len(faults):
            fault = faults[self.ptr]
            if fault not in self.commit.remaining:
                self.ptr += 1
                continue
            result = self.buffered.pop(fault, None)
            if result is None:
                return
            self.commit.commit(fault, result)
            self.commit.emit_progress(workers=len(self.alive),
                                      shards_done=self.shards_done)
            self.ptr += 1

    # -- failure handling --------------------------------------------------

    def _reap_dead_workers(self) -> None:
        for wid in sorted(self.alive - self.finished):
            if not self.procs[wid].is_alive():
                self._fail_worker(wid)

    def _fail_worker(self, wid: int,
                     carry: Optional[Tuple[int, Set[Fault]]] = None) -> None:
        """A worker died: re-queue its unfinished work, redistribute."""
        self.alive.discard(wid)
        entry = carry if carry is not None else self.inflight.get(wid)
        self.inflight[wid] = None
        survivors = sorted(self.alive - self.finished - self.retired)
        # Its undispatched shards are still valid — hand them over.
        if self.assigned[wid]:
            heir = min(survivors, key=lambda w: len(self.assigned[w]),
                       default=None) if survivors else None
            if heir is not None:
                self.assigned[heir].extend(self.assigned[wid])
            self.assigned[wid].clear()
        if entry is not None:
            lost = [f for f in entry[1]
                    if f in self.commit.remaining
                    and f not in self.buffered]
            retry, direct = [], []
            for fault in lost:
                self.requeues[fault] = self.requeues.get(fault, 0) + 1
                (retry if self.requeues[fault] <= _MAX_REQUEUES
                 else direct).append(fault)
            if retry:
                self.shards.append(retry)
                self.requeued_shards += 1
                heir = min(survivors, key=lambda w: len(self.assigned[w]),
                           default=None) if survivors else None
                if heir is not None:
                    # Front of the heir's queue: lost faults are the
                    # oldest still-uncommitted work and likely block the
                    # serial cursor.
                    self.assigned[heir].appendleft(len(self.shards) - 1)
            for fault in direct:
                if fault in self.commit.remaining:
                    self.buffered[fault] = self.seq.generate(fault)
            if direct:
                self._advance()
        # Idle survivors may now have stealable work again.
        for w in survivors:
            if self.inflight.get(w) is None:
                self._dispatch(w)

    def _drain_in_parent(self) -> None:
        """Every worker is gone: finish the remaining faults serially."""
        faults = self.commit.faults
        while self.ptr < len(faults):
            fault = faults[self.ptr]
            if fault not in self.commit.remaining:
                self.ptr += 1
                continue
            if fault not in self.buffered:
                self.buffered[fault] = self.seq.generate(fault)
            self._advance()

    # -- teardown ----------------------------------------------------------

    def _shutdown(self) -> None:
        """Stop speculation, collect telemetry, reap every worker."""
        for wid in sorted(self.alive - self.finished):
            self._retire(wid)
        opts = self.seq.options
        grace = max(5.0, 2.0 * opts.fault_time_limit
                    * max(1, len(opts.schedule())))
        deadline = wall_clock() + grace
        while (self.alive - self.finished
               and wall_clock() < deadline):
            try:
                msg = self.results.get(timeout=_POLL_S)
            except queue_mod.Empty:
                for wid in sorted(self.alive - self.finished):
                    if not self.procs[wid].is_alive():
                        self.alive.discard(wid)
                continue
            if msg[0] == "finished":
                self._handle(msg)
        for wid, proc in enumerate(self.procs):
            if proc.is_alive() and wid not in self.finished:
                proc.terminate()
                self.workers_terminated += 1
            proc.join(timeout=5.0)
        self.results.close()
        self.results.join_thread()
        for conn in self.conns:
            try:
                conn.close()
            except OSError:
                pass

    def _book_metrics(self) -> None:
        counter("atpg.parallel.runs").inc()
        gauge("atpg.parallel.workers").set(self.jobs)
        counter("atpg.parallel.shards").inc(self.initial_shards)
        counter("atpg.parallel.shards_stolen").inc(self.stolen)
        counter("atpg.parallel.shards_requeued").inc(self.requeued_shards)
        counter("atpg.parallel.cross_sim_drops").inc(
            self.commit.cross_sim_drops)
        counter("atpg.parallel.wasted_results").inc(self.wasted_results)
        if self.workers_terminated:
            counter("atpg.parallel.workers_terminated").inc(
                self.workers_terminated)
        sp = self.parent_span
        sp.set("shards", self.initial_shards)
        sp.set("shards_stolen", self.stolen)
        sp.set("shards_requeued", self.requeued_shards)
        sp.set("wasted_results", self.wasted_results)


def run_parallel_podem(seq: SequentialAtpg, commit: PodemCommitState,
                       jobs: int, parent_span: Span) -> None:
    """Run the deterministic PODEM phase on ``jobs`` forked workers.

    Mutates ``commit`` exactly as the serial loop would (same sets, same
    tests, same order); see the module docstring for why that holds.
    """
    # Build the unrolled models once, pre-fork: every worker inherits
    # them copy-on-write instead of rebuilding per process.
    for frames in seq.options.schedule():
        seq.model(frames)
    # Likewise the netlist arena: cross-simulation inside each worker runs
    # on the arena backend by default, and the flat picklable encoding is
    # cheap to inherit but wasteful to re-derive per fork.
    if resolve_backend(seq.options.fault_sim_backend) == "arena":
        from repro.atpg.arena import get_arena

        get_arena(seq.netlist)
    coordinator = _Coordinator(seq, commit, jobs, parent_span)
    if not coordinator.shards:
        return
    coordinator.start_workers()
    coordinator.run()
