"""Compiled-code simulation backend.

Instead of interpreting the gate list with per-gate dict lookups, this module
code-generates one specialized straight-line Python function per netlist:
every net becomes a local variable (``o<net>``/``z<net>`` for the ones/zeros
masks), gate operations are inlined in levelized topological order, and the
results are flushed into a flat list ``V`` (``V[2n]`` = ones, ``V[2n+1]`` =
zeros of net *n*).  The generated code is chunked into functions of bounded
size so CPython's compiler stays fast, built once per :class:`Netlist` and
cached (:func:`get_compiled`).

On top of the compiled good machine, :func:`compiled_detected_faults`
implements cone-partitioned lane-parallel fault simulation: faults are sorted
by the topological position of their site and packed into blocks; each block
evaluates only the union of its faults' fanout cones (computed with one
multi-source BFS over sequential fanout), fed by a single shared good-machine
pass per cycle.  Fault-injection masks are fused into the per-instruction
program, applied only at the sites a lane actually forces, and a block stops
simulating as soon as every lane has detected.

Backend selection: ``backend="arena"`` (default, see
:mod:`repro.atpg.arena`), ``"compiled"`` or ``"interpreted"``; the
environment variable ``REPRO_SIM_BACKEND`` overrides the default.  The
compiled and interpreted paths are kept unchanged as differential oracles:
all three backends produce bit-identical detected sets.
"""

from __future__ import annotations

import os
from typing import (Dict, Iterator, List, Mapping, Optional, Sequence, Set,
                    Tuple)
from weakref import WeakKeyDictionary

from repro.synth.netlist import Gate, GateType, Netlist
from repro.atpg.faults import Fault

Mask = Tuple[int, int]

BACKENDS = ("arena", "compiled", "interpreted")

# Gates per generated function: bounds CPython compile time per chunk while
# keeping the per-call dispatch overhead negligible.
_CHUNK_GATES = 1500


def default_backend() -> str:
    """Session-wide default backend (``REPRO_SIM_BACKEND`` to override)."""
    return os.environ.get("REPRO_SIM_BACKEND", "arena")


def resolve_backend(backend: Optional[str]) -> str:
    resolved = backend or default_backend()
    if resolved not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {resolved!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    return resolved


# -- code generation ----------------------------------------------------------

def _gate_statements(gate: Gate) -> List[str]:
    """Python statements computing ``o<out>``/``z<out>`` from input locals.

    The expressions replicate :func:`repro.atpg.simulator.eval_gate` exactly,
    including the identity-element folds (``full`` trims the AND/XOR masks the
    same way the interpreted fold starting from ``(full, 0)`` / ``(0, full)``
    does), so both backends agree bit-for-bit on all three values.
    """
    t, out, ins = gate.type, gate.output, gate.inputs
    if t is GateType.BUF:
        a = ins[0]
        return [f" o{out} = o{a}; z{out} = z{a}"]
    if t is GateType.NOT:
        a = ins[0]
        return [f" o{out} = z{a}; z{out} = o{a}"]
    if t is GateType.AND or t is GateType.NAND:
        ones = " & ".join(["full"] + [f"o{i}" for i in ins])
        zeros = " | ".join(f"z{i}" for i in ins)
        if t is GateType.NAND:
            return [f" o{out} = {zeros}; z{out} = {ones}"]
        return [f" o{out} = {ones}; z{out} = {zeros}"]
    if t is GateType.OR or t is GateType.NOR:
        ones = " | ".join(f"o{i}" for i in ins)
        zeros = " & ".join(["full"] + [f"z{i}" for i in ins])
        if t is GateType.NOR:
            return [f" o{out} = {zeros}; z{out} = {ones}"]
        return [f" o{out} = {ones}; z{out} = {zeros}"]
    if t is GateType.XOR or t is GateType.XNOR:
        first = ins[0]
        stmts = [f" _to = full & o{first}; _tz = full & z{first}"]
        for i in ins[1:]:
            stmts.append(
                f" _to, _tz = (_to & z{i}) | (_tz & o{i}), "
                f"(_to & o{i}) | (_tz & z{i})"
            )
        if t is GateType.XNOR:
            stmts.append(f" o{out} = _tz; z{out} = _to")
        else:
            stmts.append(f" o{out} = _to; z{out} = _tz")
        return stmts
    raise ValueError(f"cannot compile gate type {t}")


def _codegen_code_objects(order: Sequence[Gate], name: str):
    """Generate and compile one code object per gate chunk."""
    codes = []
    for start in range(0, len(order), _CHUNK_GATES):
        gates = order[start:start + _CHUNK_GATES]
        lines = ["def _chunk(V, full):"]
        local: Set[int] = set()
        for gate in gates:
            for inp in gate.inputs:
                if inp not in local:
                    lines.append(
                        f" o{inp} = V[{2 * inp}]; z{inp} = V[{2 * inp + 1}]"
                    )
                    local.add(inp)
            lines.extend(_gate_statements(gate))
            local.add(gate.output)
            out = gate.output
            lines.append(f" V[{2 * out}] = o{out}; V[{2 * out + 1}] = z{out}")
        if len(lines) == 1:
            lines.append(" pass")
        source = "\n".join(lines)
        codes.append(compile(source, f"<compiled:{name}:{start}>", "exec"))
    return codes


def _chunks_from_codes(codes) -> List:
    chunks = []
    for code in codes:
        namespace: Dict[str, object] = {}
        exec(code, namespace)
        chunks.append(namespace["_chunk"])
    return chunks


def _codegen_chunks(order: Sequence[Gate], name: str,
                    num_nets: Optional[int] = None):
    """The ``fn(V, full)`` chunk functions for a levelized gate order.

    Codegen and CPython compilation dominate first-call latency on large
    netlists, so the compiled code objects are persisted in the artifact
    store as :mod:`marshal` blobs keyed by the gate-order fingerprint and
    the interpreter's bytecode magic; a warm process deserializes instead
    of re-generating and re-compiling.  Any failure to deserialize falls
    back to a fresh compile.
    """
    import importlib.util
    import marshal

    from repro.store import MISS, gates_fingerprint, get_store

    store = get_store()
    key = {
        "gates": gates_fingerprint(order,
                                   num_nets if num_nets is not None else 0),
        "chunk_gates": _CHUNK_GATES,
        "magic": importlib.util.MAGIC_NUMBER.hex(),
    }
    blobs = store.get("codegen", key)
    if blobs is not MISS:
        try:
            return _chunks_from_codes(marshal.loads(blob) for blob in blobs)
        except (ValueError, EOFError, TypeError, KeyError):
            pass  # foreign/damaged blob: fall through to a fresh compile
    codes = _codegen_code_objects(order, name)
    store.put("codegen", key, [marshal.dumps(code) for code in codes])
    return _chunks_from_codes(codes)


class NetValues(Mapping[int, Mask]):
    """Read-only mapping view of a flat simulation value list.

    Every net id in ``range(num_nets)`` is a key; undriven nets read as
    ``(0, 0)`` (X), matching the ``values.get(net, (0, 0))`` convention of
    the interpreted simulator.
    """

    __slots__ = ("_values", "_num_nets")

    def __init__(self, values: List[int], num_nets: int):
        self._values = values
        self._num_nets = num_nets

    def __getitem__(self, net: int) -> Mask:
        if not 0 <= net < self._num_nets:
            raise KeyError(net)
        i = 2 * net
        return (self._values[i], self._values[i + 1])

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._num_nets))

    def __len__(self) -> int:
        return self._num_nets


class CompiledNetlist:
    """Code-generated evaluator for one netlist, plus the cone/topology
    indexes the compiled fault simulator needs.  Build once (via
    :func:`get_compiled`), reuse for every simulation over the netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.num_nets = netlist.num_nets
        topo = netlist.topological_order()
        level = netlist.levels(topo)
        self.order: List[Gate] = sorted(topo, key=lambda g: level[g.output])
        self.dffs: List[Gate] = netlist.dffs()
        self.pis: List[int] = list(netlist.pis)
        self.pi_set: Set[int] = set(netlist.pis)
        # Position in the *depth-first* topological order (not the levelized
        # one): DFS visits each output cone contiguously, so faults sorted by
        # this rank share fanout cones and block unions stay small.  PIs sort
        # before all gates.
        self.site_rank: Dict[int, int] = {
            g.output: i for i, g in enumerate(topo)
        }
        self._chunks = _codegen_chunks(self.order, netlist.name,
                                       num_nets=self.num_nets)
        self._adjacency: Optional[Dict[int, List[int]]] = None
        self._fingerprint = self._current_fingerprint()

    def _current_fingerprint(self) -> Tuple[int, int, int, int]:
        nl = self.netlist
        return (nl.num_nets, len(nl.gates), len(nl.pis), len(nl.pos))

    def stale(self) -> bool:
        """True when the netlist grew after compilation (append-only
        mutation is the only kind this codebase performs)."""
        return self._current_fingerprint() != self._fingerprint

    # -- good-machine evaluation -------------------------------------------

    def fresh_values(self, full: int) -> List[int]:
        """A flat value list with the constant nets pre-set."""
        values = [0] * (2 * self.num_nets)
        values[1] = full  # const0: zeros mask
        values[2] = full  # const1: ones mask
        return values

    def eval_into(self, values: List[int], full: int) -> None:
        """Evaluate all combinational gates in place (sources pre-filled)."""
        for chunk in self._chunks:
            chunk(values, full)

    # -- fanout cones -------------------------------------------------------

    def adjacency(self) -> Dict[int, List[int]]:
        if self._adjacency is None:
            self._adjacency = self.netlist.fanout_adjacency(through_dffs=True)
        return self._adjacency

    def cone_of(self, sites) -> Set[int]:
        """Union sequential fanout cone of ``sites`` (multi-source BFS)."""
        adj = self.adjacency()
        seen: Set[int] = set(sites)
        stack = list(seen)
        while stack:
            net = stack.pop()
            for down in adj.get(net, ()):
                if down not in seen:
                    seen.add(down)
                    stack.append(down)
        return seen


_CACHE: "WeakKeyDictionary[Netlist, CompiledNetlist]" = WeakKeyDictionary()


def get_compiled(netlist: Netlist) -> CompiledNetlist:
    """The cached compiled form of ``netlist`` (rebuilt when it grew)."""
    cached = _CACHE.get(netlist)
    if cached is None or cached.stale():
        cached = CompiledNetlist(netlist)
        _CACHE[netlist] = cached
    return cached


# -- cone-partitioned fault simulation ---------------------------------------

# Specialized opcodes: the two-input forms dominate synthesized netlists, so
# they get their own branches; n-ary forms fold over a slot tuple.
(_OP_BUF, _OP_NOT, _OP_AND2, _OP_NAND2, _OP_OR2, _OP_NOR2, _OP_XOR2,
 _OP_XNOR2, _OP_ANDN, _OP_NANDN, _OP_ORN, _OP_NORN, _OP_XORN,
 _OP_XNORN) = range(14)

_OP2 = {
    GateType.AND: _OP_AND2, GateType.NAND: _OP_NAND2,
    GateType.OR: _OP_OR2, GateType.NOR: _OP_NOR2,
    GateType.XOR: _OP_XOR2, GateType.XNOR: _OP_XNOR2,
}
_OPN = {
    GateType.AND: _OP_ANDN, GateType.NAND: _OP_NANDN,
    GateType.OR: _OP_ORN, GateType.NOR: _OP_NORN,
    GateType.XOR: _OP_XORN, GateType.XNOR: _OP_XNORN,
}
# Degenerate single-input forms (masks are bounded by ``full`` inside a
# block, so the identity-element fold reduces to a buffer or inverter).
_NONINVERTING = (GateType.AND, GateType.OR, GateType.XOR, GateType.BUF)


class _ConeBlock:
    """One fault block: a lane-parallel machine over the union fanout cone.

    Lane 0 replicates the good machine (fills broadcast the shared good
    values), lanes 1..k carry one fault each.  Slots are dense indices into
    the block-local ``lo``/``lz`` mask lists — only nets the cone actually
    touches get one.
    """

    __slots__ = ("faults", "full", "all_lanes", "prog", "fill_bound",
                 "fill_pi", "dff_edges", "obs", "state", "lo", "lz",
                 "detected_mask", "alive")

    def __init__(self, cn: CompiledNetlist, faults: Sequence[Fault],
                 observe_points: Sequence[int],
                 initial_state: Optional[Mapping[int, int]]):
        self.faults = list(faults)
        width = len(self.faults) + 1
        self.full = (1 << width) - 1
        self.all_lanes = self.full & ~1
        self.detected_mask = 0
        self.alive = True

        force1: Dict[int, int] = {}
        force0: Dict[int, int] = {}
        for lane, fault in enumerate(self.faults, start=1):
            if fault.value == 1:
                force1[fault.net] = force1.get(fault.net, 0) | (1 << lane)
            else:
                force0[fault.net] = force0.get(fault.net, 0) | (1 << lane)

        cone = cn.cone_of({f.net for f in self.faults})
        cone_gates = [g for g in cn.order if g.output in cone]
        cone_dffs = [d for d in cn.dffs if d.output in cone]

        # Slot allocation happens before any fill/program construction so
        # every observed or state-fed net in the cone is guaranteed a slot
        # (in particular flip-flop Q nets that are primary outputs).
        slot: Dict[int, int] = {}

        def sid(net: int) -> int:
            s = slot.get(net)
            if s is None:
                s = slot[net] = len(slot)
            return s

        for gate in cone_gates:
            for inp in gate.inputs:
                sid(inp)
            sid(gate.output)
        for dff in cone_dffs:
            sid(dff.output)
            sid(dff.inputs[0])
        self.obs: List[int] = [sid(p) for p in observe_points if p in cone]

        computed = {g.output for g in cone_gates}
        cone_qs = {d.output for d in cone_dffs}
        # Sources: cone PIs take the vector value (with injection); cone
        # flip-flops take block state (with injection); everything else —
        # boundary nets, constants, out-of-cone state — broadcasts the
        # shared good-machine value across all lanes.
        self.fill_pi: List[Tuple[int, int, int, int]] = []
        self.fill_bound: List[Tuple[int, int]] = []
        for net, s in slot.items():
            if net in computed or net in cone_qs:
                continue
            if net in cn.pi_set and net in cone:
                self.fill_pi.append(
                    (s, net, force1.get(net, 0), force0.get(net, 0))
                )
            else:
                self.fill_bound.append((s, 2 * net))

        self.dff_edges: List[Tuple[int, int, int, int]] = []
        self.state: List[Mask] = []
        for dff in cone_dffs:
            self.dff_edges.append((
                slot[dff.output], slot[dff.inputs[0]],
                force1.get(dff.output, 0), force0.get(dff.output, 0),
            ))
            if initial_state and dff.output in initial_state:
                self.state.append(
                    (self.full, 0) if initial_state[dff.output]
                    else (0, self.full)
                )
            else:
                self.state.append((0, 0))

        prog = []
        for gate in cone_gates:
            ins = gate.inputs
            t = gate.type
            f1 = force1.get(gate.output, 0)
            f0 = force0.get(gate.output, 0)
            out_s = slot[gate.output]
            if t is GateType.BUF or (len(ins) == 1 and t in _NONINVERTING):
                entry = (_OP_BUF, out_s, slot[ins[0]], 0, f1, f0)
            elif t is GateType.NOT or len(ins) == 1:
                entry = (_OP_NOT, out_s, slot[ins[0]], 0, f1, f0)
            elif len(ins) == 2:
                entry = (_OP2[t], out_s, slot[ins[0]], slot[ins[1]], f1, f0)
            else:
                entry = (_OPN[t], out_s,
                         tuple(slot[i] for i in ins), 0, f1, f0)
            prog.append(entry)
        self.prog = prog
        self.lo = [0] * len(slot)
        self.lz = [0] * len(slot)

    def cycle(self, good: List[int], vec: Mapping[int, int]) -> None:
        """Advance the block one clock against the good-machine values."""
        lo, lz, full = self.lo, self.lz, self.full
        for s, vi in self.fill_bound:
            lo[s] = full if good[vi] else 0
            lz[s] = full if good[vi + 1] else 0
        for s, pi, f1, f0 in self.fill_pi:
            bit = vec.get(pi)
            if bit is None:
                o = z = 0
            elif bit:
                o, z = full, 0
            else:
                o, z = 0, full
            if f1:
                o |= f1
                z &= ~f1
            if f0:
                z |= f0
                o &= ~f0
            lo[s] = o
            lz[s] = z
        for i, (qs, _ds, f1, f0) in enumerate(self.dff_edges):
            o, z = self.state[i]
            if f1:
                o |= f1
                z &= ~f1
            if f0:
                z |= f0
                o &= ~f0
            lo[qs] = o
            lz[qs] = z

        for op, out, a, b, f1, f0 in self.prog:
            if op == _OP_AND2:
                o = lo[a] & lo[b]
                z = lz[a] | lz[b]
            elif op == _OP_OR2:
                o = lo[a] | lo[b]
                z = lz[a] & lz[b]
            elif op == _OP_NOT:
                o = lz[a]
                z = lo[a]
            elif op == _OP_BUF:
                o = lo[a]
                z = lz[a]
            elif op == _OP_XOR2 or op == _OP_XNOR2:
                ao, az, bo, bz = lo[a], lz[a], lo[b], lz[b]
                o = (ao & bz) | (az & bo)
                z = (ao & bo) | (az & bz)
                if op == _OP_XNOR2:
                    o, z = z, o
            elif op == _OP_NAND2:
                o = lz[a] | lz[b]
                z = lo[a] & lo[b]
            elif op == _OP_NOR2:
                o = lz[a] & lz[b]
                z = lo[a] | lo[b]
            elif op == _OP_ANDN or op == _OP_NANDN:
                o, z = full, 0
                for s in a:
                    o &= lo[s]
                    z |= lz[s]
                if op == _OP_NANDN:
                    o, z = z, o
            elif op == _OP_ORN or op == _OP_NORN:
                o, z = 0, full
                for s in a:
                    o |= lo[s]
                    z &= lz[s]
                if op == _OP_NORN:
                    o, z = z, o
            else:  # _OP_XORN / _OP_XNORN
                o, z = 0, full
                for s in a:
                    so, sz = lo[s], lz[s]
                    o, z = (o & sz) | (z & so), (o & so) | (z & sz)
                if op == _OP_XNORN:
                    o, z = z, o
            if f1:
                o |= f1
                z &= ~f1
            if f0:
                z |= f0
                o &= ~f0
            lo[out] = o
            lz[out] = z

        det = self.detected_mask
        for s in self.obs:
            o, z = lo[s], lz[s]
            if o & 1:  # good machine observes 1
                det |= z & ~1
            elif z & 1:  # good machine observes 0
                det |= o & ~1
        self.detected_mask = det
        self.state = [(lo[ds], lz[ds]) for _qs, ds, _f1, _f0 in self.dff_edges]
        if det & self.all_lanes == self.all_lanes:
            self.alive = False  # every lane detected: early exit

    def detected(self) -> Set[Fault]:
        out: Set[Fault] = set()
        mask = self.detected_mask
        for lane, fault in enumerate(self.faults, start=1):
            if mask & (1 << lane):
                out.add(fault)
        return out


def site_rank_map(netlist: Netlist) -> Dict[int, int]:
    """DFS-topological rank of every gate output net.

    The same ordering :class:`CompiledNetlist` caches as ``site_rank``,
    computable without triggering code generation — fault-parallel shard
    packing uses it under either simulation backend.  Nets without a rank
    (primary inputs) sort first in :func:`cone_pack_order`.
    """
    return {g.output: i for i, g in enumerate(netlist.topological_order())}


def cone_pack_order(faults: Sequence[Fault],
                    rank: Mapping[int, int]) -> List[Fault]:
    """Faults sorted so neighbours share fanout cones.

    DFS visits each output cone contiguously, so consecutive faults in
    this order have heavily overlapping cones: lane blocks stay cheap and
    fault-parallel shards inherit the same locality.
    """
    return sorted(faults, key=lambda f: (rank.get(f.net, -1), f.net,
                                         f.value))


def compiled_detected_faults(
    cn: CompiledNetlist,
    vectors: Sequence[Mapping[int, int]],
    faults: Sequence[Fault],
    initial_state: Optional[Mapping[int, int]],
    extra_observables: Optional[Sequence[int]],
    lanes: int,
) -> Tuple[Set[Fault], int]:
    """Cone-partitioned detection; returns ``(detected, num_blocks)``.

    Results are independent of the partitioning (lanes never interact), so
    this matches the interpreted full-netlist simulation bit for bit.
    """
    if not faults:
        return set(), 0
    observe_points = list(cn.netlist.pos)
    if extra_observables:
        observe_points.extend(extra_observables)

    # Sorting by site position clusters faults with overlapping cones, which
    # keeps each block's union cone (and hence its work) small.
    ordered = cone_pack_order(faults, cn.site_rank)
    block_size = lanes - 1
    blocks = [
        _ConeBlock(cn, ordered[i:i + block_size], observe_points,
                   initial_state)
        for i in range(0, len(ordered), block_size)
    ]

    good_state: Dict[int, Mask] = {d.output: (0, 0) for d in cn.dffs}
    if initial_state:
        for q, bit in initial_state.items():
            good_state[q] = (1, 0) if bit else (0, 1)

    values = cn.fresh_values(1)
    pis, dffs = cn.pis, cn.dffs
    for vec in vectors:
        live = [b for b in blocks if b.alive]
        if not live:
            break
        for pi in pis:
            bit = vec.get(pi)
            i = 2 * pi
            if bit is None:
                values[i] = values[i + 1] = 0
            elif bit:
                values[i] = 1
                values[i + 1] = 0
            else:
                values[i] = 0
                values[i + 1] = 1
        for dff in dffs:
            o, z = good_state.get(dff.output, (0, 0))
            i = 2 * dff.output
            values[i] = o
            values[i + 1] = z
        cn.eval_into(values, 1)
        for block in live:
            block.cycle(values, vec)
        for dff in dffs:
            i = 2 * dff.inputs[0]
            good_state[dff.output] = (values[i], values[i + 1])

    detected: Set[Fault] = set()
    for block in blocks:
        detected |= block.detected()
    return detected, len(blocks)
