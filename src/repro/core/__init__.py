"""FACTOR: FunctionAl ConsTraint extractOR — the paper's contribution.

- :mod:`repro.core.extractor` — ``find_source_logic`` / ``find_prop_paths``
  (paper Fig. 3) as a statement-granular slicing worklist, in both the
  conventional single-level mode and the compositional hierarchical mode,
- :mod:`repro.core.composer` — constraint reuse cache across MUTs,
- :mod:`repro.core.transform` — builds the transformed module M + S'
  (paper Fig. 1) as emitted Verilog and as a synthesized netlist,
- :mod:`repro.core.piers` — PIER identification,
- :mod:`repro.core.testability` — empty-chain traces and hard-coded
  constraint warnings (paper Section 4.2),
- :mod:`repro.core.factor` — the top-level ``Factor`` facade.
"""

from repro.core.extractor import (
    ExtractionMode,
    ExtractionResult,
    FunctionalConstraintExtractor,
    ModuleMarks,
    MutSpec,
)
from repro.core.composer import ConstraintComposer
from repro.core.transform import TransformedModule, build_transformed_module
from repro.core.piers import find_piers, PierInfo
from repro.core.testability import (
    TestabilityReport,
    TraceHop,
    analyze_testability,
    trace_aborted_path,
    Warning_,
)
from repro.core.factor import Factor, FactorResult

__all__ = [
    "ExtractionMode",
    "ExtractionResult",
    "FunctionalConstraintExtractor",
    "ModuleMarks",
    "MutSpec",
    "ConstraintComposer",
    "TransformedModule",
    "build_transformed_module",
    "find_piers",
    "PierInfo",
    "TestabilityReport",
    "TraceHop",
    "analyze_testability",
    "trace_aborted_path",
    "Warning_",
    "Factor",
    "FactorResult",
]
