"""Functional constraint extraction — the paper's Fig. 3 subroutines.

Given a module under test (MUT) embedded at an instance path, the extractor
computes, for every level of the hierarchy, the subset of statements that is
visible to the MUT:

- ``find_source_logic`` (``J`` tasks here) walks *backwards* from each MUT
  input through use-def chains, enclosing conditional/loop/concurrency
  constructs and instance boundaries, up to the chip-level primary inputs;
- ``find_prop_paths`` (``P`` tasks) walks *forwards* from each MUT output
  through def-use chains towards the chip-level primary outputs, justifying
  side inputs and enclosing conditions along the way.

Each task records the statements it marks and the tasks it spawns; the
extraction result for a MUT is the union over the dependency closure of its
seed tasks.  Because a task's closure is independent of which MUT requested
it, completed tasks are *reusable* across MUTs — this is the paper's
compositional constraint reuse, and it is what makes Table 3's extraction
times lower than Table 2's.

Two modes reproduce the paper's comparison:

- ``ExtractionMode.CONVENTIONAL`` (Tables 2/5): statement slicing at every
  level of the MUT's ancestor chain, but sibling submodule instances are
  opaque — if any port of a sibling is relevant, the entire submodule
  subtree is kept and all of its inputs justified.  Nothing is shared
  between MUT extractions.
- ``ExtractionMode.COMPOSE`` (Tables 3/6): the extractor recurses *into*
  sibling submodules port-wise, so only the relevant cone of each submodule
  survives, and the task cache is shared across MUTs.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.hierarchy.chains import ChainDB, Site
from repro.hierarchy.connectivity import (
    instance_port_map,
    signal_instance_sinks,
    signal_instance_sources,
)
from repro.hierarchy.design import Design
from repro.obs import counter, span
from repro.verilog import ast

TaskKey = Tuple[str, str, str]  # (kind, module, signal-or-inst)


class ExtractionMode(enum.Enum):
    CONVENTIONAL = "conventional"  # no composition (single-level siblings)
    COMPOSE = "compose"            # hierarchical composition (FACTOR)


@dataclass(frozen=True)
class MutSpec:
    """The module under test: module name and instance path from the top.

    ``path`` uses the elaborator prefix convention, e.g.
    ``"u_core.u_dp.u_alu."``; the last component names the MUT instance in
    its parent module.
    """

    module: str
    path: str

    @property
    def inst_chain(self) -> List[str]:
        return [part for part in self.path.split(".") if part]

    @property
    def inst_name(self) -> str:
        return self.inst_chain[-1]


@dataclass
class ModuleMarks:
    """Kept items of one module after extraction."""

    module: str
    whole: bool = False
    assigns: Set[int] = field(default_factory=set)       # index into .assigns
    gates: Set[int] = field(default_factory=set)         # index into .gates
    proc_assigns: Set[int] = field(default_factory=set)  # proc-assign index
    always_blocks: Set[int] = field(default_factory=set)
    instances: Set[str] = field(default_factory=set)
    inst_ports: Dict[str, Set[str]] = field(default_factory=dict)
    needed_inputs: Set[str] = field(default_factory=set)
    needed_outputs: Set[str] = field(default_factory=set)

    def is_empty(self) -> bool:
        return not (
            self.whole or self.assigns or self.gates or self.proc_assigns
            or self.instances
        )

    def statement_count(self) -> int:
        return (
            len(self.assigns) + len(self.gates) + len(self.proc_assigns)
            + len(self.instances)
        )


@dataclass(frozen=True)
class EmptyChainTrace:
    """Testability diagnostic: a signal with an empty ud/du chain."""

    kind: str  # "no_driver" | "no_propagation"
    module: str
    signal: str
    trail: Tuple[Tuple[str, str], ...]  # (module, signal) back to the MUT


@dataclass
class ExtractionResult:
    mut: MutSpec
    mode: ExtractionMode
    marks: Dict[str, ModuleMarks]
    chip_inputs: Set[str]
    chip_outputs: Set[str]
    empty_chains: List[EmptyChainTrace]
    constant_defs: Dict[Tuple[str, str], List[int]]  # (module, sig) -> lines
    extraction_seconds: float
    tasks_run: int
    tasks_reused: int

    def total_statements(self) -> int:
        return sum(m.statement_count() for m in self.marks.values())

    def kept_modules(self) -> List[str]:
        return sorted(name for name, m in self.marks.items()
                      if not m.is_empty())


# Entry tags used in per-task recordings.
_STMT, _WHOLE, _INST, _NEED_IN, _NEED_OUT = "stmt", "whole", "inst", "ni", "no"
_CHIP_IN, _CHIP_OUT, _EMPTY, _CONST = "ci", "co", "empty", "const"


class FunctionalConstraintExtractor:
    """Runs the J/P worklist for one or more MUTs over one design."""

    def __init__(self, design: Design,
                 mode: ExtractionMode = ExtractionMode.COMPOSE):
        self.design = design
        self.mode = mode
        self.chaindb: ChainDB = design.chaindb()
        self._item_index: Dict[str, Dict[int, Tuple[str, int]]] = {}
        self._modules = {name: design.module(name)
                         for name in design.module_names()}
        # Persistent task store (composition reuse across MUTs).
        self._task_entries: Dict[TaskKey, List[Tuple]] = {}
        self._task_deps: Dict[TaskKey, List[TaskKey]] = {}

    # -- public ---------------------------------------------------------------

    def extract(self, mut: MutSpec) -> ExtractionResult:
        with span("extract", mut=mut.path, mode=self.mode.value) as sp:
            result = self._extract(mut, sp)
            result.extraction_seconds = sp.cpu_seconds
        return result

    def _extract(self, mut: MutSpec, sp) -> ExtractionResult:
        if self.mode is ExtractionMode.CONVENTIONAL:
            # Conventional extraction shares nothing between MUT runs.
            self._task_entries = {}
            self._task_deps = {}

        seed_entries, seed_tasks = self._seed(mut)

        tasks_run = 0
        tasks_reused = 0
        worklist: deque = deque(seed_tasks)
        while worklist:
            key = worklist.popleft()
            if key in self._task_entries:
                tasks_reused += 1
                continue
            deps = self._run_task(key)
            tasks_run += 1
            for dep in deps:
                if dep not in self._task_entries:
                    worklist.append(dep)

        # Dependency closure of the seed tasks.
        closure: Set[TaskKey] = set()
        stack = list(seed_tasks)
        while stack:
            key = stack.pop()
            if key in closure:
                continue
            closure.add(key)
            stack.extend(self._task_deps.get(key, ()))

        entries: List[Tuple] = list(seed_entries)
        for key in closure:
            entries.extend(self._task_entries.get(key, ()))

        result = self._build_result(mut, entries, tasks_run, tasks_reused)
        sp.set("tasks_run", tasks_run)
        sp.set("tasks_reused", tasks_reused)
        sp.set("statements_kept", result.total_statements())
        counter("extract.runs").inc()
        counter("extract.tasks_run").inc(tasks_run)
        counter("extract.tasks_reused").inc(tasks_reused)
        counter("extract.statements_kept").inc(result.total_statements())
        return result

    # -- seeding -----------------------------------------------------------------

    def _seed(self, mut: MutSpec) -> Tuple[List[Tuple], List[TaskKey]]:
        design = self.design
        parent_module = design.top
        for inst_name in mut.inst_chain[:-1]:
            inst = design.instance_in(parent_module, inst_name)
            parent_module = inst.module_name
        mut_inst = design.instance_in(parent_module, mut.inst_name)
        mut_mod = self._modules[mut.module]

        entries: List[Tuple] = []
        for name in design.modules_under(mut.module):
            entries.append((_WHOLE, name))
        entries.append((_INST, parent_module, mut.inst_name, None))
        for pname in mut_mod.port_names():
            entries.append((_INST, parent_module, mut.inst_name, pname))
        for port in mut_mod.inputs():
            entries.append((_NEED_IN, mut.module, port.name))
        for port in mut_mod.outputs():
            entries.append((_NEED_OUT, mut.module, port.name))

        tasks: List[TaskKey] = []
        pmap = instance_port_map(mut_mod, mut_inst)
        for port in mut_mod.ports:
            expr = pmap.get(port.name)
            if expr is None:
                continue
            if port.direction == "input":
                for sig in sorted(expr.signals()):
                    tasks.append(("J", parent_module, sig))
            elif port.direction == "output":
                for sig in sorted(ast.lhs_base_names(expr)):
                    tasks.append(("P", parent_module, sig))
        return entries, tasks

    # -- task execution ------------------------------------------------------------

    def _run_task(self, key: TaskKey) -> List[TaskKey]:
        kind, module_name, subject = key
        entries: List[Tuple] = []
        deps: List[TaskKey] = []
        module = self._modules[module_name]

        if kind == "W":
            self._task_whole_child(module, subject, entries, deps)
        elif kind == "J":
            self._task_justify(module, subject, entries, deps)
        elif kind == "P":
            self._task_propagate(module, subject, entries, deps)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown task kind {kind!r}")

        self._task_entries[key] = entries
        self._task_deps[key] = deps
        return deps

    def _task_justify(self, module: ast.Module, signal: str,
                      entries: List[Tuple], deps: List[TaskKey]) -> None:
        design = self.design
        module_name = module.name
        if signal in {p.name for p in module.params}:
            return  # compile-time constant
        chains = self.chaindb.chains(module_name)
        defs = chains.ud_chain(signal)
        if not defs:
            entries.append((_EMPTY, "no_driver", module_name, signal))
            return
        for site in defs:
            if site.kind == "input_port":
                entries.append((_NEED_IN, module_name, signal))
                if module_name == design.top:
                    entries.append((_CHIP_IN, signal))
                    continue
                for parent_name, inst_name in design.parents(module_name):
                    entries.append((_INST, parent_name, inst_name, signal))
                    inst = design.instance_in(parent_name, inst_name)
                    expr = instance_port_map(module, inst).get(signal)
                    if expr is None:
                        continue
                    for sig in sorted(expr.signals()):
                        deps.append(("J", parent_name, sig))
                continue
            if site.kind == "inout_port":
                entries.append((_NEED_IN, module_name, signal))
                continue
            if site.kind == "instance":
                for src_inst, port in signal_instance_sources(
                    module, signal, self._modules
                ):
                    child_name = src_inst.module_name
                    entries.append(
                        (_INST, module_name, src_inst.inst_name, port)
                    )
                    entries.append((_NEED_OUT, child_name, port))
                    if self.mode is ExtractionMode.CONVENTIONAL:
                        deps.append(("W", module_name, src_inst.inst_name))
                    else:
                        deps.append(("J", child_name, port))
                continue
            # Plain statement site.
            self._record_stmt(site, module, entries)
            for sig in sorted(site.rhs_signals()):
                deps.append(("J", module_name, sig))
            for sig in sorted(site.enclosing_control_signals()):
                deps.append(("J", module_name, sig))
            self._record_constant_def(site, module_name, signal, entries)

    def _task_propagate(self, module: ast.Module, signal: str,
                        entries: List[Tuple], deps: List[TaskKey]) -> None:
        design = self.design
        module_name = module.name
        chains = self.chaindb.chains(module_name)
        uses = chains.du_chain(signal)
        if not uses:
            entries.append((_EMPTY, "no_propagation", module_name, signal))
            return
        for site in uses:
            if site.kind == "output_port":
                entries.append((_NEED_OUT, module_name, signal))
                if module_name == design.top:
                    entries.append((_CHIP_OUT, signal))
                    continue
                for parent_name, inst_name in design.parents(module_name):
                    entries.append((_INST, parent_name, inst_name, signal))
                    inst = design.instance_in(parent_name, inst_name)
                    expr = instance_port_map(module, inst).get(signal)
                    if expr is None:
                        continue
                    for sig in sorted(ast.lhs_base_names(expr)):
                        deps.append(("P", parent_name, sig))
                continue
            if site.kind in ("input_port", "inout_port"):
                continue
            if site.kind == "instance":
                for sink_inst, port in signal_instance_sinks(
                    module, signal, self._modules
                ):
                    child_name = sink_inst.module_name
                    entries.append(
                        (_INST, module_name, sink_inst.inst_name, port)
                    )
                    entries.append((_NEED_IN, child_name, port))
                    if self.mode is ExtractionMode.CONVENTIONAL:
                        # The whole sibling is kept; the effect may leave
                        # through any of its outputs, so propagation resumes
                        # at the parent on every connected output net.
                        deps.append(("W", module_name, sink_inst.inst_name))
                        child_mod = self._modules[child_name]
                        pmap = instance_port_map(child_mod, sink_inst)
                        for out_port in child_mod.outputs():
                            expr = pmap.get(out_port.name)
                            if expr is None:
                                continue
                            entries.append((_NEED_OUT, child_name,
                                            out_port.name))
                            for sig in sorted(ast.lhs_base_names(expr)):
                                deps.append(("P", module_name, sig))
                    else:
                        deps.append(("P", child_name, port))
                continue
            if isinstance(site.node, ast.Always):
                # Clock/reset consumed by the concurrency construct itself.
                continue
            self._record_stmt(site, module, entries)
            for sig in sorted(site.rhs_signals() - {signal}):
                deps.append(("J", module_name, sig))
            for sig in sorted(site.enclosing_control_signals()):
                deps.append(("J", module_name, sig))
            for sig in sorted(site.defined_signals()):
                deps.append(("P", module_name, sig))

    def _task_whole_child(self, parent: ast.Module, inst_name: str,
                          entries: List[Tuple], deps: List[TaskKey]) -> None:
        """CONVENTIONAL mode: keep a sibling submodule wholesale; all of its
        inputs must then be justified at the parent level."""
        design = self.design
        inst = design.instance_in(parent.name, inst_name)
        child_name = inst.module_name
        child_mod = self._modules[child_name]
        for name in design.modules_under(child_name):
            entries.append((_WHOLE, name))
        entries.append((_INST, parent.name, inst_name, None))
        for pname in child_mod.port_names():
            entries.append((_INST, parent.name, inst_name, pname))
        for port in child_mod.inputs():
            entries.append((_NEED_IN, child_name, port.name))
        pmap = instance_port_map(child_mod, inst)
        for port in child_mod.inputs():
            expr = pmap.get(port.name)
            if expr is None:
                continue
            for sig in sorted(expr.signals()):
                deps.append(("J", parent.name, sig))

    # -- recording helpers ------------------------------------------------------------

    def _record_stmt(self, site: Site, module: ast.Module,
                     entries: List[Tuple]) -> None:
        index = self._index_for(module)
        kind, idx = index[id(site.node)]
        if kind == "proc":
            always_idx = self._always_index(module, site.always)
            entries.append((_STMT, module.name, kind, idx, always_idx))
        else:
            entries.append((_STMT, module.name, kind, idx, -1))

    def _record_constant_def(self, site: Site, module_name: str, signal: str,
                             entries: List[Tuple]) -> None:
        node = site.node
        rhs = None
        if isinstance(node, (ast.ContAssign, ast.AssignStmt)):
            rhs = node.rhs
        if rhs is not None and isinstance(rhs, ast.Number):
            entries.append((_CONST, module_name, signal, site.line))

    # -- result assembly ------------------------------------------------------------

    def _build_result(self, mut: MutSpec, entries: Sequence[Tuple],
                      tasks_run: int, tasks_reused: int) -> ExtractionResult:
        marks: Dict[str, ModuleMarks] = {}
        chip_inputs: Set[str] = set()
        chip_outputs: Set[str] = set()
        empty_chains: List[EmptyChainTrace] = []
        empty_seen: Set[Tuple[str, str, str]] = set()
        constant_defs: Dict[Tuple[str, str], List[int]] = {}

        def get(module_name: str) -> ModuleMarks:
            if module_name not in marks:
                marks[module_name] = ModuleMarks(module=module_name)
            return marks[module_name]

        for entry in entries:
            tag = entry[0]
            if tag == _STMT:
                _, module_name, kind, idx, always_idx = entry
                mm = get(module_name)
                if kind == "assign":
                    mm.assigns.add(idx)
                elif kind == "gate":
                    mm.gates.add(idx)
                else:
                    mm.proc_assigns.add(idx)
                    mm.always_blocks.add(always_idx)
            elif tag == _WHOLE:
                get(entry[1]).whole = True
            elif tag == _INST:
                _, module_name, inst_name, port = entry
                mm = get(module_name)
                mm.instances.add(inst_name)
                ports = mm.inst_ports.setdefault(inst_name, set())
                if port is not None:
                    ports.add(port)
            elif tag == _NEED_IN:
                get(entry[1]).needed_inputs.add(entry[2])
            elif tag == _NEED_OUT:
                get(entry[1]).needed_outputs.add(entry[2])
            elif tag == _CHIP_IN:
                chip_inputs.add(entry[1])
            elif tag == _CHIP_OUT:
                chip_outputs.add(entry[1])
            elif tag == _EMPTY:
                _, kind, module_name, signal = entry
                dedup = (kind, module_name, signal)
                if dedup not in empty_seen:
                    empty_seen.add(dedup)
                    empty_chains.append(EmptyChainTrace(
                        kind=kind, module=module_name, signal=signal,
                        trail=(),
                    ))
            elif tag == _CONST:
                _, module_name, signal, line = entry
                constant_defs.setdefault((module_name, signal), []).append(
                    line
                )
        return ExtractionResult(
            mut=mut,
            mode=self.mode,
            marks=marks,
            chip_inputs=chip_inputs,
            chip_outputs=chip_outputs,
            empty_chains=empty_chains,
            constant_defs=constant_defs,
            extraction_seconds=0.0,
            tasks_run=tasks_run,
            tasks_reused=tasks_reused,
        )

    # -- indexing -------------------------------------------------------------------

    def _index_for(self, module: ast.Module) -> Dict[int, Tuple[str, int]]:
        if module.name not in self._item_index:
            table: Dict[int, Tuple[str, int]] = {}
            for i, assign in enumerate(module.assigns):
                table[id(assign)] = ("assign", i)
            for i, gate in enumerate(module.gates):
                table[id(gate)] = ("gate", i)
            counter = 0
            for always in module.always_blocks:
                for stmt in _proc_assign_order(always):
                    table[id(stmt)] = ("proc", counter)
                    counter += 1
            self._item_index[module.name] = table
        return self._item_index[module.name]

    def _always_index(self, module: ast.Module, always) -> int:
        for i, blk in enumerate(module.always_blocks):
            if blk is always:
                return i
        raise AssertionError("always block not found in module")

    def proc_assigns_of(self, module: ast.Module,
                        indices: Set[int]) -> Set[int]:
        """AST node ids of the proc-assign marks (used by the emitter)."""
        index = self._index_for(module)
        return {
            node_id for node_id, (kind, idx) in index.items()
            if kind == "proc" and idx in indices
        }


def _proc_assign_order(always: ast.Always) -> List[ast.AssignStmt]:
    """Procedural assignments of an always block in deterministic order."""
    out: List[ast.AssignStmt] = []

    def walk(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                walk(inner)
        elif isinstance(stmt, ast.AssignStmt):
            out.append(stmt)
        elif isinstance(stmt, ast.If):
            walk(stmt.then_stmt)
            if stmt.else_stmt is not None:
                walk(stmt.else_stmt)
        elif isinstance(stmt, ast.Case):
            for item in stmt.items:
                walk(item.stmt)
        elif isinstance(stmt, ast.For):
            walk(stmt.body)

    walk(always.body)
    return out
