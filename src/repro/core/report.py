"""Plain-text table rendering for the benchmark harnesses.

Each benchmark prints rows in the same layout as the corresponding table of
the paper; this module holds the shared formatting code.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(title: str, rows: Sequence[Dict[str, object]],
                 columns: Sequence[str] = ()) -> str:
    """Render rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n  (no rows)\n"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(str(c)) for c in cols}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for col in cols:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        rendered.append(cells)

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[col])
                         for c, col in zip(cells, cols))

    out = [title, line([str(c) for c in cols]),
           line(["-" * widths[c] for c in cols])]
    out.extend(line(cells) for cells in rendered)
    return "\n".join(out) + "\n"
