"""Build the transformed module M + S' (paper Fig. 1).

The extraction marks are turned back into a *pruned* Verilog design: every
module keeps only the marked statements (with their enclosing if/case
skeletons), only the needed ports, only the referenced nets and only the
marked child instances.  The pruned design is then emitted as synthesizable
Verilog — FACTOR "retains the original directory structure instead of
creating unique instances" — and synthesized to a flat gate netlist in which
the MUT's faults can be targeted by hierarchical region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.extractor import (
    ExtractionResult,
    FunctionalConstraintExtractor,
    ModuleMarks,
    MutSpec,
    _proc_assign_order,
)
from repro.hierarchy.design import Design
from repro.obs import counter, span
from repro.synth.elaborate import Elaborator
from repro.synth.netlist import Netlist
from repro.synth.opt import optimize
from repro.verilog import ast
from repro.verilog.writer import write_source


@dataclass
class TransformedModule:
    """The MUT combined with its reduced environment S'."""

    mut: MutSpec
    mode: str
    source: ast.Source
    verilog: str
    netlist: Netlist
    mut_region: str
    num_pis: int
    num_pos: int
    total_gates: int
    mut_gates: int
    surrounding_gates: int
    synthesis_seconds: float
    extraction_seconds: float

    def region_fault_filter(self) -> str:
        return self.mut_region


def build_transformed_module(
    design: Design,
    extraction: ExtractionResult,
    extractor: FunctionalConstraintExtractor,
    do_optimize: bool = True,
) -> TransformedModule:
    """Assemble, emit and synthesize the transformed module."""
    with span("compose", mut=extraction.mut.path) as sp:
        pruned = prune_design(design, extraction, extractor)
        verilog = write_source(pruned)
        kept = extraction.total_statements()
        total_stmts = sum(
            len(design.module(name).assigns)
            + len(design.module(name).gates)
            + len(design.module(name).instances)
            + sum(len(_proc_assign_order(blk))
                  for blk in design.module(name).always_blocks)
            for name in design.module_names()
        )
        sp.set("modules_kept", len(pruned.modules))
        sp.set("statements_kept", kept)
        sp.set("statements_pruned", max(0, total_stmts - kept))
        counter("compose.statements_pruned").inc(max(0, total_stmts - kept))

    with span("synth", mut=extraction.mut.path) as sp:
        pruned_design = Design(pruned, top=design.top)
        netlist = Elaborator(pruned_design).synthesize(
            design.top, name=f"{extraction.mut.module}_transformed"
        )
        if do_optimize:
            netlist = optimize(netlist)
        sp.set("gates", netlist.gate_count())
        synthesis_seconds = sp.cpu_seconds

    region = extraction.mut.path
    regions = getattr(netlist, "regions", {})
    mut_gates = sum(
        1
        for gate in netlist.combinational_gates()
        if regions.get(gate.output, "").startswith(region)
        and gate.type.value != "buf"
    )
    total_gates = netlist.gate_count()
    return TransformedModule(
        mut=extraction.mut,
        mode=extraction.mode.value,
        source=pruned,
        verilog=verilog,
        netlist=netlist,
        mut_region=region,
        num_pis=len(netlist.pis),
        num_pos=len(netlist.pos),
        total_gates=total_gates,
        mut_gates=mut_gates,
        surrounding_gates=total_gates - mut_gates,
        synthesis_seconds=synthesis_seconds,
        extraction_seconds=extraction.extraction_seconds,
    )


def prune_design(design: Design, extraction: ExtractionResult,
                 extractor: FunctionalConstraintExtractor) -> ast.Source:
    """Produce the pruned AST Source for an extraction result."""
    marks = extraction.marks
    pruned_modules: List[ast.Module] = []
    pruned_ports: Dict[str, Set[str]] = {}

    # First pass: decide each module's surviving ports.
    for name, mm in marks.items():
        module = design.module(name)
        if mm.whole:
            pruned_ports[name] = set(module.port_names())
        else:
            keep: Set[str] = set()
            for port in module.ports:
                if port.direction == "input" and port.name in mm.needed_inputs:
                    keep.add(port.name)
                elif (port.direction == "output"
                      and port.name in mm.needed_outputs):
                    keep.add(port.name)
                elif port.direction == "inout" and (
                    port.name in mm.needed_inputs
                    or port.name in mm.needed_outputs
                ):
                    keep.add(port.name)
            pruned_ports[name] = keep

    for name, mm in marks.items():
        module = design.module(name)
        if mm.whole:
            pruned_modules.append(module)
            continue
        if mm.is_empty() and name != design.top:
            continue
        pruned_modules.append(
            _prune_module(module, mm, pruned_ports, extractor)
        )

    return ast.Source(modules=pruned_modules)


def _prune_module(module: ast.Module, mm: ModuleMarks,
                  pruned_ports: Dict[str, Set[str]],
                  extractor: FunctionalConstraintExtractor) -> ast.Module:
    kept_assigns = [module.assigns[i] for i in sorted(mm.assigns)]
    kept_gates = [module.gates[i] for i in sorted(mm.gates)]

    proc_ids = extractor.proc_assigns_of(module, mm.proc_assigns)
    kept_always: List[ast.Always] = []
    for idx in sorted(mm.always_blocks):
        always = module.always_blocks[idx]
        body = _prune_stmt(always.body, proc_ids)
        if body is not None:
            kept_always.append(
                ast.Always(sensitivity=always.sensitivity, body=body,
                           line=always.line)
            )

    kept_instances: List[ast.Instance] = []
    for inst in module.instances:
        if inst.inst_name not in mm.instances:
            continue
        child_keep = pruned_ports.get(inst.module_name, set())
        conns: List[ast.PortConn] = []
        for conn, port_name in _named_connections(inst, module, extractor):
            if port_name in child_keep:
                conns.append(ast.PortConn(name=port_name, expr=conn.expr,
                                          line=conn.line))
        kept_instances.append(
            ast.Instance(
                module_name=inst.module_name,
                inst_name=inst.inst_name,
                connections=conns,
                param_overrides=list(inst.param_overrides),
                line=inst.line,
            )
        )

    # Referenced signal names across all kept items.
    referenced: Set[str] = set()
    for assign in kept_assigns:
        referenced |= assign.defined() | assign.used()
    for gate in kept_gates:
        referenced |= gate.defined() | gate.used()
    for always in kept_always:
        referenced |= always.defined() | always.used()
        referenced |= {item.signal for item in always.sensitivity}
    for inst in kept_instances:
        for conn in inst.connections:
            if conn.expr is not None:
                referenced |= conn.expr.signals()
                try:
                    referenced |= ast.lhs_base_names(conn.expr)
                except TypeError:
                    pass

    port_keep = pruned_ports[module.name]
    ports = [p for p in module.ports if p.name in port_keep]
    port_order = [n for n in module.port_order if n in port_keep]
    nets = [n for n in module.nets
            if n.name in referenced and n.name not in port_keep]
    # A pruned-away port may still be referenced internally (e.g. an output
    # that also feeds local logic): redeclare it as a plain net.
    declared = {n.name for n in nets} | port_keep
    for port in module.ports:
        if port.name in referenced and port.name not in declared:
            nets.append(ast.NetDecl(
                kind="reg" if port.is_reg else "wire",
                name=port.name,
                range=port.range,
                line=port.line,
            ))
            declared.add(port.name)
    # Port range expressions may reference parameters: keep all params.
    params = list(module.params)

    return ast.Module(
        name=module.name,
        port_order=port_order,
        ports=ports,
        params=params,
        nets=nets,
        assigns=kept_assigns,
        always_blocks=kept_always,
        instances=kept_instances,
        gates=kept_gates,
        line=module.line,
    )


def _named_connections(inst: ast.Instance, parent: ast.Module,
                       extractor: FunctionalConstraintExtractor):
    """Yield ``(conn, port_name)`` pairs, resolving positional connections."""
    child = extractor.design.module(inst.module_name)
    positional = all(conn.name is None for conn in inst.connections)
    if positional and inst.connections:
        for idx, conn in enumerate(inst.connections):
            if idx < len(child.port_order):
                yield conn, child.port_order[idx]
    else:
        for conn in inst.connections:
            if conn.name is not None:
                yield conn, conn.name


def _prune_stmt(stmt: ast.Stmt, keep_ids: Set[int]) -> Optional[ast.Stmt]:
    """Keep only assignments in ``keep_ids``, preserving control skeletons."""
    if isinstance(stmt, ast.AssignStmt):
        return stmt if id(stmt) in keep_ids else None
    if isinstance(stmt, ast.Block):
        kept = [s for s in (_prune_stmt(x, keep_ids) for x in stmt.stmts)
                if s is not None]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return ast.Block(stmts=kept, line=stmt.line)
    if isinstance(stmt, ast.If):
        then_kept = _prune_stmt(stmt.then_stmt, keep_ids)
        else_kept = (_prune_stmt(stmt.else_stmt, keep_ids)
                     if stmt.else_stmt is not None else None)
        if then_kept is None and else_kept is None:
            return None
        return ast.If(
            cond=stmt.cond,
            then_stmt=then_kept if then_kept is not None
            else ast.Block(stmts=[], line=stmt.line),
            else_stmt=else_kept,
            line=stmt.line,
        )
    if isinstance(stmt, ast.Case):
        items: List[ast.CaseItem] = []
        for item in stmt.items:
            inner = _prune_stmt(item.stmt, keep_ids)
            if inner is not None:
                items.append(ast.CaseItem(labels=item.labels, stmt=inner,
                                          line=item.line))
        if not items:
            return None
        return ast.Case(selector=stmt.selector, items=items, kind=stmt.kind,
                        line=stmt.line)
    if isinstance(stmt, ast.For):
        body = _prune_stmt(stmt.body, keep_ids)
        if body is None:
            return None
        return ast.For(init=stmt.init, cond=stmt.cond, step=stmt.step,
                       body=body, line=stmt.line)
    raise TypeError(f"cannot prune statement {stmt!r}")
