"""The ``Factor`` facade: the public API of the reproduction.

Typical use::

    from repro import Factor
    from repro.designs import arm2_source

    factor = Factor.from_verilog(arm2_source(), top="arm")
    result = factor.analyze("arm_alu", path="u_core.u_dp.u_alu.")
    print(result.testability.summary())
    result.write_constraints("constraints/")
    report = factor.generate_tests(result)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.atpg.engine import AtpgEngine, AtpgOptions, AtpgReport
from repro.core.composer import ConstraintComposer
from repro.core.extractor import ExtractionMode, ExtractionResult, MutSpec
from repro.core.piers import PierInfo, find_piers, pier_q_nets
from repro.core.testability import TestabilityReport, analyze_testability
from repro.core.transform import TransformedModule
from repro.hierarchy.design import Design
from repro.obs import RunRecord, counter, get_logger, span
from repro.store import (
    MISS,
    atpg_options_fingerprint,
    get_store,
    netlist_fingerprint,
    parse_verilog_cached,
)
from repro.verilog.writer import write_module

_log = get_logger("factor")


@dataclass
class FactorResult:
    """Everything FACTOR produces for one module under test."""

    mut: MutSpec
    extraction: ExtractionResult
    transformed: TransformedModule
    testability: TestabilityReport
    piers: List[PierInfo] = field(default_factory=list)
    pier_nets: Set[int] = field(default_factory=set)
    record: Optional[RunRecord] = field(default=None, repr=False)

    def write_constraints(self, directory: str) -> List[str]:
        """Write the pruned constraint netlists, one file per module.

        Mirrors the paper's tool, which "retains the original directory
        structure" — each module goes to ``<dir>/<module>.v``.
        """
        os.makedirs(directory, exist_ok=True)
        written: List[str] = []
        for module in self.transformed.source.modules:
            path = os.path.join(directory, f"{module.name}.v")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(write_module(module))
            written.append(path)
        return written


class Factor:
    """FunctionAl ConsTraint extractOR over one design."""

    def __init__(self, design: Design,
                 mode: ExtractionMode = ExtractionMode.COMPOSE):
        self.design = design
        self.mode = mode
        self.composer = ConstraintComposer(design, mode)
        self._piers: Optional[List[PierInfo]] = None

    @classmethod
    def from_verilog(cls, source_text: str, top: Optional[str] = None,
                     mode: ExtractionMode = ExtractionMode.COMPOSE
                     ) -> "Factor":
        return cls(Design(parse_verilog_cached(source_text), top=top),
                   mode=mode)

    @classmethod
    def from_files(cls, paths: Sequence[str], top: Optional[str] = None,
                   mode: ExtractionMode = ExtractionMode.COMPOSE,
                   defines: Optional[Dict[str, str]] = None,
                   include_dirs: Sequence[str] = ()) -> "Factor":
        from repro.verilog.preprocess import Preprocessor

        pp = Preprocessor(defines=defines, include_dirs=include_dirs)
        chunks = [pp.process_file(path) for path in paths]
        return cls.from_verilog("\n".join(chunks), top=top, mode=mode)

    # -- analysis ------------------------------------------------------------

    def mut_spec(self, module: str, path: Optional[str] = None) -> MutSpec:
        """Resolve a MUT by module name; infer the instance path if unique."""
        if path is None:
            candidates = self.design.paths_to(module)
            if not candidates:
                raise ValueError(f"module {module!r} not found under top")
            if len(candidates) > 1:
                raise ValueError(
                    f"module {module!r} has {len(candidates)} instances; "
                    "pass path= explicitly"
                )
            path = "".join(f"{inst}." for inst in candidates[0].insts)
        return MutSpec(module=module, path=path)

    def piers(self) -> List[PierInfo]:
        if self._piers is None:
            self._piers = find_piers(self.design)
        return self._piers

    def analyze(self, module: str, path: Optional[str] = None,
                use_piers: bool = True) -> FactorResult:
        """Extract constraints, build the transformed module, analyze
        testability and identify PIERs for one MUT."""
        mut = self.mut_spec(module, path)
        with span("analyze", mut=mut.path, module=module) as sp:
            extraction = self.composer.extract(mut)
            transformed = self.composer.transform(mut)
            with span("testability"):
                testability = analyze_testability(self.design, extraction)
            with span("piers"):
                piers = self.piers() if use_piers else []
                pier_nets = (
                    pier_q_nets(transformed.netlist, self.design, piers)
                    if use_piers else set()
                )
        _log.info("analyze_done", mut=mut.path,
                  tasks_run=extraction.tasks_run,
                  tasks_reused=extraction.tasks_reused,
                  gates=transformed.total_gates)
        return FactorResult(
            mut=mut,
            extraction=extraction,
            transformed=transformed,
            testability=testability,
            piers=piers,
            pier_nets=pier_nets,
            record=RunRecord.capture(f"analyze:{mut.path}", spans=[sp]),
        )

    # -- test generation --------------------------------------------------------

    def generate_tests(self, result: FactorResult,
                       options: Optional[AtpgOptions] = None) -> AtpgReport:
        """Run the ATPG substrate on the transformed module, targeting only
        the MUT's faults, with PIERs as pseudo PI/PO.

        The finished report is memoized in the persistent artifact store
        keyed by the netlist content fingerprint and the fully resolved
        engine options: ATPG is deterministic given both, so a warm run
        returns the stored report (including the timing fields of the run
        that computed it) without re-running PODEM or fault simulation.
        """
        from repro.atpg.compiled import resolve_backend

        opts = options or AtpgOptions()
        opts.fault_region = result.transformed.mut_region
        if result.pier_nets:
            opts.pier_qs = frozenset(result.pier_nets)
        store = get_store()
        store_key = {
            "netlist": netlist_fingerprint(result.transformed.netlist),
            "options": atpg_options_fingerprint(
                opts, resolve_backend(opts.fault_sim_backend)),
        }
        report = store.get("atpg", store_key)
        if report is MISS:
            engine = AtpgEngine(result.transformed.netlist, opts)
            report = engine.run()
            store.put("atpg", store_key, report)
        else:
            with span("atpg.store", mut=result.mut.path):
                counter("atpg.report_store_hits").inc()
            _log.info("atpg_store_hit", mut=result.mut.path,
                      detected=report.detected, faults=report.total_faults)
        return report
