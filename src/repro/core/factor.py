"""The ``Factor`` facade: the public API of the reproduction.

Typical use::

    from repro import Factor
    from repro.designs import arm2_source

    factor = Factor.from_verilog(arm2_source(), top="arm")
    result = factor.analyze("arm_alu", path="u_core.u_dp.u_alu.")
    print(result.testability.summary())
    result.write_constraints("constraints/")
    report = factor.generate_tests(result)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.atpg.engine import AtpgEngine, AtpgOptions, AtpgReport
from repro.core.composer import ConstraintComposer
from repro.core.extractor import ExtractionMode, ExtractionResult, MutSpec
from repro.core.piers import PierInfo, find_piers, pier_q_nets
from repro.core.testability import TestabilityReport, analyze_testability
from repro.core.transform import TransformedModule
from repro.hierarchy.design import Design
from repro.obs import RunRecord, get_logger, span
from repro.verilog.parser import parse_source
from repro.verilog.writer import write_module

_log = get_logger("factor")


@dataclass
class FactorResult:
    """Everything FACTOR produces for one module under test."""

    mut: MutSpec
    extraction: ExtractionResult
    transformed: TransformedModule
    testability: TestabilityReport
    piers: List[PierInfo] = field(default_factory=list)
    pier_nets: Set[int] = field(default_factory=set)
    record: Optional[RunRecord] = field(default=None, repr=False)

    def write_constraints(self, directory: str) -> List[str]:
        """Write the pruned constraint netlists, one file per module.

        Mirrors the paper's tool, which "retains the original directory
        structure" — each module goes to ``<dir>/<module>.v``.
        """
        os.makedirs(directory, exist_ok=True)
        written: List[str] = []
        for module in self.transformed.source.modules:
            path = os.path.join(directory, f"{module.name}.v")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(write_module(module))
            written.append(path)
        return written


class Factor:
    """FunctionAl ConsTraint extractOR over one design."""

    def __init__(self, design: Design,
                 mode: ExtractionMode = ExtractionMode.COMPOSE):
        self.design = design
        self.mode = mode
        self.composer = ConstraintComposer(design, mode)
        self._piers: Optional[List[PierInfo]] = None

    @classmethod
    def from_verilog(cls, source_text: str, top: Optional[str] = None,
                     mode: ExtractionMode = ExtractionMode.COMPOSE
                     ) -> "Factor":
        return cls(Design(parse_source(source_text), top=top), mode=mode)

    @classmethod
    def from_files(cls, paths: Sequence[str], top: Optional[str] = None,
                   mode: ExtractionMode = ExtractionMode.COMPOSE,
                   defines: Optional[Dict[str, str]] = None,
                   include_dirs: Sequence[str] = ()) -> "Factor":
        from repro.verilog.preprocess import Preprocessor

        pp = Preprocessor(defines=defines, include_dirs=include_dirs)
        chunks = [pp.process_file(path) for path in paths]
        return cls.from_verilog("\n".join(chunks), top=top, mode=mode)

    # -- analysis ------------------------------------------------------------

    def mut_spec(self, module: str, path: Optional[str] = None) -> MutSpec:
        """Resolve a MUT by module name; infer the instance path if unique."""
        if path is None:
            candidates = self.design.paths_to(module)
            if not candidates:
                raise ValueError(f"module {module!r} not found under top")
            if len(candidates) > 1:
                raise ValueError(
                    f"module {module!r} has {len(candidates)} instances; "
                    "pass path= explicitly"
                )
            path = "".join(f"{inst}." for inst in candidates[0].insts)
        return MutSpec(module=module, path=path)

    def piers(self) -> List[PierInfo]:
        if self._piers is None:
            self._piers = find_piers(self.design)
        return self._piers

    def analyze(self, module: str, path: Optional[str] = None,
                use_piers: bool = True) -> FactorResult:
        """Extract constraints, build the transformed module, analyze
        testability and identify PIERs for one MUT."""
        mut = self.mut_spec(module, path)
        with span("analyze", mut=mut.path, module=module) as sp:
            extraction = self.composer.extract(mut)
            transformed = self.composer.transform(mut)
            with span("testability"):
                testability = analyze_testability(self.design, extraction)
            with span("piers"):
                piers = self.piers() if use_piers else []
                pier_nets = (
                    pier_q_nets(transformed.netlist, self.design, piers)
                    if use_piers else set()
                )
        _log.info("analyze_done", mut=mut.path,
                  tasks_run=extraction.tasks_run,
                  tasks_reused=extraction.tasks_reused,
                  gates=transformed.total_gates)
        return FactorResult(
            mut=mut,
            extraction=extraction,
            transformed=transformed,
            testability=testability,
            piers=piers,
            pier_nets=pier_nets,
            record=RunRecord.capture(f"analyze:{mut.path}", spans=[sp]),
        )

    # -- test generation --------------------------------------------------------

    def generate_tests(self, result: FactorResult,
                       options: Optional[AtpgOptions] = None) -> AtpgReport:
        """Run the ATPG substrate on the transformed module, targeting only
        the MUT's faults, with PIERs as pseudo PI/PO."""
        opts = options or AtpgOptions()
        opts.fault_region = result.transformed.mut_region
        if result.pier_nets:
            opts.pier_qs = frozenset(result.pier_nets)
        engine = AtpgEngine(result.transformed.netlist, opts)
        return engine.run()
