"""PIER identification: Primary Input/output accessible Registers.

A register is a PIER when it can be *loaded* from chip-level inputs and
*stored* back to chip-level outputs through purely combinational paths
(instruction-mediated in a processor: MOVI/LD reach the register file from
the instruction/data pins, ST reads it back out).  PIERs act as pseudo
primary inputs/outputs during test generation, cutting the sequential depth
of the transformed module — Section 2.1 of the paper.

The analysis is a bounded bidirectional reachability over the def-use /
use-def chains, crossing instance boundaries, refusing to tunnel through
*other* sequential elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.hierarchy.chains import ChainDB
from repro.hierarchy.connectivity import (
    instance_port_map,
    signal_instance_sinks,
    signal_instance_sources,
)
from repro.hierarchy.design import Design
from repro.synth.netlist import Netlist
from repro.verilog import ast


@dataclass(frozen=True)
class PierInfo:
    """One PI/PO-accessible register."""

    module: str
    signal: str
    loadable: bool
    storable: bool

    @property
    def is_pier(self) -> bool:
        return self.loadable and self.storable


def find_piers(design: Design, max_depth: int = 24,
               load_hops: int = 1, store_hops: int = 0) -> List[PierInfo]:
    """Identify every register and classify its chip-level accessibility.

    ``load_hops`` / ``store_hops`` bound how many *intermediate* registers a
    load/store access may pipeline through: a MOVI instruction loading the
    register file crosses the writeback stage register (one hop), whereas a
    store drives the data pins combinationally (zero hops).
    """
    chaindb = design.chaindb()
    modules = {name: design.module(name) for name in design.module_names()}
    analysis = _Reachability(design, chaindb, modules, max_depth,
                             load_hops, store_hops)

    piers: List[PierInfo] = []
    for name in design.module_names():
        module = modules[name]
        if not design.paths_to(name):
            continue  # unreachable from top
        for always in module.always_blocks:
            if not always.is_sequential:
                continue
            for signal in sorted(always.defined()):
                loadable = analysis.loadable(name, signal)
                storable = analysis.storable(name, signal)
                piers.append(PierInfo(module=name, signal=signal,
                                      loadable=loadable, storable=storable))
    return piers


def pier_q_nets(netlist: Netlist, design: Design,
                piers: List[PierInfo],
                region: Optional[str] = None) -> Set[int]:
    """Map PIERs to DFF output nets of a synthesized netlist.

    ``region`` restricts the mapping to flops created under a hierarchical
    prefix (e.g. only the MUT's own registers).
    """
    by_module: Dict[str, Set[str]] = {}
    for pier in piers:
        if pier.is_pier:
            by_module.setdefault(pier.module, set()).add(pier.signal)

    prefix_module: Dict[str, str] = {}
    for name in design.module_names():
        for path in design.paths_to(name):
            prefix = "".join(f"{inst}." for inst in path.insts)
            prefix_module[prefix] = name

    regions = getattr(netlist, "regions", {})
    out: Set[int] = set()
    for dff in netlist.dffs():
        q = dff.output
        net_region = regions.get(q, "")
        if region is not None and not net_region.startswith(region):
            continue
        module_name = prefix_module.get(net_region)
        if module_name is None:
            continue
        signals = by_module.get(module_name)
        if not signals:
            continue
        local = netlist.net_name(q)[len(net_region):]
        base = local.split("[", 1)[0]
        if base in signals:
            out.add(q)
    return out


class _Reachability:
    """Memoized bounded reachability over chains + hierarchy."""

    def __init__(self, design: Design, chaindb: ChainDB,
                 modules: Dict[str, ast.Module], max_depth: int,
                 load_hops: int = 1, store_hops: int = 0):
        self.design = design
        self.chaindb = chaindb
        self.modules = modules
        self.max_depth = max_depth
        self.load_hops = load_hops
        self.store_hops = store_hops
        self._load_cache: Dict[Tuple[str, str, int], bool] = {}
        self._store_cache: Dict[Tuple[str, str, int], bool] = {}

    # -- load path: chip input --> register D ---------------------------------

    def loadable(self, module_name: str, reg: str) -> bool:
        chains = self.chaindb.chains(module_name)
        for site in chains.ud_chain(reg):
            if site.kind != "proc_assign":
                continue
            if site.always is None or not site.always.is_sequential:
                continue
            for sig in sorted(site.rhs_signals()):
                if self._from_pi(module_name, sig, self.max_depth, set(),
                                 self.load_hops):
                    return True
        return False

    def _from_pi(self, module_name: str, signal: str, depth: int,
                 visiting: Set[Tuple[str, str]], hops: int) -> bool:
        key = (module_name, signal, hops)
        if key in self._load_cache:
            return self._load_cache[key]
        if depth <= 0 or (module_name, signal) in visiting:
            return False
        visiting = visiting | {(module_name, signal)}
        result = False
        module = self.modules[module_name]
        chains = self.chaindb.chains(module_name)
        for site in chains.ud_chain(signal):
            if site.kind == "input_port":
                if module_name == self.design.top:
                    result = True
                    break
                found = False
                for parent_name, inst_name in self.design.parents(
                    module_name
                ):
                    inst = self.design.instance_in(parent_name, inst_name)
                    expr = instance_port_map(module, inst).get(signal)
                    if expr is None:
                        continue
                    if any(
                        self._from_pi(parent_name, s, depth - 1, visiting,
                                      hops)
                        for s in sorted(expr.signals())
                    ):
                        found = True
                        break
                if found:
                    result = True
                    break
            elif site.kind == "instance":
                for src_inst, port in signal_instance_sources(
                    module, signal, self.modules
                ):
                    if self._from_pi(src_inst.module_name, port,
                                     depth - 1, visiting, hops):
                        result = True
                        break
                if result:
                    break
            elif site.kind in ("cont_assign", "gate"):
                if any(
                    self._from_pi(module_name, s, depth - 1, visiting, hops)
                    for s in sorted(site.rhs_signals())
                ):
                    result = True
                    break
            elif site.kind == "proc_assign":
                sequential = (site.always is not None
                              and site.always.is_sequential)
                if sequential and hops <= 0:
                    continue  # out of pipeline-register budget
                next_hops = hops - 1 if sequential else hops
                if any(
                    self._from_pi(module_name, s, depth - 1, visiting,
                                  next_hops)
                    for s in sorted(site.rhs_signals())
                ):
                    result = True
                    break
        self._load_cache[key] = result
        return result

    # -- store path: register Q --> chip output ---------------------------------

    def storable(self, module_name: str, reg: str) -> bool:
        return self._to_po(module_name, reg, self.max_depth, set(),
                           self.store_hops)

    def _to_po(self, module_name: str, signal: str, depth: int,
               visiting: Set[Tuple[str, str]], hops: int) -> bool:
        key = (module_name, signal, hops)
        if key in self._store_cache:
            return self._store_cache[key]
        if depth <= 0 or (module_name, signal) in visiting:
            return False
        visiting = visiting | {(module_name, signal)}
        result = False
        module = self.modules[module_name]
        chains = self.chaindb.chains(module_name)
        for site in chains.du_chain(signal):
            if site.kind == "output_port":
                if module_name == self.design.top:
                    result = True
                    break
                found = False
                for parent_name, inst_name in self.design.parents(
                    module_name
                ):
                    inst = self.design.instance_in(parent_name, inst_name)
                    expr = instance_port_map(module, inst).get(signal)
                    if expr is None:
                        continue
                    targets = ast.lhs_base_names(expr)
                    if any(
                        self._to_po(parent_name, s, depth - 1, visiting, hops)
                        for s in sorted(targets)
                    ):
                        found = True
                        break
                if found:
                    result = True
                    break
            elif site.kind == "instance":
                for sink_inst, port in signal_instance_sinks(
                    module, signal, self.modules
                ):
                    if self._to_po(sink_inst.module_name, port,
                                   depth - 1, visiting, hops):
                        result = True
                        break
                if result:
                    break
            elif site.kind in ("cont_assign", "gate"):
                if any(
                    self._to_po(module_name, s, depth - 1, visiting, hops)
                    for s in sorted(site.defined_signals())
                ):
                    result = True
                    break
            elif site.kind == "proc_assign":
                if isinstance(site.node, ast.Always):
                    continue  # sensitivity-list use
                sequential = (site.always is not None
                              and site.always.is_sequential)
                if sequential and hops <= 0:
                    continue
                next_hops = hops - 1 if sequential else hops
                if any(
                    self._to_po(module_name, s, depth - 1, visiting,
                                next_hops)
                    for s in sorted(site.defined_signals())
                ):
                    result = True
                    break
        self._store_cache[key] = result
        return result
