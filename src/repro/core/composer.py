"""Constraint composition with cross-MUT reuse (paper Section 2.2).

A :class:`ConstraintComposer` owns one compositional extractor whose task
cache persists across module-under-test extractions: constraints computed at
higher hierarchy levels for one MUT (e.g. the decode table's opcode cone)
are reused verbatim for the next MUT.  This is the mechanism behind the
lower extraction times of Table 3 relative to Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.extractor import (
    ExtractionMode,
    ExtractionResult,
    FunctionalConstraintExtractor,
    MutSpec,
)
from repro.core.transform import TransformedModule, build_transformed_module
from repro.hierarchy.design import Design
from repro.obs import counter, gauge


@dataclass
class ReuseStats:
    """Accounting of compositional reuse across extractions."""

    extractions: int = 0
    tasks_run: int = 0
    tasks_reused: int = 0

    @property
    def reuse_fraction(self) -> float:
        total = self.tasks_run + self.tasks_reused
        return self.tasks_reused / total if total else 0.0


class ConstraintComposer:
    """Extracts and composes constraints for a series of MUTs."""

    def __init__(self, design: Design,
                 mode: ExtractionMode = ExtractionMode.COMPOSE):
        self.design = design
        self.mode = mode
        self.extractor = FunctionalConstraintExtractor(design, mode)
        self.stats = ReuseStats()
        self._extractions: Dict[str, ExtractionResult] = {}
        self._transforms: Dict[str, TransformedModule] = {}

    def extract(self, mut: MutSpec) -> ExtractionResult:
        key = mut.path
        if key not in self._extractions:
            result = self.extractor.extract(mut)
            self.stats.extractions += 1
            self.stats.tasks_run += result.tasks_run
            self.stats.tasks_reused += result.tasks_reused
            self._extractions[key] = result
            counter("compose.extractions").inc()
            gauge("compose.reuse_fraction").set(
                round(self.stats.reuse_fraction, 4)
            )
        else:
            counter("compose.extraction_cache_hits").inc()
        return self._extractions[key]

    def transform(self, mut: MutSpec,
                  do_optimize: bool = True) -> TransformedModule:
        key = mut.path
        if key not in self._transforms:
            extraction = self.extract(mut)
            self._transforms[key] = build_transformed_module(
                self.design, extraction, self.extractor,
                do_optimize=do_optimize,
            )
        return self._transforms[key]
