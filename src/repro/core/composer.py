"""Constraint composition with cross-MUT reuse (paper Section 2.2).

A :class:`ConstraintComposer` owns one compositional extractor whose task
cache persists across module-under-test extractions: constraints computed at
higher hierarchy levels for one MUT (e.g. the decode table's opcode cone)
are reused verbatim for the next MUT.  This is the mechanism behind the
lower extraction times of Table 3 relative to Table 2.

On top of the in-process task cache sits the persistent artifact store
(:mod:`repro.store`): finished extraction results and transformed modules
are published keyed by the design fingerprint, MUT and mode, so the reuse
economy survives across processes — a warm CLI run, benchmark row or
``--jobs`` worker loads the artifact instead of re-running the J/P worklist
and re-synthesizing S'.  Stored artifacts carry the timing fields of the
run that produced them, so reported extraction/synthesis seconds always
describe real (cold) work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.extractor import (
    ExtractionMode,
    ExtractionResult,
    FunctionalConstraintExtractor,
    MutSpec,
)
from repro.core.transform import TransformedModule, build_transformed_module
from repro.hierarchy.design import Design
from repro.obs import counter, gauge, span
from repro.store import MISS, get_store


@dataclass
class ReuseStats:
    """Accounting of compositional reuse across extractions."""

    extractions: int = 0
    tasks_run: int = 0
    tasks_reused: int = 0
    store_hits: int = 0  # extractions satisfied by the persistent store

    @property
    def reuse_fraction(self) -> float:
        total = self.tasks_run + self.tasks_reused
        return self.tasks_reused / total if total else 0.0


class ConstraintComposer:
    """Extracts and composes constraints for a series of MUTs."""

    def __init__(self, design: Design,
                 mode: ExtractionMode = ExtractionMode.COMPOSE):
        self.design = design
        self.mode = mode
        self.extractor = FunctionalConstraintExtractor(design, mode)
        self.stats = ReuseStats()
        self._extractions: Dict[str, ExtractionResult] = {}
        self._transforms: Dict[str, TransformedModule] = {}

    def _store_key(self, mut: MutSpec,
                   do_optimize: Optional[bool] = None) -> Dict[str, object]:
        key: Dict[str, object] = {
            "design": self.design.fingerprint,
            "module": mut.module,
            "path": mut.path,
            "mode": self.mode.value,
        }
        if do_optimize is not None:
            key["do_optimize"] = do_optimize
        return key

    def extract(self, mut: MutSpec) -> ExtractionResult:
        key = mut.path
        if key not in self._extractions:
            store = get_store()
            store_key = self._store_key(mut)
            result = store.get("extract", store_key)
            if result is MISS:
                result = self.extractor.extract(mut)
                store.put("extract", store_key, result)
                self.stats.tasks_run += result.tasks_run
                self.stats.tasks_reused += result.tasks_reused
            else:
                with span("extract.store", mut=mut.path,
                          mode=self.mode.value):
                    self.stats.store_hits += 1
                    self.stats.tasks_reused += (result.tasks_run
                                                + result.tasks_reused)
            self.stats.extractions += 1
            self._extractions[key] = result
            counter("compose.extractions").inc()
            gauge("compose.reuse_fraction").set(
                round(self.stats.reuse_fraction, 4)
            )
        else:
            counter("compose.extraction_cache_hits").inc()
        return self._extractions[key]

    def transform(self, mut: MutSpec,
                  do_optimize: bool = True) -> TransformedModule:
        key = mut.path
        if key not in self._transforms:
            store = get_store()
            store_key = self._store_key(mut, do_optimize=do_optimize)
            transformed = store.get("transform", store_key)
            if transformed is MISS:
                extraction = self.extract(mut)
                transformed = build_transformed_module(
                    self.design, extraction, self.extractor,
                    do_optimize=do_optimize,
                )
                store.put("transform", store_key, transformed)
            else:
                with span("synth.store", mut=mut.path):
                    counter("compose.transform_store_hits").inc()
            self._transforms[key] = transformed
        return self._transforms[key]
