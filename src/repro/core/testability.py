"""Testability analysis (paper Section 4.2).

During constraint extraction FACTOR gathers diagnostics "without having to
build and analyze the state machine for the design":

- **empty chains** — a MUT-relevant signal with no definitions (no path from
  the chip interface: coverage will be lost) or no uses (no propagation
  path),
- **hard-coded constraints** — a MUT input whose entire justification cone
  terminates in constant assignments selected by decode logic; such an input
  can only ever take the values in the decode table (the ``arm_alu``
  situation: most of its control inputs are hard-coded functions of the
  opcode field).

The traversals behind both flags live in :mod:`repro.lint` (the constant
cone walker in :mod:`repro.lint.cone`, the empty-chain vocabulary in
:mod:`repro.lint.rules_chain`): one analysis core produces the generic lint
report and this MUT-scoped testability report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.extractor import (
    EmptyChainTrace,
    ExtractionResult,
    MutSpec,
)
from repro.hierarchy.chains import ChainDB
from repro.hierarchy.connectivity import (
    instance_port_map,
    signal_instance_sinks,
)
from repro.hierarchy.design import Design
from repro.lint.cone import ConstantConeAnalyzer, hard_coded_inputs
from repro.lint.rules_chain import empty_chain_diagnostic
from repro.verilog import ast


@dataclass(frozen=True)
class Warning_:
    """One testability warning."""

    kind: str  # "hard_coded" | "no_driver" | "no_propagation"
    module: str
    signal: str
    message: str
    selectors: Tuple[str, ...] = ()
    trail: Tuple[Tuple[str, str], ...] = ()


@dataclass
class HardCodedPort:
    """A MUT input port whose value cone ends only in constants."""

    port: str
    selectors: Tuple[str, ...]
    constant_sites: Tuple[Tuple[str, str, int], ...]  # (module, signal, line)


@dataclass
class TraceHop:
    """One hop of an aborted-path trace."""

    module: str
    signal: str
    kind: str  # site kind crossed to reach this hop
    line: int


@dataclass
class TestabilityReport:
    mut: MutSpec
    warnings: List[Warning_]
    hard_coded_ports: List[HardCodedPort]
    total_input_ports: int

    @property
    def num_hard_coded(self) -> int:
        return len(self.hard_coded_ports)

    def summary(self) -> str:
        lines = [
            f"Testability report for MUT {self.mut.module!r} "
            f"(instance {self.mut.path})",
            f"  {self.num_hard_coded} of {self.total_input_ports} input "
            "ports are driven only from hard-coded values",
        ]
        for hc in self.hard_coded_ports:
            sels = ", ".join(hc.selectors) if hc.selectors else "none"
            lines.append(
                f"    input {hc.port!r}: constants selected by [{sels}]"
            )
        for warn in self.warnings:
            if warn.kind == "hard_coded":
                continue
            lines.append(f"  {warn.kind}: {warn.module}.{warn.signal} — "
                         f"{warn.message}")
        return "\n".join(lines)


def _empty_chain_warning(trace: EmptyChainTrace,
                         chaindb: Optional[ChainDB] = None) -> Warning_:
    """Map an extraction empty-chain trace through the shared lint core."""
    diag = empty_chain_diagnostic(trace.kind, trace.module, trace.signal,
                                  trail=trace.trail, chaindb=chaindb)
    return Warning_(
        kind=trace.kind,
        module=diag.module,
        signal=diag.signal,
        message=diag.message,
        trail=trace.trail,
    )


def analyze_testability(design: Design, extraction: ExtractionResult
                        ) -> TestabilityReport:
    """Build the Section-4.2 report for one extraction."""
    mut = extraction.mut
    chaindb = ChainDB(design)
    modules = {name: design.module(name) for name in design.module_names()}
    warnings: List[Warning_] = []

    for trace in extraction.empty_chains:
        warnings.append(_empty_chain_warning(trace, chaindb=chaindb))

    # Hard-coded analysis on the MUT's input connections, via the shared
    # constant-cone core (lint rule W103 runs the same traversal).
    parent_module_name = design.top
    for inst_name in mut.inst_chain[:-1]:
        inst = design.instance_in(parent_module_name, inst_name)
        parent_module_name = inst.module_name
    mut_inst = design.instance_in(parent_module_name, mut.inst_name)
    mut_mod = modules[mut.module]

    analyzer = ConstantConeAnalyzer(design, chaindb, modules)
    hard_coded: List[HardCodedPort] = []
    for hc in hard_coded_inputs(analyzer, parent_module_name, mut_mod,
                                mut_inst):
        hard_coded.append(HardCodedPort(
            port=hc.port,
            selectors=hc.selectors,
            constant_sites=hc.constant_sites,
        ))
        warnings.append(Warning_(
            kind="hard_coded",
            module=mut.module,
            signal=hc.port,
            message=(
                f"input {hc.port!r} of {mut.module} is driven only "
                "from hard-coded values"
            ),
            selectors=hc.selectors,
        ))

    return TestabilityReport(
        mut=mut,
        warnings=warnings,
        hard_coded_ports=hard_coded,
        total_input_ports=len(mut_mod.inputs()),
    )


def trace_aborted_path(design: Design, module_name: str, signal: str,
                       mut: MutSpec, max_hops: int = 32) -> List[TraceHop]:
    """Trace the signals along an aborted extraction path (Section 4.2).

    For a dead-end signal (empty ud/du chain) this follows the def-use
    chains from the signal towards the MUT instance, producing the hop list
    FACTOR prints so the designer can see exactly which connection chain
    fails to reach the chip interface.
    """
    chaindb = ChainDB(design)
    modules = {name: design.module(name) for name in design.module_names()}
    target_modules = set(design.modules_under(mut.module))

    start = TraceHop(module=module_name, signal=signal, kind="origin",
                     line=0)
    # BFS forward through uses until we land at the MUT boundary.
    from collections import deque

    queue = deque([(module_name, signal, (start,))])
    seen = {(module_name, signal)}
    best: List[TraceHop] = [start]
    while queue:
        mod_name, sig, path = queue.popleft()
        if len(path) > max_hops:
            continue
        if mod_name in target_modules:
            return list(path)
        module = modules[mod_name]
        chains = chaindb.chains(mod_name)
        for site in chains.du_chain(sig):
            if site.kind == "instance":
                for sink_inst, port in signal_instance_sinks(
                    module, sig, modules
                ):
                    key = (sink_inst.module_name, port)
                    if key in seen:
                        continue
                    seen.add(key)
                    hop = TraceHop(module=sink_inst.module_name,
                                   signal=port, kind="instance",
                                   line=site.line)
                    queue.append((sink_inst.module_name, port,
                                  path + (hop,)))
            elif site.kind == "output_port":
                for parent_name, inst_name in design.parents(mod_name):
                    inst = design.instance_in(parent_name, inst_name)
                    expr = instance_port_map(module, inst).get(sig)
                    if expr is None:
                        continue
                    for parent_sig in sorted(ast.lhs_base_names(expr)):
                        key = (parent_name, parent_sig)
                        if key in seen:
                            continue
                        seen.add(key)
                        hop = TraceHop(module=parent_name,
                                       signal=parent_sig,
                                       kind="output_port", line=site.line)
                        queue.append((parent_name, parent_sig,
                                      path + (hop,)))
            else:
                for defined in sorted(site.defined_signals()):
                    key = (mod_name, defined)
                    if key in seen:
                        continue
                    seen.add(key)
                    hop = TraceHop(module=mod_name, signal=defined,
                                   kind=site.kind, line=site.line)
                    queue.append((mod_name, defined, path + (hop,)))
        if len(path) > len(best):
            best = list(path)
    return best
