"""Testability analysis (paper Section 4.2).

During constraint extraction FACTOR gathers diagnostics "without having to
build and analyze the state machine for the design":

- **empty chains** — a MUT-relevant signal with no definitions (no path from
  the chip interface: coverage will be lost) or no uses (no propagation
  path),
- **hard-coded constraints** — a MUT input whose entire justification cone
  terminates in constant assignments selected by decode logic; such an input
  can only ever take the values in the decode table (the ``arm_alu``
  situation: most of its control inputs are hard-coded functions of the
  opcode field).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.extractor import (
    EmptyChainTrace,
    ExtractionResult,
    MutSpec,
)
from repro.hierarchy.chains import ChainDB, Site
from repro.hierarchy.connectivity import (
    instance_port_map,
    signal_instance_sinks,
    signal_instance_sources,
)
from repro.hierarchy.design import Design
from repro.verilog import ast


@dataclass(frozen=True)
class Warning_:
    """One testability warning."""

    kind: str  # "hard_coded" | "no_driver" | "no_propagation"
    module: str
    signal: str
    message: str
    selectors: Tuple[str, ...] = ()
    trail: Tuple[Tuple[str, str], ...] = ()


@dataclass
class HardCodedPort:
    """A MUT input port whose value cone ends only in constants."""

    port: str
    selectors: Tuple[str, ...]
    constant_sites: Tuple[Tuple[str, str, int], ...]  # (module, signal, line)


@dataclass
class TraceHop:
    """One hop of an aborted-path trace."""

    module: str
    signal: str
    kind: str  # site kind crossed to reach this hop
    line: int


@dataclass
class TestabilityReport:
    mut: MutSpec
    warnings: List[Warning_]
    hard_coded_ports: List[HardCodedPort]
    total_input_ports: int

    @property
    def num_hard_coded(self) -> int:
        return len(self.hard_coded_ports)

    def summary(self) -> str:
        lines = [
            f"Testability report for MUT {self.mut.module!r} "
            f"(instance {self.mut.path})",
            f"  {self.num_hard_coded} of {self.total_input_ports} input "
            "ports are driven only from hard-coded values",
        ]
        for hc in self.hard_coded_ports:
            sels = ", ".join(hc.selectors) if hc.selectors else "none"
            lines.append(
                f"    input {hc.port!r}: constants selected by [{sels}]"
            )
        for warn in self.warnings:
            if warn.kind == "hard_coded":
                continue
            lines.append(f"  {warn.kind}: {warn.module}.{warn.signal} — "
                         f"{warn.message}")
        return "\n".join(lines)


def analyze_testability(design: Design, extraction: ExtractionResult
                        ) -> TestabilityReport:
    """Build the Section-4.2 report for one extraction."""
    mut = extraction.mut
    chaindb = ChainDB(design)
    modules = {name: design.module(name) for name in design.module_names()}
    warnings: List[Warning_] = []

    for trace in extraction.empty_chains:
        message = (
            "no definition found — there is no path from the chip interface "
            "to this signal" if trace.kind == "no_driver"
            else "no use found — the signal cannot propagate to the chip "
                 "interface"
        )
        warnings.append(Warning_(
            kind=trace.kind,
            module=trace.module,
            signal=trace.signal,
            message=message,
            trail=trace.trail,
        ))

    # Hard-coded analysis on the MUT's input connections.
    parent_module_name = design.top
    for inst_name in mut.inst_chain[:-1]:
        inst = design.instance_in(parent_module_name, inst_name)
        parent_module_name = inst.module_name
    mut_inst = design.instance_in(parent_module_name, mut.inst_name)
    mut_mod = modules[mut.module]
    parent_mod = modules[parent_module_name]
    pmap = instance_port_map(mut_mod, mut_inst)

    analyzer = _ConstantConeAnalyzer(design, chaindb, modules)
    hard_coded: List[HardCodedPort] = []
    total_inputs = 0
    for port in mut_mod.inputs():
        total_inputs += 1
        expr = pmap.get(port.name)
        if expr is None:
            continue
        signals = sorted(expr.signals())
        if not signals:
            continue  # tied to a literal constant: trivially hard-coded
        verdicts = [
            analyzer.analyze(parent_module_name, sig) for sig in signals
        ]
        if all(v.all_constant for v in verdicts):
            selectors: Set[str] = set()
            sites: List[Tuple[str, str, int]] = []
            for verdict in verdicts:
                selectors |= verdict.selectors
                sites.extend(verdict.constant_sites)
            hard_coded.append(HardCodedPort(
                port=port.name,
                selectors=tuple(sorted(selectors)),
                constant_sites=tuple(sites),
            ))
            warnings.append(Warning_(
                kind="hard_coded",
                module=mut.module,
                signal=port.name,
                message=(
                    f"input {port.name!r} of {mut.module} is driven only "
                    "from hard-coded values"
                ),
                selectors=tuple(sorted(selectors)),
            ))

    return TestabilityReport(
        mut=mut,
        warnings=warnings,
        hard_coded_ports=hard_coded,
        total_input_ports=total_inputs,
    )


@dataclass
class _ConeVerdict:
    all_constant: bool
    selectors: Set[str] = field(default_factory=set)
    constant_sites: List[Tuple[str, str, int]] = field(default_factory=list)


class _ConstantConeAnalyzer:
    """Does every justification path of a signal end in a constant?"""

    def __init__(self, design: Design, chaindb: ChainDB,
                 modules: Dict[str, ast.Module], max_depth: int = 16):
        self.design = design
        self.chaindb = chaindb
        self.modules = modules
        self.max_depth = max_depth
        self._cache: Dict[Tuple[str, str], _ConeVerdict] = {}

    def analyze(self, module_name: str, signal: str,
                depth: Optional[int] = None,
                visiting: Optional[Set[Tuple[str, str]]] = None
                ) -> _ConeVerdict:
        key = (module_name, signal)
        if key in self._cache:
            return self._cache[key]
        depth = self.max_depth if depth is None else depth
        visiting = set() if visiting is None else visiting
        if depth <= 0 or key in visiting:
            return _ConeVerdict(all_constant=False)
        visiting.add(key)
        verdict = self._analyze_inner(module_name, signal, depth, visiting)
        visiting.discard(key)
        self._cache[key] = verdict
        return verdict

    def _analyze_inner(self, module_name: str, signal: str, depth: int,
                       visiting: Set[Tuple[str, str]]) -> _ConeVerdict:
        module = self.modules[module_name]
        if signal in {p.name for p in module.params}:
            return _ConeVerdict(all_constant=True)
        chains = self.chaindb.chains(module_name)
        defs = chains.ud_chain(signal)
        if not defs:
            return _ConeVerdict(all_constant=False)
        out = _ConeVerdict(all_constant=True)
        for site in defs:
            sub = self._site_verdict(site, module, module_name, signal,
                                     depth, visiting)
            out.selectors |= sub.selectors
            out.constant_sites.extend(sub.constant_sites)
            if not sub.all_constant:
                out.all_constant = False
        return out

    def _site_verdict(self, site: Site, module: ast.Module,
                      module_name: str, signal: str, depth: int,
                      visiting: Set[Tuple[str, str]]) -> _ConeVerdict:
        if site.kind == "input_port":
            if module_name == self.design.top:
                return _ConeVerdict(all_constant=False)
            out = _ConeVerdict(all_constant=True)
            for parent_name, inst_name in self.design.parents(module_name):
                inst = self.design.instance_in(parent_name, inst_name)
                expr = instance_port_map(module, inst).get(signal)
                if expr is None:
                    continue
                if isinstance(expr, ast.Number):
                    out.constant_sites.append(
                        (parent_name, signal, expr.line)
                    )
                    continue
                for sig in sorted(expr.signals()):
                    sub = self.analyze(parent_name, sig, depth - 1, visiting)
                    out.selectors |= sub.selectors
                    out.constant_sites.extend(sub.constant_sites)
                    if not sub.all_constant:
                        out.all_constant = False
                if not expr.signals() and not isinstance(expr, ast.Number):
                    out.all_constant = False
            return out
        if site.kind == "instance":
            out = _ConeVerdict(all_constant=True)
            for src_inst, port in signal_instance_sources(
                module, signal, self.modules
            ):
                sub = self.analyze(src_inst.module_name, port, depth - 1,
                                   visiting)
                out.selectors |= sub.selectors
                out.constant_sites.extend(sub.constant_sites)
                if not sub.all_constant:
                    out.all_constant = False
            return out
        if site.kind in ("cont_assign", "proc_assign"):
            node = site.node
            rhs = node.rhs if isinstance(
                node, (ast.ContAssign, ast.AssignStmt)) else None
            if rhs is not None and isinstance(rhs, ast.Number):
                out = _ConeVerdict(all_constant=True)
                out.constant_sites.append((module_name, signal, site.line))
                for enc in site.enclosures:
                    if isinstance(enc, ast.Case):
                        out.selectors |= enc.selector.signals()
                    elif isinstance(enc, ast.If):
                        out.selectors |= enc.cond.signals()
                return out
            if rhs is not None and _is_selection_of_constants(rhs):
                out = _ConeVerdict(all_constant=True)
                out.constant_sites.append((module_name, signal, site.line))
                out.selectors |= rhs.signals() - _constant_leaf_signals(rhs)
                return out
            # A part-select copy (e.g. ctrl vector slicing) keeps the cone
            # going; anything else is treated as a real data source.
            if rhs is not None:
                sigs = sorted(rhs.signals())
                if sigs and _is_pure_routing(rhs):
                    out = _ConeVerdict(all_constant=True)
                    for sig in sigs:
                        sub = self.analyze(module_name, sig, depth - 1,
                                           visiting)
                        out.selectors |= sub.selectors
                        out.constant_sites.extend(sub.constant_sites)
                        if not sub.all_constant:
                            out.all_constant = False
                    return out
            return _ConeVerdict(all_constant=False)
        if site.kind == "gate":
            return _ConeVerdict(all_constant=False)
        return _ConeVerdict(all_constant=False)


def trace_aborted_path(design: Design, module_name: str, signal: str,
                       mut: MutSpec, max_hops: int = 32) -> List[TraceHop]:
    """Trace the signals along an aborted extraction path (Section 4.2).

    For a dead-end signal (empty ud/du chain) this follows the def-use
    chains from the signal towards the MUT instance, producing the hop list
    FACTOR prints so the designer can see exactly which connection chain
    fails to reach the chip interface.
    """
    chaindb = ChainDB(design)
    modules = {name: design.module(name) for name in design.module_names()}
    target_modules = set(design.modules_under(mut.module))

    start = TraceHop(module=module_name, signal=signal, kind="origin",
                     line=0)
    # BFS forward through uses until we land at the MUT boundary.
    from collections import deque

    queue = deque([(module_name, signal, (start,))])
    seen = {(module_name, signal)}
    best: List[TraceHop] = [start]
    while queue:
        mod_name, sig, path = queue.popleft()
        if len(path) > max_hops:
            continue
        if mod_name in target_modules:
            return list(path)
        module = modules[mod_name]
        chains = chaindb.chains(mod_name)
        for site in chains.du_chain(sig):
            if site.kind == "instance":
                for sink_inst, port in signal_instance_sinks(
                    module, sig, modules
                ):
                    key = (sink_inst.module_name, port)
                    if key in seen:
                        continue
                    seen.add(key)
                    hop = TraceHop(module=sink_inst.module_name,
                                   signal=port, kind="instance",
                                   line=site.line)
                    queue.append((sink_inst.module_name, port,
                                  path + (hop,)))
            elif site.kind == "output_port":
                for parent_name, inst_name in design.parents(mod_name):
                    inst = design.instance_in(parent_name, inst_name)
                    expr = instance_port_map(module, inst).get(sig)
                    if expr is None:
                        continue
                    for parent_sig in sorted(ast.lhs_base_names(expr)):
                        key = (parent_name, parent_sig)
                        if key in seen:
                            continue
                        seen.add(key)
                        hop = TraceHop(module=parent_name,
                                       signal=parent_sig,
                                       kind="output_port", line=site.line)
                        queue.append((parent_name, parent_sig,
                                      path + (hop,)))
            else:
                for defined in sorted(site.defined_signals()):
                    key = (mod_name, defined)
                    if key in seen:
                        continue
                    seen.add(key)
                    hop = TraceHop(module=mod_name, signal=defined,
                                   kind=site.kind, line=site.line)
                    queue.append((mod_name, defined, path + (hop,)))
        if len(path) > len(best):
            best = list(path)
    return best


def _is_pure_routing(expr: ast.Expr) -> bool:
    """Bit/part selects, concats and identifiers only — no computation."""
    if isinstance(expr, (ast.Ident, ast.BitSelect, ast.PartSelect)):
        return True
    if isinstance(expr, ast.Concat):
        return all(_is_pure_routing(p) for p in expr.parts)
    return False


def _is_selection_of_constants(expr: ast.Expr) -> bool:
    """Ternary trees whose leaves are all numeric literals."""
    if isinstance(expr, ast.Number):
        return True
    if isinstance(expr, ast.Ternary):
        return (_is_selection_of_constants(expr.if_true)
                and _is_selection_of_constants(expr.if_false))
    return False


def _constant_leaf_signals(expr: ast.Expr) -> Set[str]:
    """Signals appearing in constant leaves (none, by construction)."""
    return set()
