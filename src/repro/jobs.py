"""Shared execution knobs: worker-count resolution and termination signals.

Every parallel surface of the tool — ``repro bench`` table fan-out,
``repro atpg --jobs``, and the ``repro serve`` worker pool — sizes its
process pool through one helper so ``--jobs`` flags and the ``REPRO_JOBS``
environment variable mean the same thing everywhere:

- an explicit positive ``jobs`` wins,
- ``jobs`` of ``0`` (or any non-positive value) means "all cores",
- ``None`` falls back to ``REPRO_JOBS``, then to ``os.cpu_count()``.

The module also owns SIGTERM-to-exception translation for the synchronous
CLI: long ``repro atpg``/``repro bench`` runs must exit cleanly (status
143) with partial metrics flushed instead of dying mid-write.  The asyncio
job server installs its own loop-level handlers for graceful drain, which
override this one for the lifetime of ``repro serve``.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Optional

#: Conventional exit status for "terminated by SIGTERM" (128 + 15).
SIGTERM_EXIT_CODE = 143


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else all cores.

    Non-positive values (from either the argument or the environment) mean
    "use every core", so ``--jobs 0`` is a portable way to say "as parallel
    as this machine allows".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else 0
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def resolve_jobs_opt(jobs: Optional[int] = None) -> int:
    """Worker count for surfaces where "nothing asked" means *serial*.

    :func:`resolve_jobs` defaults to all cores because its call sites
    (bench fan-out, the serve pool) exist to be parallel.  Intra-run ATPG
    parallelism is opt-in instead: a bare ``repro atpg`` on one MUT stays
    serial unless ``--jobs`` or ``REPRO_JOBS`` explicitly asks, at which
    point the two are interpreted exactly as :func:`resolve_jobs` would.
    """
    if jobs is None and not os.environ.get("REPRO_JOBS"):
        return 1
    return resolve_jobs(jobs)


class Terminated(Exception):
    """Raised in the main thread when the process receives SIGTERM."""

    def __init__(self, signum: int = signal.SIGTERM):
        super().__init__(f"terminated by signal {signum}")
        self.signum = signum


def install_sigterm_handler() -> bool:
    """Convert SIGTERM into a :class:`Terminated` exception.

    Returns False (and installs nothing) off the main thread or on
    platforms without SIGTERM; repeated installation is harmless.  The
    handler raises, so ordinary ``try``/``finally`` cleanup and the CLI's
    metrics flush run before the process exits.
    """
    if threading.current_thread() is not threading.main_thread():
        return False
    if not hasattr(signal, "SIGTERM"):  # pragma: no cover - non-posix
        return False

    def _raise(signum, frame):
        raise Terminated(signum)

    signal.signal(signal.SIGTERM, _raise)
    return True
