"""Synthesis substrate: elaboration, bit-blasting, optimization, statistics.

Stands in for the commercial synthesis tool the paper uses to (a) map
extracted constraints to gates, (b) remove redundant/dead constraint logic
and (c) count gates.  The pipeline is::

    Verilog AST --elaborate/flatten--> bit-level gate netlist
                --optimize--> constant-propagated, hashed, COI-trimmed netlist
"""

from repro.synth.netlist import Netlist, Gate, GateType, NetlistError
from repro.synth.elaborate import synthesize, SynthesisError, Elaborator
from repro.synth.opt import optimize, constant_propagate, strash, remove_dead
from repro.synth.stats import netlist_stats, NetlistStats, sequential_depth
from repro.synth.equiv import EquivError, EquivResult, check_equivalence

__all__ = [
    "Netlist",
    "Gate",
    "GateType",
    "NetlistError",
    "synthesize",
    "SynthesisError",
    "Elaborator",
    "optimize",
    "constant_propagate",
    "strash",
    "remove_dead",
    "netlist_stats",
    "NetlistStats",
    "sequential_depth",
    "EquivError",
    "EquivResult",
    "check_equivalence",
]
