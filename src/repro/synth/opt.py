"""Gate-level netlist optimization.

This is the "synthesis with the appropriate flags" of the paper: constant
propagation collapses logic tied to hard-coded values (the very constraints
FACTOR extracts), structural hashing merges duplicated cones, and dead-code
elimination deletes everything outside the cone of influence of the outputs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.synth.netlist import (
    CONST0,
    CONST1,
    Gate,
    GateType,
    Netlist,
    SYMMETRIC_TYPES,
)


def _resolve(alias: Dict[int, int], net: int) -> int:
    """Follow alias chains with path compression."""
    seen = []
    while net in alias:
        seen.append(net)
        net = alias[net]
    for s in seen:
        alias[s] = net
    return net


def _rebuild(netlist: Netlist, keep: Sequence[Gate],
             alias: Dict[int, int]) -> Netlist:
    """Create a new netlist with ``keep`` gates, inputs routed via ``alias``."""
    out = Netlist(netlist.name)
    out._names = list(netlist._names)
    out.pis = list(netlist.pis)
    regions = getattr(netlist, "regions", {})
    out.regions = dict(regions)  # type: ignore[attr-defined]
    for gate in keep:
        inputs = tuple(_resolve(alias, i) for i in gate.inputs)
        out.add_gate_to(gate.type, gate.output, inputs)
    for net, name in netlist.po_pairs:
        resolved = _resolve(alias, net)
        out.add_po(resolved, name)
    return out


_INVERSE = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
}


def constant_propagate(netlist: Netlist) -> Netlist:
    """Fold constants through the netlist; collapse buffers.

    Aliases BUF outputs to their inputs, evaluates gates whose controlling
    or total inputs are constant, and strips constant inputs from
    AND/OR-family gates.
    """
    alias: Dict[int, int] = {}
    keep: List[Gate] = []
    not_input_of: Dict[int, int] = {}  # NOT output net -> its input net

    for gate in netlist.topological_order():
        inputs = [_resolve(alias, i) for i in gate.inputs]
        result = _fold_gate(gate.type, inputs)
        if not isinstance(result, int) and result[0] is GateType.NOT:
            # Collapse inverter chains: NOT(NOT(x)) == x.
            inner = not_input_of.get(result[1][0])
            if inner is not None:
                result = inner
        if isinstance(result, int):
            alias[gate.output] = result
        else:
            gtype, new_inputs = result
            if gtype is GateType.NOT:
                not_input_of[gate.output] = new_inputs[0]
            keep.append(Gate(type=gtype, output=gate.output,
                             inputs=tuple(new_inputs)))

    for dff in netlist.dffs():
        keep.append(Gate(type=GateType.DFF, output=dff.output,
                         inputs=(_resolve(alias, dff.inputs[0]),)))
    return _rebuild(netlist, keep, alias)


def _fold_gate(gtype: GateType, inputs: List[int]):
    """Fold one gate.  Returns an alias net (int) or ``(type, inputs)``."""
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.NOT:
        if inputs[0] == CONST0:
            return CONST1
        if inputs[0] == CONST1:
            return CONST0
        return (GateType.NOT, inputs)
    if gtype is GateType.DFF:
        return (GateType.DFF, inputs)

    if gtype in (GateType.AND, GateType.NAND):
        dominant, neutral = CONST0, CONST1
    elif gtype in (GateType.OR, GateType.NOR):
        dominant, neutral = CONST1, CONST0
    else:
        dominant = neutral = None

    if dominant is not None:
        inverted = gtype in (GateType.NAND, GateType.NOR)
        if dominant in inputs:
            value = dominant == CONST1
            return CONST1 if (value != inverted) else CONST0
        filtered: List[int] = []
        seen: Set[int] = set()
        for net in inputs:
            if net == neutral or net in seen:
                continue
            seen.add(net)
            filtered.append(net)
        if not filtered:
            value = neutral == CONST1
            return CONST1 if (value != inverted) else CONST0
        if len(filtered) == 1:
            if inverted:
                return (GateType.NOT, filtered)
            return filtered[0]
        return (gtype, filtered)

    # XOR / XNOR: drop paired duplicates, fold constants into parity.
    parity = gtype is GateType.XNOR
    counts: Dict[int, int] = {}
    for net in inputs:
        if net == CONST1:
            parity = not parity
        elif net != CONST0:
            counts[net] = counts.get(net, 0) + 1
    remaining = [net for net, cnt in counts.items() if cnt % 2 == 1]
    if not remaining:
        return CONST1 if parity else CONST0
    if len(remaining) == 1:
        if parity:
            return (GateType.NOT, remaining)
        return remaining[0]
    return (GateType.XNOR if parity else GateType.XOR, remaining)


def strash(netlist: Netlist) -> Netlist:
    """Structural hashing: merge gates computing identical functions."""
    alias: Dict[int, int] = {}
    table: Dict[Tuple, int] = {}
    keep: List[Gate] = []

    for gate in netlist.topological_order():
        inputs = tuple(_resolve(alias, i) for i in gate.inputs)
        if gate.type in SYMMETRIC_TYPES:
            key = (gate.type, tuple(sorted(inputs)))
        else:
            key = (gate.type, inputs)
        existing = table.get(key)
        if existing is not None:
            alias[gate.output] = existing
        else:
            table[key] = gate.output
            keep.append(Gate(type=gate.type, output=gate.output,
                             inputs=inputs))

    for dff in netlist.dffs():
        keep.append(Gate(type=GateType.DFF, output=dff.output,
                         inputs=(_resolve(alias, dff.inputs[0]),)))
    return _rebuild(netlist, keep, alias)


def remove_dead(netlist: Netlist) -> Netlist:
    """Delete gates outside the cone of influence of the primary outputs.

    Flip-flops are kept only when reachable (transitively, through their D
    cones) from some primary output.
    """
    driver = {g.output: g for g in netlist.gates}
    live: Set[int] = set()
    stack = list(netlist.pos)
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        gate = driver.get(net)
        if gate is not None:
            stack.extend(gate.inputs)

    keep = [g for g in netlist.gates if g.output in live]
    return _rebuild(netlist, keep, {})


def optimize(netlist: Netlist, max_rounds: int = 8) -> Netlist:
    """Run constant propagation, hashing and DCE to a fixpoint."""
    from repro.obs import histogram, span

    gates_before = len(netlist.gates)
    with span("synth.opt", gates_before=gates_before) as sp:
        current = netlist
        previous_size = None
        rounds = 0
        for _ in range(max_rounds):
            rounds += 1
            current = constant_propagate(current)
            current = strash(current)
            current = remove_dead(current)
            size = (len(current.gates), current.num_nets)
            if size == previous_size:
                break
            previous_size = size
        sp.set("gates_after", len(current.gates))
        sp.set("rounds", rounds)
    histogram("synth.opt.gates_removed").observe(
        gates_before - len(current.gates)
    )
    return current
